//! The end-to-end engine: source → AST → RAM → interpret.
//!
//! [`Engine`] owns the translated RAM program (frontend + translation run
//! once); [`Engine::run`] then builds the database, loads inputs,
//! generates the interpreter tree, and executes it. Interpreter-tree
//! generation is *inside* `run`, matching the paper's timing methodology
//! ("the execution time includes the extra code generation of the
//! Interpreter Tree", §5).

use crate::config::InterpreterConfig;
use crate::database::{DataMode, Database, InputData};
use crate::error::EngineError;
use crate::interp::Interpreter;
use crate::itree;
use crate::morsel::ParallelReport;
use crate::profile::ProfileReport;
use crate::telemetry::Telemetry;
use crate::value::Value;
use std::collections::HashMap;
use stir_ram::RamProgram;

/// The result of one evaluation.
#[derive(Debug)]
pub struct EvalOutcome {
    /// Each `.output` relation's tuples, sorted, keyed by name.
    pub outputs: HashMap<String, Vec<Vec<Value>>>,
    /// The profiling report, when profiling was enabled.
    pub profile: Option<ProfileReport>,
    /// Work-stealing scheduling statistics, when at least one scan was
    /// eligible to fan out (absent under sequential configurations, so
    /// profiles keep their sequential schema).
    pub parallel: Option<ParallelReport>,
}

/// A compiled-to-RAM Datalog program, ready to run any number of times.
#[derive(Debug)]
pub struct Engine {
    ram: RamProgram,
}

impl Engine {
    /// Parses, checks, and translates a Datalog program.
    ///
    /// # Errors
    ///
    /// Propagates frontend and translation errors.
    ///
    /// # Example
    ///
    /// ```
    /// use stir_core::{Engine, InterpreterConfig};
    ///
    /// let engine = Engine::from_source(
    ///     ".decl e(x: number, y: number)
    ///      .decl p(x: number, y: number)
    ///      .output p
    ///      e(1, 2). e(2, 3).
    ///      p(x, y) :- e(x, y).
    ///      p(x, z) :- p(x, y), e(y, z).",
    /// )?;
    /// let out = engine.run(InterpreterConfig::optimized(), &Default::default())?;
    /// assert_eq!(out.outputs["p"].len(), 3); // (1,2) (1,3) (2,3)
    /// # Ok::<(), stir_core::EngineError>(())
    /// ```
    pub fn from_source(source: &str) -> Result<Engine, EngineError> {
        Self::from_source_with(source, None)
    }

    /// Like [`Engine::from_source`], recording `phase:parse` and
    /// `phase:ram-translate` spans (plus the index-selection sub-span)
    /// into an attached telemetry tracer.
    ///
    /// # Errors
    ///
    /// Propagates frontend and translation errors.
    pub fn from_source_with(source: &str, tel: Option<&Telemetry>) -> Result<Engine, EngineError> {
        let tracer = tel.map(|t| &t.tracer);
        let checked = {
            let _span = tracer.map(|t| t.span("phase:parse"));
            stir_frontend::parse_and_check(source)?
        };
        let ram = {
            let _span = tracer.map(|t| t.span("phase:ram-translate"));
            let ram = stir_ram::translate::translate(&checked)?;
            if let Some(t) = tracer {
                t.record("index-selection", ram.stats.index_selection_ns);
            }
            ram
        };
        Ok(Engine { ram })
    }

    /// The translated RAM program (for listings and the synthesizer).
    pub fn ram(&self) -> &RamProgram {
        &self.ram
    }

    /// Consumes the engine, yielding the RAM program. Used by the
    /// resident engine, which owns the program alongside the database it
    /// keeps alive between requests.
    pub fn into_ram(self) -> RamProgram {
        self.ram
    }

    /// Runs the program under `config` with the given external inputs.
    ///
    /// # Errors
    ///
    /// Propagates input-loading and runtime errors.
    pub fn run(
        &self,
        config: InterpreterConfig,
        inputs: &InputData,
    ) -> Result<EvalOutcome, EngineError> {
        self.run_fused(config, inputs, &[])
    }

    /// Like [`Engine::run`], additionally installing hand-crafted native
    /// super-instructions for matching queries (the §5.2 case study).
    ///
    /// # Errors
    ///
    /// Propagates input-loading and runtime errors.
    pub fn run_fused(
        &self,
        config: InterpreterConfig,
        inputs: &InputData,
        fusions: &[itree::Fusion],
    ) -> Result<EvalOutcome, EngineError> {
        self.run_with(config, inputs, fusions, None)
    }

    /// Like [`Engine::run_fused`], with an attached telemetry bundle:
    /// phase spans (`build-db`, `load-inputs`, `build-itree`,
    /// `evaluate`) go to the tracer, per-statement spans are recorded
    /// when [`InterpreterConfig::trace`] is set, and the database's
    /// relation/index structure is sampled into the metrics registry
    /// after the run.
    ///
    /// # Errors
    ///
    /// Propagates input-loading and runtime errors.
    pub fn run_with(
        &self,
        config: InterpreterConfig,
        inputs: &InputData,
        fusions: &[itree::Fusion],
        tel: Option<&Telemetry>,
    ) -> Result<EvalOutcome, EngineError> {
        let tracer = tel.map(|t| &t.tracer);
        let mode = if config.legacy_data {
            DataMode::LegacyDynamic
        } else {
            DataMode::Specialized
        };
        let db = {
            let _span = tracer.map(|t| t.span("phase:build-db"));
            Database::new_with_storage(&self.ram, mode, config.provenance, config.storage)
        };
        {
            let _span = tracer.map(|t| t.span("phase:load-inputs"));
            db.load_inputs(&self.ram, inputs)?;
        }
        let tree = {
            let _span = tracer.map(|t| t.span("phase:build-itree"));
            itree::build_with_fusions(&self.ram, &config, fusions)
        };
        let mut interp = Interpreter::new(&self.ram, &db, config);
        if let Some(t) = tel {
            interp.attach_telemetry(t);
        }
        {
            let _span = tracer.map(|t| t.span("phase:evaluate"));
            interp.run(&tree)?;
        }
        let parallel = interp.parallel_report();
        if let Some(t) = tel {
            db.sample_metrics(&self.ram, &t.metrics);
            if let Some(par) = &parallel {
                publish_parallel_metrics(&t.metrics, par);
            }
        }
        Ok(EvalOutcome {
            outputs: db.extract_outputs(&self.ram),
            profile: interp.profile_report(),
            parallel,
        })
    }
}

/// Publishes work-stealing statistics into the metrics registry, whence
/// they flow into `--profile-json`'s counter section and the serving
/// metrics endpoint. Only called when a parallel scan actually ran, so
/// sequential runs keep their exact counter schema.
pub(crate) fn publish_parallel_metrics(
    metrics: &crate::telemetry::MetricsRegistry,
    par: &ParallelReport,
) {
    metrics.set("parallel.scans", par.scans);
    metrics.set("parallel.small_scans", par.small_scans);
    metrics.set("parallel.morsels", par.morsels());
    metrics.set("parallel.steals", par.steals());
    for (w, stats) in par.workers.iter().enumerate() {
        metrics.set(&format!("parallel.worker.{w}.tuples"), stats.tuples);
        if stats.work > 0 {
            metrics.set(&format!("parallel.worker.{w}.work"), stats.work);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, config: InterpreterConfig) -> HashMap<String, Vec<Vec<Value>>> {
        Engine::from_source(src)
            .expect("compiles")
            .run(config, &InputData::new())
            .expect("runs")
            .outputs
    }

    fn nums(rows: &[Vec<i32>]) -> Vec<Vec<Value>> {
        rows.iter()
            .map(|r| r.iter().map(|&v| Value::Number(v)).collect())
            .collect()
    }

    const TC: &str = "\
        .decl e(x: number, y: number)\n\
        .decl p(x: number, y: number)\n\
        .output p\n\
        e(1, 2). e(2, 3). e(3, 4).\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";

    fn all_configs() -> Vec<InterpreterConfig> {
        let base = [
            InterpreterConfig::optimized(),
            InterpreterConfig::dynamic_adapter(),
            InterpreterConfig::unoptimized(),
            InterpreterConfig::legacy(),
        ];
        let mut out = Vec::new();
        for b in base {
            out.push(b);
            // And every single-flag flip of the optimized config.
            out.push(InterpreterConfig {
                super_instructions: false,
                ..InterpreterConfig::optimized()
            });
            out.push(InterpreterConfig {
                static_reordering: false,
                ..InterpreterConfig::optimized()
            });
            out.push(InterpreterConfig {
                outlined_handlers: false,
                ..InterpreterConfig::optimized()
            });
        }
        out
    }

    #[test]
    fn transitive_closure_all_configs() {
        let expected = nums(&[
            vec![1, 2],
            vec![1, 3],
            vec![1, 4],
            vec![2, 3],
            vec![2, 4],
            vec![3, 4],
        ]);
        for config in all_configs() {
            let out = run(TC, config);
            assert_eq!(out["p"], expected, "config {config:?}");
        }
    }

    #[test]
    fn negation_and_arithmetic() {
        let src = "\
            .decl e(x: number)\n.decl odd(x: number)\n.decl r(x: number, y: number)\n\
            .output r\n\
            e(1). e(2). e(3). e(4).\n\
            odd(1). odd(3).\n\
            r(x, y) :- e(x), !odd(x), y = x * 10 + 1.\n";
        for config in [InterpreterConfig::optimized(), InterpreterConfig::legacy()] {
            let out = run(src, config);
            assert_eq!(out["r"], nums(&[vec![2, 21], vec![4, 41]]));
        }
    }

    #[test]
    fn aggregates_work() {
        let src = "\
            .decl e(x: number, w: number)\n.decl total(k: number, s: number)\n\
            .decl cnt(n: number)\n\
            .output total\n.output cnt\n\
            e(1, 10). e(1, 20). e(2, 5).\n\
            total(k, s) :- e(k, _), s = sum w : { e(k, w) }.\n\
            cnt(n) :- n = count : { e(_, _) }.\n";
        for config in [
            InterpreterConfig::optimized(),
            InterpreterConfig::unoptimized(),
        ] {
            let out = run(src, config);
            assert_eq!(out["total"], nums(&[vec![1, 30], vec![2, 5]]));
            assert_eq!(out["cnt"], nums(&[vec![3]]));
        }
    }

    #[test]
    fn min_max_over_empty_fails_quietly() {
        let src = "\
            .decl e(x: number)\n.decl r(x: number)\n.output r\n\
            r(m) :- m = min x : { e(x) }.\n";
        let out = run(src, InterpreterConfig::optimized());
        assert!(out["r"].is_empty());
    }

    #[test]
    fn eqrel_and_symmetry_probe() {
        let src = "\
            .decl eq(x: number, y: number) eqrel\n\
            .decl s(x: number, y: number)\n\
            .decl member_of_one(x: number)\n\
            .output member_of_one\n\
            s(1, 2). s(2, 3). s(7, 8).\n\
            eq(x, y) :- s(x, y).\n\
            member_of_one(x) :- eq(x, 1).\n";
        for config in [InterpreterConfig::optimized(), InterpreterConfig::legacy()] {
            let out = run(src, config);
            assert_eq!(out["member_of_one"], nums(&[vec![1], vec![2], vec![3]]));
        }
    }

    #[test]
    fn strings_and_functors() {
        let src = "\
            .decl name(s: symbol)\n.decl greet(s: symbol, l: number)\n.output greet\n\
            name(\"ada\"). name(\"grace\").\n\
            greet(m, n) :- name(s), m = cat(\"hi \", s), n = strlen(s).\n";
        let out = run(src, InterpreterConfig::optimized());
        assert_eq!(
            out["greet"],
            vec![
                vec![Value::Symbol("hi ada".into()), Value::Number(3)],
                vec![Value::Symbol("hi grace".into()), Value::Number(5)],
            ]
        );
    }

    #[test]
    fn inputs_feed_evaluation() {
        let src = "\
            .decl e(x: number, y: number)\n.input e\n\
            .decl p(x: number, y: number)\n.output p\n\
            p(x, z) :- e(x, y), e(y, z).\n";
        let engine = Engine::from_source(src).expect("compiles");
        let mut inputs = InputData::new();
        inputs.insert(
            "e".into(),
            vec![
                vec![Value::Number(1), Value::Number(2)],
                vec![Value::Number(2), Value::Number(3)],
            ],
        );
        let out = engine
            .run(InterpreterConfig::optimized(), &inputs)
            .expect("runs");
        assert_eq!(out.outputs["p"], nums(&[vec![1, 3]]));
    }

    #[test]
    fn runtime_errors_propagate() {
        let src = "\
            .decl e(x: number)\n.decl r(x: number)\n.output r\n\
            e(0).\n\
            r(y) :- e(x), y = 10 / x.\n";
        let err = Engine::from_source(src)
            .expect("compiles")
            .run(InterpreterConfig::optimized(), &InputData::new())
            .unwrap_err();
        assert!(err.to_string().contains("division by zero"));
    }

    #[test]
    fn profiling_reports_rules_and_dispatches() {
        let engine = Engine::from_source(TC).expect("compiles");
        let out = engine
            .run(
                InterpreterConfig::optimized().with_profile(),
                &InputData::new(),
            )
            .expect("runs");
        let profile = out.profile.expect("profile present");
        assert!(profile.dispatches > 0);
        assert!(profile.iterations > 0);
        let rules = profile.by_rule();
        assert_eq!(rules.len(), 2);
        assert!(rules.iter().all(|r| r.executions > 0));
        // Fewer dispatches with super-instructions than without.
        let without = engine
            .run(
                InterpreterConfig {
                    super_instructions: false,
                    ..InterpreterConfig::optimized()
                }
                .with_profile(),
                &InputData::new(),
            )
            .expect("runs");
        assert!(
            without.profile.expect("profile").dispatches > profile.dispatches,
            "super-instructions reduce dispatch count"
        );
    }

    #[test]
    fn counter_produces_distinct_ids() {
        let src = "\
            .decl e(x: number)\n.decl r(x: number, id: number)\n.output r\n\
            e(10). e(20). e(30).\n\
            r(x, $) :- e(x).\n";
        let out = run(src, InterpreterConfig::optimized());
        let ids: std::collections::BTreeSet<i32> = out["r"]
            .iter()
            .map(|t| match t[1] {
                Value::Number(n) => n,
                _ => panic!(),
            })
            .collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn nullary_relations_evaluate() {
        let src = "\
            .decl flag()\n.decl e(x: number)\n.decl r(x: number)\n.output r\n\
            flag().\n e(5).\n\
            r(x) :- e(x), flag().\n";
        let out = run(src, InterpreterConfig::optimized());
        assert_eq!(out["r"], nums(&[vec![5]]));

        let src_no_flag = "\
            .decl flag()\n.decl e(x: number)\n.decl r(x: number)\n.output r\n\
            e(5).\n\
            r(x) :- e(x), flag().\n";
        let out = run(src_no_flag, InterpreterConfig::optimized());
        assert!(out["r"].is_empty());
    }

    #[test]
    fn mutual_recursion_converges() {
        let src = "\
            .decl n(x: number)\n.decl even(x: number)\n.decl odd(x: number)\n\
            .output even\n.output odd\n\
            n(0). n(1). n(2). n(3). n(4). n(5).\n\
            even(0).\n\
            odd(y) :- even(x), n(y), y = x + 1.\n\
            even(y) :- odd(x), n(y), y = x + 1.\n";
        for config in all_configs() {
            let out = run(src, config);
            assert_eq!(out["even"], nums(&[vec![0], vec![2], vec![4]]));
            assert_eq!(out["odd"], nums(&[vec![1], vec![3], vec![5]]));
        }
    }
}
