//! STIR core: the Soufflé-style Tree Interpreter (STI) and its runtime.
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"An Efficient Interpreter for Datalog by De-specializing Relations"*
//! (PLDI 2021): a tree interpreter for the RAM intermediate representation
//! whose relational operations run on de-specialized DER data structures
//! (`stir_der`) with near-compiled performance. It contains:
//!
//! * the [`itree`] generator (RAM → Interpreter Tree, §3/§4),
//! * the [`interp`] recursive executor with all four optimizations of §4
//!   as independent [`config::InterpreterConfig`] toggles,
//! * the legacy-interpreter baseline (runtime-comparator indexes, §5.1),
//! * the per-rule [`profile`]r of §5.2,
//! * the [`telemetry`] layer — phase/statement tracing, an engine
//!   metrics registry, and Soufflé-compatible machine-readable
//!   profiles — and
//! * the [`engine::Engine`] facade running the whole pipeline.
//!
//! # Quickstart
//!
//! ```
//! use stir_core::{Engine, InterpreterConfig};
//!
//! let engine = Engine::from_source(
//!     ".decl edge(x: number, y: number)
//!      .decl path(x: number, y: number)
//!      .output path
//!      edge(1, 2). edge(2, 3).
//!      path(x, y) :- edge(x, y).
//!      path(x, z) :- path(x, y), edge(y, z).",
//! )?;
//! let result = engine.run(InterpreterConfig::optimized(), &Default::default())?;
//! assert_eq!(result.outputs["path"].len(), 3);
//! # Ok::<(), stir_core::EngineError>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod database;
pub mod engine;
pub mod error;
pub mod fault;
pub mod functors;
pub mod health;
pub mod interp;
pub mod io;
pub mod itree;
pub mod json;
pub mod morsel;
pub mod profile;
pub mod prov;
pub mod rederive;
pub mod resident;
pub mod sink;
pub mod snap2;
pub mod static_set;
pub mod telemetry;
pub mod value;
pub mod wal;

pub use config::{InterpreterConfig, StorageBackend};
pub use database::{DataMode, Database, InputData};
pub use engine::{Engine, EvalOutcome};
pub use error::{EngineError, EvalError, StorageError};
pub use health::{HealthMonitor, HealthState};
pub use interp::Interpreter;
pub use json::Json;
pub use morsel::{MorselQueue, ParallelReport, WorkerStats};
pub use profile::ProfileReport;
pub use prov::{ExplainLimits, ProofNode};
pub use resident::{
    PersistOptions, RecoveryReport, ResidentEngine, RetractReport, ServerStats, UpdateReport,
};
pub use telemetry::{
    profile_json, rfc3339, rfc3339_now, Histogram, HistogramSnapshot, LogLevel, Logger,
    MetricsRegistry, ServeMetrics, Telemetry, Tracer,
};
pub use value::Value;
pub use wal::Durability;
