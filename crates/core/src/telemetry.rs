//! End-to-end observability: structured tracing, engine metrics, and
//! machine-readable profile emitters.
//!
//! Three cooperating pieces, bundled in [`Telemetry`]:
//!
//! * [`Tracer`] — lightweight hierarchical spans over the pipeline
//!   phases and RAM statements. Spans aggregate into per-path
//!   `(count, total, self)` statistics rather than an event log, so
//!   tracing a fixpoint that runs a rule a million times costs one map
//!   entry, not a million. [`Tracer::folded`] renders the aggregation in
//!   the flamegraph *folded stacks* format.
//! * [`MetricsRegistry`] — named monotonic counters and gauges fed by
//!   the interpreter and the data layer (inserts, existence checks,
//!   index nodes/bytes, ...).
//! * [`Logger`] — a leveled stderr stream used for per-iteration
//!   fixpoint heartbeats and phase banners.
//!
//! Everything is disabled by default and structurally cheap when off:
//! the interpreter only consults the telemetry on its profiling
//! instantiation (see `interp`), so the non-profiled hot path carries no
//! checks at all. [`profile_json`] assembles the Soufflé-style profile
//! JSON from a finished run.

use crate::json::Json;
use crate::profile::ProfileReport;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use stir_ram::program::{RamProgram, ReprKind, Role};

/// Verbosity of the [`Logger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No output at all.
    Off,
    /// Unrecoverable problems only.
    Error,
    /// Suspicious conditions.
    Warn,
    /// Phase banners and fixpoint heartbeats.
    Info,
    /// Everything, including per-statement chatter.
    Debug,
}

impl std::str::FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(LogLevel::Off),
            "error" => Ok(LogLevel::Error),
            "warn" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!(
                "unknown log level `{other}` (use off|error|warn|info|debug)"
            )),
        }
    }
}

/// A leveled stderr logger.
#[derive(Debug, Clone, Copy)]
pub struct Logger {
    level: LogLevel,
}

impl Logger {
    /// A logger that prints everything at or below `level`.
    pub fn new(level: LogLevel) -> Logger {
        Logger { level }
    }

    /// Whether `level` messages are printed — guard expensive message
    /// construction with this.
    #[inline]
    pub fn enabled(&self, level: LogLevel) -> bool {
        level <= self.level && self.level != LogLevel::Off
    }

    /// Prints one message to stderr if `level` is enabled.
    pub fn log(&self, level: LogLevel, msg: &str) {
        if self.enabled(level) {
            let tag = match level {
                LogLevel::Off => return,
                LogLevel::Error => "error",
                LogLevel::Warn => "warn",
                LogLevel::Info => "info",
                LogLevel::Debug => "debug",
            };
            eprintln!("stir[{tag}] {msg}");
        }
    }
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// How many times the span ran.
    pub count: u64,
    /// Total wall time, including children.
    pub total_ns: u64,
    /// Wall time excluding child spans (what folded stacks report).
    pub self_ns: u64,
}

/// One open span on the tracer's stack.
#[derive(Debug)]
struct Frame {
    /// The full `;`-joined path of this span.
    path: String,
    start: Instant,
    /// Nanoseconds spent in already-closed child spans.
    child_ns: u64,
}

/// A hierarchical span tracer with folded-stack aggregation.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    stack: RefCell<Vec<Frame>>,
    stats: RefCell<BTreeMap<String, SpanStats>>,
}

impl Tracer {
    /// An active tracer.
    pub fn on() -> Tracer {
        Tracer {
            enabled: true,
            ..Tracer::default()
        }
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span named `name` under the current span; it closes when
    /// the guard drops. A no-op (and allocation-free) when disabled.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard { tracer: None };
        }
        let mut stack = self.stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{};{}", parent.path, name),
            None => name.to_owned(),
        };
        stack.push(Frame {
            path,
            start: Instant::now(),
            child_ns: 0,
        });
        SpanGuard { tracer: Some(self) }
    }

    /// Records a synthetic child span of the current span — used for
    /// sub-phases measured by someone else (e.g. the index-selection
    /// time reported by the RAM translator).
    pub fn record(&self, name: &str, ns: u64) {
        if !self.enabled {
            return;
        }
        let mut stack = self.stack.borrow_mut();
        let path = match stack.last_mut() {
            Some(parent) => {
                // The parent's wall clock covers this time; count it as
                // child time so the parent's self time stays honest.
                parent.child_ns += ns;
                format!("{};{}", parent.path, name)
            }
            None => name.to_owned(),
        };
        drop(stack);
        let mut stats = self.stats.borrow_mut();
        let s = stats.entry(path).or_default();
        s.count += 1;
        s.total_ns += ns;
        s.self_ns += ns;
    }

    fn close_top(&self) {
        let mut stack = self.stack.borrow_mut();
        let frame = stack.pop().expect("span guard had an open frame");
        let total = frame.start.elapsed().as_nanos() as u64;
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += total;
        }
        drop(stack);
        let mut stats = self.stats.borrow_mut();
        let s = stats.entry(frame.path).or_default();
        s.count += 1;
        s.total_ns += total;
        s.self_ns += total.saturating_sub(frame.child_ns);
    }

    /// A snapshot of the per-path aggregation, sorted by path.
    pub fn stats(&self) -> Vec<(String, SpanStats)> {
        self.stats
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// The total time recorded under a top-level span name, if any.
    pub fn total_of(&self, path: &str) -> Option<Duration> {
        self.stats
            .borrow()
            .get(path)
            .map(|s| Duration::from_nanos(s.total_ns))
    }

    /// Renders the aggregation as flamegraph *folded stacks*: one line
    /// per path, `frame;frame;frame <self_ns>`, suitable for
    /// `flamegraph.pl` / `inferno` with nanosecond "samples".
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, s) in self.stats.borrow().iter() {
            out.push_str(path);
            out.push(' ');
            out.push_str(&s.self_ns.to_string());
            out.push('\n');
        }
        out
    }
}

/// RAII guard closing a [`Tracer`] span on drop.
#[derive(Debug)]
pub struct SpanGuard<'t> {
    tracer: Option<&'t Tracer>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.tracer {
            t.close_top();
        }
    }
}

/// A registry of named `u64` counters and gauges.
///
/// Keys are dot-separated paths (`relation.path.inserts`,
/// `interp.dispatches`, `db.index.bytes`); the map is ordered so dumps
/// are deterministic. The durability layer contributes `wal.*`
/// (appends, bytes, fsyncs, append_errors), `snapshot.*` (writes,
/// tuples), and `recovery.*` (snapshot_loaded, replayed_batches,
/// replayed_tuples, skipped_batches, torn_bytes) when a resident engine
/// runs with a data directory — see
/// [`crate::resident::ResidentEngine::sync_metrics`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    values: RefCell<BTreeMap<String, u64>>,
}

impl MetricsRegistry {
    /// An active registry.
    pub fn on() -> MetricsRegistry {
        MetricsRegistry {
            enabled: true,
            ..MetricsRegistry::default()
        }
    }

    /// Whether the registry records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `delta` to a counter (creating it at zero).
    pub fn add(&self, key: &str, delta: u64) {
        if self.enabled {
            *self.values.borrow_mut().entry(key.to_owned()).or_insert(0) += delta;
        }
    }

    /// Sets a gauge to `value`.
    pub fn set(&self, key: &str, value: u64) {
        if self.enabled {
            self.values.borrow_mut().insert(key.to_owned(), value);
        }
    }

    /// Reads one value.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.values.borrow().get(key).copied()
    }

    /// A sorted snapshot of all values.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.values
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

/// The bundle of observability sinks threaded through the engine.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Span tracing (phases + RAM statements).
    pub tracer: Tracer,
    /// Named counters and gauges.
    pub metrics: MetricsRegistry,
    /// The leveled stderr stream.
    pub logger: Logger,
}

impl Default for Logger {
    fn default() -> Self {
        Logger::new(LogLevel::Off)
    }
}

impl Telemetry {
    /// Everything disabled — the zero-overhead default.
    pub fn off() -> Telemetry {
        Telemetry::default()
    }

    /// A bundle with the chosen pieces enabled.
    pub fn new(trace: bool, metrics: bool, level: LogLevel) -> Telemetry {
        Telemetry {
            tracer: if trace {
                Tracer::on()
            } else {
                Tracer::default()
            },
            metrics: if metrics {
                MetricsRegistry::on()
            } else {
                MetricsRegistry::default()
            },
            logger: Logger::new(level),
        }
    }
}

/// The name of a representation kind in metrics keys and profiles.
fn repr_name(repr: ReprKind) -> &'static str {
    match repr {
        ReprKind::BTree => "btree",
        ReprKind::Brie => "brie",
        ReprKind::EqRel => "eqrel",
    }
}

/// Assembles the Soufflé-style machine-readable profile of one run.
///
/// Layout (all times in nanoseconds):
///
/// ```json
/// {"root": {
///   "version": 1, "generator": "stir ...",
///   "program": {
///     "runtime_ns": ...,
///     "phase":     {"parse": ..., "ram-translate": ..., ...},
///     "rule":      {"<rule text>": {"time_ns", "executions", "tuples"}},
///     "relation":  {"<name>": {"arity", "tuples", "inserts",
///                   "exists_checks", "range_queries", "scans",
///                   "index": [{"order", "repr", "tuples", "nodes", "bytes"}]}},
///     "iteration": [{"loop", "iteration", "frontier": {"<delta>": size}}],
///     "counter":   {"interp.dispatches": ..., ...}}}}
/// ```
///
/// Sections degrade gracefully: a run without profiling has an empty
/// `rule` table, a run without metrics has no index sizes.
pub fn profile_json(
    ram: &RamProgram,
    profile: Option<&ProfileReport>,
    tel: &Telemetry,
    runtime: Duration,
) -> Json {
    let mut program: Vec<(String, Json)> = Vec::new();
    program.push(("runtime_ns".into(), Json::num(runtime.as_nanos() as u64)));

    // Phase timings from the tracer's `phase:` spans. Statement spans
    // nested under `phase:evaluate` belong to the folded output, not
    // here, so a path only qualifies if every frame is a phase. The
    // one exception: `index-selection` is a synthetic sub-phase the
    // translator records under `phase:ram-translate`.
    let mut phases: Vec<(String, Json)> = Vec::new();
    for (path, stats) in tel.tracer.stats() {
        let is_phase = path
            .split(';')
            .all(|frame| frame.starts_with("phase:") || frame == "index-selection");
        if is_phase {
            let name = path.replace("phase:", "");
            phases.push((name, Json::num(stats.total_ns)));
        }
    }
    program.push(("phase".into(), Json::Obj(phases)));

    // Per-rule statistics, aggregated over delta versions.
    let mut rules: Vec<(String, Json)> = Vec::new();
    if let Some(p) = profile {
        for rule in p.by_rule() {
            rules.push((
                rule.label.clone(),
                Json::obj(vec![
                    ("time_ns".into(), Json::num(rule.time.as_nanos() as u64)),
                    ("executions".into(), Json::num(rule.executions)),
                    ("tuples".into(), Json::num(rule.tuples)),
                ]),
            ));
        }
    }
    program.push(("rule".into(), Json::Obj(rules)));

    // Per-relation operation counters plus sampled index structure.
    let mut relations: Vec<(String, Json)> = Vec::new();
    for (i, meta) in ram.relations.iter().enumerate() {
        let mut fields: Vec<(String, Json)> = vec![("arity".into(), Json::num(meta.arity as u64))];
        if let Some(tuples) = tel.metrics.get(&format!("relation.{}.tuples", meta.name)) {
            fields.push(("tuples".into(), Json::num(tuples)));
        }
        if let Some(p) = profile {
            let ops = &p.relations[i];
            fields.push(("inserts".into(), Json::num(ops.inserts)));
            fields.push(("exists_checks".into(), Json::num(ops.exists_checks)));
            fields.push(("range_queries".into(), Json::num(ops.range_queries)));
            fields.push(("scans".into(), Json::num(ops.scans)));
        }
        let mut indexes: Vec<Json> = Vec::new();
        for (k, order) in meta.orders.iter().enumerate() {
            let mut idx: Vec<(String, Json)> = vec![
                (
                    "order".into(),
                    Json::Arr(order.iter().map(|&c| Json::num(c as u64)).collect()),
                ),
                ("repr".into(), Json::Str(repr_name(meta.repr).into())),
            ];
            for stat in ["tuples", "nodes", "bytes"] {
                let key = format!("relation.{}.index.{k}.{stat}", meta.name);
                if let Some(v) = tel.metrics.get(&key) {
                    idx.push((stat.into(), Json::num(v)));
                }
            }
            indexes.push(Json::Obj(idx));
        }
        fields.push(("index".into(), Json::Arr(indexes)));
        relations.push((meta.name.clone(), Json::Obj(fields)));
    }
    program.push(("relation".into(), Json::Obj(relations)));

    // Per-iteration semi-naive frontier sizes.
    let mut iterations: Vec<Json> = Vec::new();
    if let Some(p) = profile {
        for sample in &p.frontier {
            let frontier: Vec<(String, Json)> = sample
                .deltas
                .iter()
                .map(|&(rel, size)| (ram.relations[rel].name.clone(), Json::num(size)))
                .collect();
            iterations.push(Json::obj(vec![
                ("loop".into(), Json::num(sample.loop_id as u64)),
                ("iteration".into(), Json::num(sample.iteration)),
                ("frontier".into(), Json::Obj(frontier)),
            ]));
        }
    }
    program.push(("iteration".into(), Json::Arr(iterations)));

    // Global counters: interpreter totals plus the whole registry.
    let mut counters: Vec<(String, Json)> = Vec::new();
    if let Some(p) = profile {
        counters.push(("interp.dispatches".into(), Json::num(p.dispatches)));
        counters.push(("interp.iterations".into(), Json::num(p.iterations)));
        counters.push(("interp.super_hits".into(), Json::num(p.super_hits)));
        counters.push(("interp.inserts".into(), Json::num(p.total_inserts)));
    }
    for (key, value) in tel.metrics.snapshot() {
        counters.push((key, Json::num(value)));
    }
    program.push(("counter".into(), Json::Obj(counters)));

    Json::obj(vec![(
        "root".into(),
        Json::obj(vec![
            ("version".into(), Json::num(1)),
            (
                "generator".into(),
                Json::Str(concat!("stir ", env!("CARGO_PKG_VERSION")).into()),
            ),
            ("program".into(), Json::Obj(program)),
        ]),
    )])
}

/// Relations in the semi-naive frontier: the `delta_R` auxiliaries whose
/// sizes the interpreter samples each fixpoint iteration.
pub fn delta_relations(ram: &RamProgram) -> Vec<usize> {
    ram.relations
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r.role, Role::Delta(_)))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_aggregate() {
        let t = Tracer::on();
        {
            let _a = t.span("outer");
            std::thread::sleep(Duration::from_millis(2));
            for _ in 0..3 {
                let _b = t.span("inner");
            }
        }
        let stats = t.stats();
        let outer = &stats.iter().find(|(p, _)| p == "outer").expect("outer").1;
        let inner = &stats
            .iter()
            .find(|(p, _)| p == "outer;inner")
            .expect("inner")
            .1;
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns);
        let folded = t.folded();
        assert!(folded.contains("outer;inner "));
        assert_eq!(folded.lines().count(), 2);
        for line in folded.lines() {
            let (_, ns) = line.rsplit_once(' ').expect("path then value");
            ns.parse::<u64>().expect("self-ns is a number");
        }
    }

    #[test]
    fn record_attributes_time_to_parent() {
        let t = Tracer::on();
        {
            let _a = t.span("phase:translate");
            t.record("index-selection", 5_000);
        }
        let stats = t.stats();
        let sub = &stats
            .iter()
            .find(|(p, _)| p == "phase:translate;index-selection")
            .expect("sub-span recorded")
            .1;
        assert_eq!(sub.total_ns, 5_000);
        assert_eq!(sub.count, 1);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::default();
        {
            let _a = t.span("x");
            t.record("y", 1);
        }
        assert!(t.stats().is_empty());
        assert!(t.folded().is_empty());
    }

    #[test]
    fn metrics_count_and_snapshot() {
        let m = MetricsRegistry::on();
        m.add("a.b", 2);
        m.add("a.b", 3);
        m.set("g", 7);
        assert_eq!(m.get("a.b"), Some(5));
        assert_eq!(m.snapshot(), vec![("a.b".into(), 5), ("g".into(), 7)]);
        let off = MetricsRegistry::default();
        off.add("a", 1);
        assert_eq!(off.get("a"), None);
    }

    #[test]
    fn log_levels_order() {
        let l = Logger::new(LogLevel::Info);
        assert!(l.enabled(LogLevel::Error));
        assert!(l.enabled(LogLevel::Info));
        assert!(!l.enabled(LogLevel::Debug));
        assert!(!Logger::new(LogLevel::Off).enabled(LogLevel::Error));
        assert_eq!("debug".parse::<LogLevel>().unwrap(), LogLevel::Debug);
        assert!("loud".parse::<LogLevel>().is_err());
    }
}
