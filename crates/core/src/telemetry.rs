//! End-to-end observability: structured tracing, engine metrics, and
//! machine-readable profile emitters.
//!
//! Three cooperating pieces, bundled in [`Telemetry`]:
//!
//! * [`Tracer`] — lightweight hierarchical spans over the pipeline
//!   phases and RAM statements. Spans aggregate into per-path
//!   `(count, total, self)` statistics rather than an event log, so
//!   tracing a fixpoint that runs a rule a million times costs one map
//!   entry, not a million. [`Tracer::folded`] renders the aggregation in
//!   the flamegraph *folded stacks* format.
//! * [`MetricsRegistry`] — named monotonic counters and gauges fed by
//!   the interpreter and the data layer (inserts, existence checks,
//!   index nodes/bytes, ...).
//! * [`Logger`] — a leveled stderr stream used for per-iteration
//!   fixpoint heartbeats and phase banners.
//!
//! Everything is disabled by default and structurally cheap when off:
//! the interpreter only consults the telemetry on its profiling
//! instantiation (see `interp`), so the non-profiled hot path carries no
//! checks at all. [`profile_json`] assembles the Soufflé-style profile
//! JSON from a finished run.

use crate::json::Json;
use crate::profile::ProfileReport;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime};
use stir_ram::program::{RamProgram, ReprKind, Role};

/// Verbosity of the [`Logger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No output at all.
    Off,
    /// Unrecoverable problems only.
    Error,
    /// Suspicious conditions.
    Warn,
    /// Phase banners and fixpoint heartbeats.
    Info,
    /// Everything, including per-statement chatter.
    Debug,
}

impl std::str::FromStr for LogLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(LogLevel::Off),
            "error" => Ok(LogLevel::Error),
            "warn" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!(
                "unknown log level `{other}` (use off|error|warn|info|debug)"
            )),
        }
    }
}

/// Renders a [`SystemTime`] as an RFC 3339 UTC timestamp with
/// millisecond precision (`2026-08-07T12:34:56.789Z`). Hand-rolled
/// (civil-from-days) because the workspace vendors no date crate.
pub fn rfc3339(t: SystemTime) -> String {
    let d = t.duration_since(SystemTime::UNIX_EPOCH).unwrap_or_default();
    let secs = d.as_secs();
    let millis = d.subsec_millis();
    let (days, rem) = (secs / 86_400, secs % 86_400);
    let (hh, mm, ss) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    // Howard Hinnant's civil_from_days, specialized to the post-1970
    // range a log timestamp lives in.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe as i64 + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}T{hh:02}:{mm:02}:{ss:02}.{millis:03}Z")
}

/// The current instant as an RFC 3339 UTC timestamp.
pub fn rfc3339_now() -> String {
    rfc3339(SystemTime::now())
}

/// A leveled stderr logger.
#[derive(Debug, Clone, Copy)]
pub struct Logger {
    level: LogLevel,
    /// Prefix every line with an RFC 3339 UTC timestamp (serving mode).
    timestamps: bool,
    /// The process name in the line prefix (`stir` for the batch
    /// pipeline, `stird` for the daemon's serving logs).
    name: &'static str,
}

impl Logger {
    /// A logger that prints everything at or below `level`.
    pub fn new(level: LogLevel) -> Logger {
        Logger {
            level,
            timestamps: false,
            name: "stir",
        }
    }

    /// A serving logger: named, and every line carries an RFC 3339
    /// timestamp so request and lifecycle logs are correlatable.
    pub fn serving(name: &'static str, level: LogLevel) -> Logger {
        Logger {
            level,
            timestamps: true,
            name,
        }
    }

    /// Whether `level` messages are printed — guard expensive message
    /// construction with this.
    #[inline]
    pub fn enabled(&self, level: LogLevel) -> bool {
        level <= self.level && self.level != LogLevel::Off
    }

    /// Prints one message to stderr if `level` is enabled.
    pub fn log(&self, level: LogLevel, msg: &str) {
        if self.enabled(level) {
            let tag = match level {
                LogLevel::Off => return,
                LogLevel::Error => "error",
                LogLevel::Warn => "warn",
                LogLevel::Info => "info",
                LogLevel::Debug => "debug",
            };
            if self.timestamps {
                eprintln!("{} {}[{tag}] {msg}", rfc3339_now(), self.name);
            } else {
                eprintln!("{}[{tag}] {msg}", self.name);
            }
        }
    }
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// How many times the span ran.
    pub count: u64,
    /// Total wall time, including children.
    pub total_ns: u64,
    /// Wall time excluding child spans (what folded stacks report).
    pub self_ns: u64,
}

/// One open span on the tracer's stack.
#[derive(Debug)]
struct Frame {
    /// The full `;`-joined path of this span.
    path: String,
    start: Instant,
    /// Nanoseconds spent in already-closed child spans.
    child_ns: u64,
}

/// A hierarchical span tracer with folded-stack aggregation.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    stack: RefCell<Vec<Frame>>,
    stats: RefCell<BTreeMap<String, SpanStats>>,
}

impl Tracer {
    /// An active tracer.
    pub fn on() -> Tracer {
        Tracer {
            enabled: true,
            ..Tracer::default()
        }
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span named `name` under the current span; it closes when
    /// the guard drops. A no-op (and allocation-free) when disabled.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard { tracer: None };
        }
        let mut stack = self.stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{};{}", parent.path, name),
            None => name.to_owned(),
        };
        stack.push(Frame {
            path,
            start: Instant::now(),
            child_ns: 0,
        });
        SpanGuard { tracer: Some(self) }
    }

    /// Records a synthetic child span of the current span — used for
    /// sub-phases measured by someone else (e.g. the index-selection
    /// time reported by the RAM translator).
    pub fn record(&self, name: &str, ns: u64) {
        if !self.enabled {
            return;
        }
        let mut stack = self.stack.borrow_mut();
        let path = match stack.last_mut() {
            Some(parent) => {
                // The parent's wall clock covers this time; count it as
                // child time so the parent's self time stays honest.
                parent.child_ns += ns;
                format!("{};{}", parent.path, name)
            }
            None => name.to_owned(),
        };
        drop(stack);
        let mut stats = self.stats.borrow_mut();
        let s = stats.entry(path).or_default();
        s.count += 1;
        s.total_ns += ns;
        s.self_ns += ns;
    }

    fn close_top(&self) {
        let mut stack = self.stack.borrow_mut();
        let frame = stack.pop().expect("span guard had an open frame");
        let total = frame.start.elapsed().as_nanos() as u64;
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += total;
        }
        drop(stack);
        let mut stats = self.stats.borrow_mut();
        let s = stats.entry(frame.path).or_default();
        s.count += 1;
        s.total_ns += total;
        s.self_ns += total.saturating_sub(frame.child_ns);
    }

    /// A snapshot of the per-path aggregation, sorted by path.
    pub fn stats(&self) -> Vec<(String, SpanStats)> {
        self.stats
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// The total time recorded under a top-level span name, if any.
    pub fn total_of(&self, path: &str) -> Option<Duration> {
        self.stats
            .borrow()
            .get(path)
            .map(|s| Duration::from_nanos(s.total_ns))
    }

    /// Renders the aggregation as flamegraph *folded stacks*: one line
    /// per path, `frame;frame;frame <self_ns>`, suitable for
    /// `flamegraph.pl` / `inferno` with nanosecond "samples".
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, s) in self.stats.borrow().iter() {
            out.push_str(path);
            out.push(' ');
            out.push_str(&s.self_ns.to_string());
            out.push('\n');
        }
        out
    }
}

/// RAII guard closing a [`Tracer`] span on drop.
#[derive(Debug)]
pub struct SpanGuard<'t> {
    tracer: Option<&'t Tracer>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.tracer {
            t.close_top();
        }
    }
}

/// A registry of named `u64` counters and gauges.
///
/// Keys are dot-separated paths (`relation.path.inserts`,
/// `interp.dispatches`, `db.index.bytes`); the map is ordered so dumps
/// are deterministic. The durability layer contributes `wal.*`
/// (appends, bytes, fsyncs, append_errors), `snapshot.*` (writes,
/// tuples), and `recovery.*` (snapshot_loaded, replayed_batches,
/// replayed_tuples, skipped_batches, torn_bytes) when a resident engine
/// runs with a data directory — see
/// [`crate::resident::ResidentEngine::sync_metrics`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    values: RefCell<BTreeMap<String, u64>>,
}

impl MetricsRegistry {
    /// An active registry.
    pub fn on() -> MetricsRegistry {
        MetricsRegistry {
            enabled: true,
            ..MetricsRegistry::default()
        }
    }

    /// Whether the registry records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `delta` to a counter (creating it at zero).
    pub fn add(&self, key: &str, delta: u64) {
        if self.enabled {
            *self.values.borrow_mut().entry(key.to_owned()).or_insert(0) += delta;
        }
    }

    /// Sets a gauge to `value`.
    pub fn set(&self, key: &str, value: u64) {
        if self.enabled {
            self.values.borrow_mut().insert(key.to_owned(), value);
        }
    }

    /// Reads one value.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.values.borrow().get(key).copied()
    }

    /// A sorted snapshot of all values.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.values
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

/// Sub-bucket resolution of the log-linear histogram: each power-of-two
/// octave is split into `2^SUB_BITS` linear sub-buckets, bounding the
/// relative error of any recorded value by `1 / 2^SUB_BITS` (12.5%).
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Octaves covered — enough for the full `u64` range.
const OCTAVES: usize = 64;
/// Total bucket count.
const BUCKETS: usize = OCTAVES * SUBS;

/// A lock-light log-linear latency histogram.
///
/// Values (nanoseconds) land in one of 512 buckets: below 8 the bucket
/// is exact; above, the octave is the position of the highest set bit
/// and the next three bits pick a linear sub-bucket, so quantile
/// estimates carry at most 12.5% relative error. All state is
/// `AtomicU64` with relaxed ordering — concurrent recorders never
/// contend on a lock, and [`Histogram::merge_from`] folds one
/// histogram into another for cross-thread aggregation.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket a value lands in.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros();
        let sub = ((v >> (octave - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        (octave - SUB_BITS + 1) as usize * SUBS + sub
    }
}

/// The inclusive upper bound of a bucket (the value reported for
/// quantiles falling in it).
fn bucket_upper(index: usize) -> u64 {
    if index < SUBS {
        index as u64
    } else {
        let octave = (index / SUBS) as u32 + SUB_BITS - 1;
        let sub = (index % SUBS) as u64;
        // Subtract before adding: the top octave's last bucket ends at
        // exactly `u64::MAX` and would otherwise overflow.
        ((1u64 << octave) - 1) + ((sub + 1) << (octave - SUB_BITS))
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// How many values were recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Folds every sample of `other` into `self`.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q * count)`-th sample, clamped by the
    /// exact recorded max. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// A point-in-time summary of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum_ns: self.sum(),
            max_ns: self.max(),
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
        }
    }
}

/// A point-in-time summary of a [`Histogram`], in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
    /// Median estimate.
    pub p50_ns: u64,
    /// 90th-percentile estimate.
    pub p90_ns: u64,
    /// 99th-percentile estimate.
    pub p99_ns: u64,
    /// 99.9th-percentile estimate.
    pub p999_ns: u64,
}

/// The serving-side metrics registry: request latency histograms plus
/// engine and connection gauges.
///
/// Unlike [`MetricsRegistry`] (a `RefCell` map owned by one
/// evaluation thread), every field here is atomic, so one `Arc` of it
/// is shared by all connection threads, the WAL writer, and the admin
/// endpoint without locks. When constructed [`ServeMetrics::off`],
/// recording is skipped entirely — [`ServeMetrics::start`] returns
/// `None` and no clock is read — except request-id assignment, which
/// stays monotone so logs remain correlatable either way.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    enabled: bool,
    /// Latency of `+fact.` update requests.
    pub serve_update: Histogram,
    /// Latency of `?pattern` query requests.
    pub serve_query: Histogram,
    /// Latency of `.explain` requests.
    pub serve_explain: Histogram,
    /// Latency of `-fact.` retraction requests.
    pub serve_retract: Histogram,
    /// Latency of one WAL append (write + buffering).
    pub wal_append: Histogram,
    /// Latency of one WAL fsync.
    pub wal_fsync: Histogram,
    /// Duration of one snapshot write.
    pub snapshot_write: Histogram,
    /// The next request id to assign (ids start at 1).
    next_request_id: AtomicU64,
    /// Connections currently open.
    pub conns_live: AtomicU64,
    /// High-water mark of concurrently open connections.
    pub conns_peak: AtomicU64,
    /// Connections accepted over the process lifetime.
    pub conns_total: AtomicU64,
    /// Requests that exceeded the slow-query threshold.
    pub slow_requests: AtomicU64,
    /// WAL records replayed during recovery.
    pub recovery_wal_records: AtomicU64,
    /// Wall-clock milliseconds spent replaying the WAL at startup.
    pub recovery_replay_ms: AtomicU64,
    /// Whether recovery loaded a snapshot (0/1).
    pub recovery_snapshot_loaded: AtomicU64,
}

impl ServeMetrics {
    /// A disabled registry: request ids still advance, nothing else
    /// records.
    pub fn off() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// An active registry.
    pub fn on() -> ServeMetrics {
        ServeMetrics {
            enabled: true,
            ..ServeMetrics::default()
        }
    }

    /// Whether samples are recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Starts timing one operation; `None` (no clock read) when
    /// disabled.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a timing started with [`ServeMetrics::start`], recording
    /// the elapsed nanoseconds into `hist`. Returns the elapsed
    /// nanoseconds (zero when timing was off).
    #[inline]
    pub fn observe(&self, hist: &Histogram, started: Option<Instant>) -> u64 {
        match started {
            Some(t0) => {
                let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                hist.record(ns);
                ns
            }
            None => 0,
        }
    }

    /// Assigns the next request id (monotone, starts at 1). Runs even
    /// when disabled so logs always carry an id.
    #[inline]
    pub fn next_request_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Notes an accepted connection; returns the live count after.
    pub fn conn_opened(&self) -> u64 {
        self.conns_total.fetch_add(1, Ordering::Relaxed);
        let live = self.conns_live.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns_peak.fetch_max(live, Ordering::Relaxed);
        live
    }

    /// Notes a closed connection.
    pub fn conn_closed(&self) {
        self.conns_live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The bundle of observability sinks threaded through the engine.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Span tracing (phases + RAM statements).
    pub tracer: Tracer,
    /// Named counters and gauges.
    pub metrics: MetricsRegistry,
    /// The leveled stderr stream.
    pub logger: Logger,
}

impl Default for Logger {
    fn default() -> Self {
        Logger::new(LogLevel::Off)
    }
}

impl Telemetry {
    /// Everything disabled — the zero-overhead default.
    pub fn off() -> Telemetry {
        Telemetry::default()
    }

    /// A bundle with the chosen pieces enabled.
    pub fn new(trace: bool, metrics: bool, level: LogLevel) -> Telemetry {
        Telemetry {
            tracer: if trace {
                Tracer::on()
            } else {
                Tracer::default()
            },
            metrics: if metrics {
                MetricsRegistry::on()
            } else {
                MetricsRegistry::default()
            },
            logger: Logger::new(level),
        }
    }
}

/// The name of a representation kind in metrics keys and profiles.
fn repr_name(repr: ReprKind) -> &'static str {
    match repr {
        ReprKind::BTree => "btree",
        ReprKind::Brie => "brie",
        ReprKind::EqRel => "eqrel",
    }
}

/// Assembles the Soufflé-style machine-readable profile of one run.
///
/// Layout (all times in nanoseconds):
///
/// ```json
/// {"root": {
///   "version": 1, "generator": "stir ...",
///   "program": {
///     "runtime_ns": ...,
///     "phase":     {"parse": ..., "ram-translate": ..., ...},
///     "rule":      {"<rule text>": {"time_ns", "executions", "tuples"}},
///     "relation":  {"<name>": {"arity", "tuples", "inserts",
///                   "exists_checks", "range_queries", "scans",
///                   "index": [{"order", "repr", "tuples", "nodes", "bytes"}]}},
///     "iteration": [{"loop", "iteration", "frontier": {"<delta>": size}}],
///     "counter":   {"interp.dispatches": ..., ...}}}}
/// ```
///
/// Sections degrade gracefully: a run without profiling has an empty
/// `rule` table, a run without metrics has no index sizes.
pub fn profile_json(
    ram: &RamProgram,
    profile: Option<&ProfileReport>,
    tel: &Telemetry,
    runtime: Duration,
) -> Json {
    let mut program: Vec<(String, Json)> = Vec::new();
    program.push(("runtime_ns".into(), Json::num(runtime.as_nanos() as u64)));

    // Phase timings from the tracer's `phase:` spans. Statement spans
    // nested under `phase:evaluate` belong to the folded output, not
    // here, so a path only qualifies if every frame is a phase. The
    // one exception: `index-selection` is a synthetic sub-phase the
    // translator records under `phase:ram-translate`.
    let mut phases: Vec<(String, Json)> = Vec::new();
    for (path, stats) in tel.tracer.stats() {
        let is_phase = path
            .split(';')
            .all(|frame| frame.starts_with("phase:") || frame == "index-selection");
        if is_phase {
            let name = path.replace("phase:", "");
            phases.push((name, Json::num(stats.total_ns)));
        }
    }
    program.push(("phase".into(), Json::Obj(phases)));

    // Per-rule statistics, aggregated over delta versions.
    let mut rules: Vec<(String, Json)> = Vec::new();
    if let Some(p) = profile {
        for rule in p.by_rule() {
            rules.push((
                rule.label.clone(),
                Json::obj(vec![
                    ("time_ns".into(), Json::num(rule.time.as_nanos() as u64)),
                    ("executions".into(), Json::num(rule.executions)),
                    ("tuples".into(), Json::num(rule.tuples)),
                ]),
            ));
        }
    }
    program.push(("rule".into(), Json::Obj(rules)));

    // Per-relation operation counters plus sampled index structure.
    let mut relations: Vec<(String, Json)> = Vec::new();
    for (i, meta) in ram.relations.iter().enumerate() {
        let mut fields: Vec<(String, Json)> = vec![("arity".into(), Json::num(meta.arity as u64))];
        if let Some(tuples) = tel.metrics.get(&format!("relation.{}.tuples", meta.name)) {
            fields.push(("tuples".into(), Json::num(tuples)));
        }
        if let Some(p) = profile {
            let ops = &p.relations[i];
            fields.push(("inserts".into(), Json::num(ops.inserts)));
            fields.push(("exists_checks".into(), Json::num(ops.exists_checks)));
            fields.push(("range_queries".into(), Json::num(ops.range_queries)));
            fields.push(("scans".into(), Json::num(ops.scans)));
        }
        let mut indexes: Vec<Json> = Vec::new();
        for (k, order) in meta.orders.iter().enumerate() {
            let mut idx: Vec<(String, Json)> = vec![
                (
                    "order".into(),
                    Json::Arr(order.iter().map(|&c| Json::num(c as u64)).collect()),
                ),
                ("repr".into(), Json::Str(repr_name(meta.repr).into())),
            ];
            for stat in ["tuples", "nodes", "bytes"] {
                let key = format!("relation.{}.index.{k}.{stat}", meta.name);
                if let Some(v) = tel.metrics.get(&key) {
                    idx.push((stat.into(), Json::num(v)));
                }
            }
            indexes.push(Json::Obj(idx));
        }
        fields.push(("index".into(), Json::Arr(indexes)));
        relations.push((meta.name.clone(), Json::Obj(fields)));
    }
    program.push(("relation".into(), Json::Obj(relations)));

    // Per-iteration semi-naive frontier sizes.
    let mut iterations: Vec<Json> = Vec::new();
    if let Some(p) = profile {
        for sample in &p.frontier {
            let frontier: Vec<(String, Json)> = sample
                .deltas
                .iter()
                .map(|&(rel, size)| (ram.relations[rel].name.clone(), Json::num(size)))
                .collect();
            iterations.push(Json::obj(vec![
                ("loop".into(), Json::num(sample.loop_id as u64)),
                ("iteration".into(), Json::num(sample.iteration)),
                ("frontier".into(), Json::Obj(frontier)),
            ]));
        }
    }
    program.push(("iteration".into(), Json::Arr(iterations)));

    // Global counters: interpreter totals plus the whole registry.
    let mut counters: Vec<(String, Json)> = Vec::new();
    if let Some(p) = profile {
        counters.push(("interp.dispatches".into(), Json::num(p.dispatches)));
        counters.push(("interp.iterations".into(), Json::num(p.iterations)));
        counters.push(("interp.super_hits".into(), Json::num(p.super_hits)));
        counters.push(("interp.inserts".into(), Json::num(p.total_inserts)));
    }
    for (key, value) in tel.metrics.snapshot() {
        counters.push((key, Json::num(value)));
    }
    program.push(("counter".into(), Json::Obj(counters)));

    Json::obj(vec![(
        "root".into(),
        Json::obj(vec![
            ("version".into(), Json::num(1)),
            (
                "generator".into(),
                Json::Str(concat!("stir ", env!("CARGO_PKG_VERSION")).into()),
            ),
            ("program".into(), Json::Obj(program)),
        ]),
    )])
}

/// Relations in the semi-naive frontier: the `delta_R` auxiliaries whose
/// sizes the interpreter samples each fixpoint iteration.
pub fn delta_relations(ram: &RamProgram) -> Vec<usize> {
    ram.relations
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r.role, Role::Delta(_)))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_aggregate() {
        let t = Tracer::on();
        {
            let _a = t.span("outer");
            std::thread::sleep(Duration::from_millis(2));
            for _ in 0..3 {
                let _b = t.span("inner");
            }
        }
        let stats = t.stats();
        let outer = &stats.iter().find(|(p, _)| p == "outer").expect("outer").1;
        let inner = &stats
            .iter()
            .find(|(p, _)| p == "outer;inner")
            .expect("inner")
            .1;
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns);
        let folded = t.folded();
        assert!(folded.contains("outer;inner "));
        assert_eq!(folded.lines().count(), 2);
        for line in folded.lines() {
            let (_, ns) = line.rsplit_once(' ').expect("path then value");
            ns.parse::<u64>().expect("self-ns is a number");
        }
    }

    #[test]
    fn record_attributes_time_to_parent() {
        let t = Tracer::on();
        {
            let _a = t.span("phase:translate");
            t.record("index-selection", 5_000);
        }
        let stats = t.stats();
        let sub = &stats
            .iter()
            .find(|(p, _)| p == "phase:translate;index-selection")
            .expect("sub-span recorded")
            .1;
        assert_eq!(sub.total_ns, 5_000);
        assert_eq!(sub.count, 1);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::default();
        {
            let _a = t.span("x");
            t.record("y", 1);
        }
        assert!(t.stats().is_empty());
        assert!(t.folded().is_empty());
    }

    #[test]
    fn metrics_count_and_snapshot() {
        let m = MetricsRegistry::on();
        m.add("a.b", 2);
        m.add("a.b", 3);
        m.set("g", 7);
        assert_eq!(m.get("a.b"), Some(5));
        assert_eq!(m.snapshot(), vec![("a.b".into(), 5), ("g".into(), 7)]);
        let off = MetricsRegistry::default();
        off.add("a", 1);
        assert_eq!(off.get("a"), None);
    }

    #[test]
    fn log_levels_order() {
        let l = Logger::new(LogLevel::Info);
        assert!(l.enabled(LogLevel::Error));
        assert!(l.enabled(LogLevel::Info));
        assert!(!l.enabled(LogLevel::Debug));
        assert!(!Logger::new(LogLevel::Off).enabled(LogLevel::Error));
        assert_eq!("debug".parse::<LogLevel>().unwrap(), LogLevel::Debug);
        assert!("loud".parse::<LogLevel>().is_err());
    }

    #[test]
    fn histogram_buckets_bound_their_values() {
        // Small values are exact.
        for v in 0..8u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_upper(bucket_of(v)), v);
        }
        // Above, the bucket upper bound is >= the value and within
        // 12.5% relative error.
        for v in [8u64, 9, 100, 1_000, 4_095, 4_096, 1 << 20, u64::MAX / 2] {
            let up = bucket_upper(bucket_of(v));
            assert!(up >= v, "upper({v}) = {up}");
            assert!(up - v <= v / 8 + 1, "error too large for {v}: {up}");
        }
        // Bucket upper bounds are strictly increasing over the
        // reachable range (the last reachable bucket holds u64::MAX).
        assert_eq!(bucket_upper(bucket_of(u64::MAX)), u64::MAX);
        let mut prev = bucket_upper(0);
        for i in 1..=bucket_of(u64::MAX) {
            let up = bucket_upper(i);
            assert!(up > prev, "bucket {i} not monotone: {up} <= {prev}");
            prev = up;
        }
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in 1..=1000u64 {
            h.record(v * 1_000);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1_000_000);
        let snap = h.snapshot();
        assert!(snap.p50_ns <= snap.p90_ns);
        assert!(snap.p90_ns <= snap.p99_ns);
        assert!(snap.p99_ns <= snap.p999_ns);
        assert!(snap.p999_ns <= snap.max_ns);
        // p50 of 1..=1000 ms-in-ns is ~500_000; allow bucket error.
        assert!(
            (440_000..=580_000).contains(&snap.p50_ns),
            "{}",
            snap.p50_ns
        );
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [5u64, 50, 500] {
            a.record(v);
        }
        for v in [7u64, 70, 700, 7_000] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.sum(), 5 + 50 + 500 + 7 + 70 + 700 + 7_000);
        assert_eq!(a.max(), 7_000);
        assert_eq!(a.quantile(1.0), 7_000);
    }

    #[test]
    fn serve_metrics_disabled_is_inert_but_ids_advance() {
        let m = ServeMetrics::off();
        assert!(!m.enabled());
        assert!(m.start().is_none());
        assert_eq!(m.observe(&m.serve_query, None), 0);
        assert_eq!(m.serve_query.count(), 0);
        assert_eq!(m.next_request_id(), 1);
        assert_eq!(m.next_request_id(), 2);

        let on = ServeMetrics::on();
        let t0 = on.start();
        assert!(t0.is_some());
        let ns = on.observe(&on.serve_query, t0);
        assert_eq!(on.serve_query.count(), 1);
        assert_eq!(on.serve_query.sum(), ns);
    }

    #[test]
    fn serve_metrics_tracks_connections() {
        let m = ServeMetrics::on();
        assert_eq!(m.conn_opened(), 1);
        assert_eq!(m.conn_opened(), 2);
        m.conn_closed();
        assert_eq!(m.conn_opened(), 2);
        assert_eq!(m.conns_peak.load(Ordering::Relaxed), 2);
        assert_eq!(m.conns_total.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn rfc3339_renders_known_instants() {
        use std::time::{Duration, SystemTime};
        let epoch = SystemTime::UNIX_EPOCH;
        assert_eq!(rfc3339(epoch), "1970-01-01T00:00:00.000Z");
        // 2004-02-29 (leap day) 12:34:56.789 UTC == 1078058096.789.
        let leap = epoch + Duration::from_millis(1_078_058_096_789);
        assert_eq!(rfc3339(leap), "2004-02-29T12:34:56.789Z");
        // 2026-08-07T00:00:00Z == 1786060800.
        let today = epoch + Duration::from_secs(1_786_060_800);
        assert_eq!(rfc3339(today), "2026-08-07T00:00:00.000Z");
    }
}
