//! A minimal JSON value type with a renderer and parser.
//!
//! The profile emitters need machine-readable output (Soufflé emits its
//! profiles as JSON), but the build must work without any external
//! registry, so this hand-rolls the small subset the telemetry layer
//! needs: objects preserve insertion order, numbers are `f64` (Soufflé's
//! profile numbers all fit), and the parser is a straightforward
//! recursive-descent reader used by the tests and the bench harness to
//! consume emitted profiles.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order so emitted profiles are
    /// deterministic and diffable.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object value from key/value pairs.
    pub fn obj(pairs: Vec<(String, Json)>) -> Json {
        Json::Obj(pairs)
    }

    /// A number value from anything convertible to `f64` losslessly
    /// enough for profile counters.
    pub fn num(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned counter, if it is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object entries, if it is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array items, if it is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Counters render as integers; everything else as a float.
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unvalidated-by-us; the input was a &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_ordered() {
        let v = Json::obj(vec![
            ("b".into(), Json::num(2)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s".into(), Json::Str("x\"y\n".into())),
        ]);
        assert_eq!(v.render(), r#"{"b":2,"a":[null,true],"s":"x\"y\n"}"#);
    }

    #[test]
    fn round_trips_through_parse() {
        let v = Json::obj(vec![
            ("name".into(), Json::Str("p(x) :- e(x).".into())),
            ("time_ns".into(), Json::num(123_456_789)),
            ("ratio".into(), Json::Num(0.5)),
            (
                "nested".into(),
                Json::obj(vec![(
                    "arr".into(),
                    Json::Arr(vec![Json::num(1), Json::num(2)]),
                )]),
            ),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, v);
        assert_eq!(back.get("time_ns").unwrap().as_u64(), Some(123_456_789));
        assert_eq!(back.get("name").unwrap().as_str(), Some("p(x) :- e(x)."));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , -2.5e1 , \"\\u0041\\t\" ] } ").expect("parses");
        let items = v.get("k").unwrap().items().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(-25.0));
        assert_eq!(items[2].as_str(), Some("A\t"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("nope").is_err());
    }
}
