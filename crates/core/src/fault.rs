//! Deterministic fault injection for durability testing.
//!
//! Production code calls [`check`] (or [`crash_point`]) at named fault
//! points — WAL appends, fsyncs, snapshot writes/renames, client socket
//! writes. With no plan armed every call is a branch on a relaxed atomic
//! and costs nothing observable. Tests and the CI crash-recovery smoke
//! arm a plan via the `STIR_FAULT` environment variable:
//!
//! ```text
//! STIR_FAULT=point:mode[,point:mode...]
//! ```
//!
//! Recognized points (an unknown point is a parse error so typos fail
//! loudly): `wal_write`, `wal_fsync`, `wal_delete_write`,
//! `wal_delete_fsync`, `snapshot_write`, `snapshot_rename`,
//! `conn_write`, `wal_probe`, `disk_map`, `compact_write`.
//! Insert and delete appends hit distinct points so a
//! test can crash exactly on the N-th *delete* record regardless of how
//! many inserts preceded it.
//!
//! Modes:
//!
//! * `once` — the first hit returns an injected I/O error, later hits
//!   pass.
//! * `always` — every hit returns an injected I/O error.
//! * `at=N` — the N-th hit (1-based) returns an error, others pass.
//! * `p=F` — each hit fails independently with probability `F` in
//!   `[0, 1]`. The decision is a pure function of the plan seed
//!   (`STIR_FAULT_SEED`, default 0), the point, and the 1-based hit
//!   number, so a given seed replays the same fail/pass sequence.
//! * `crash` — the first hit aborts the process (simulating power
//!   loss mid-operation; the caller never runs its error path).
//! * `crash_at=N` — the N-th hit aborts the process.
//!
//! `STIR_FAULT_WINDOW_MS=N` bounds the whole plan in time: once `N`
//! milliseconds have elapsed since the plan was armed (first check),
//! every point passes. This models "the disk recovers" for soak tests
//! that need faults to stop mid-process without restarting it.
//!
//! Injected errors use [`std::io::ErrorKind::Other`] with a message
//! naming the point, so operator-facing errors are self-describing.
//! Crashes use [`std::process::abort`] — no destructors, no flushes —
//! which is the closest portable stand-in for `kill -9` at an exact
//! instruction boundary.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The behavior armed at a single fault point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultMode {
    /// Fail the first hit, pass afterwards.
    Once,
    /// Fail every hit.
    Always,
    /// Fail exactly the `N`-th hit (1-based).
    At(u64),
    /// Fail each hit independently with the given probability, decided
    /// deterministically from the plan seed, point, and hit number.
    P(f64),
    /// Abort the process on the first hit.
    Crash,
    /// Abort the process on the `N`-th hit (1-based).
    CrashAt(u64),
}

/// A named fault point: where to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// A WAL insert-record append (before bytes reach the file).
    WalWrite,
    /// A WAL fsync after an insert append under `--durability always`.
    WalFsync,
    /// A WAL delete-record append (before bytes reach the file).
    WalDeleteWrite,
    /// A WAL fsync after a delete append under `--durability always`.
    WalDeleteFsync,
    /// A snapshot temp-file write.
    SnapshotWrite,
    /// The atomic rename publishing a snapshot.
    SnapshotRename,
    /// A reply write on a client socket.
    ConnWrite,
    /// A storage health probe (degraded-mode heal attempt). Distinct
    /// from the WAL points so probes never shift `at=N` hit counts.
    WalProbe,
    /// Opening/mapping a v2 snapshot for disk-backed cold start (fired
    /// before the file is trusted; a failure falls back or aborts open,
    /// never serves unverified data).
    DiskMap,
    /// A compaction temp-file write (the `.compact` verb's analogue of
    /// `snapshot_write`).
    CompactWrite,
}

impl FaultPoint {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "wal_write" => Some(Self::WalWrite),
            "wal_fsync" => Some(Self::WalFsync),
            "wal_delete_write" => Some(Self::WalDeleteWrite),
            "wal_delete_fsync" => Some(Self::WalDeleteFsync),
            "snapshot_write" => Some(Self::SnapshotWrite),
            "snapshot_rename" => Some(Self::SnapshotRename),
            "conn_write" => Some(Self::ConnWrite),
            "wal_probe" => Some(Self::WalProbe),
            "disk_map" => Some(Self::DiskMap),
            "compact_write" => Some(Self::CompactWrite),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Self::WalWrite => "wal_write",
            Self::WalFsync => "wal_fsync",
            Self::WalDeleteWrite => "wal_delete_write",
            Self::WalDeleteFsync => "wal_delete_fsync",
            Self::SnapshotWrite => "snapshot_write",
            Self::SnapshotRename => "snapshot_rename",
            Self::ConnWrite => "conn_write",
            Self::WalProbe => "wal_probe",
            Self::DiskMap => "disk_map",
            Self::CompactWrite => "compact_write",
        }
    }

    fn index(self) -> usize {
        match self {
            Self::WalWrite => 0,
            Self::WalFsync => 1,
            Self::WalDeleteWrite => 2,
            Self::WalDeleteFsync => 3,
            Self::SnapshotWrite => 4,
            Self::SnapshotRename => 5,
            Self::ConnWrite => 6,
            Self::WalProbe => 7,
            Self::DiskMap => 8,
            Self::CompactWrite => 9,
        }
    }
}

const POINT_COUNT: usize = 10;

/// A parsed `STIR_FAULT` specification plus per-point hit counters.
#[derive(Debug)]
pub struct FaultPlan {
    modes: [Option<FaultMode>; POINT_COUNT],
    hits: [AtomicU64; POINT_COUNT],
    /// Seed for `p=` decisions; every hit is a pure function of
    /// `(seed, point, hit)`, so two plans with equal seeds replay the
    /// same fail/pass sequence.
    seed: u64,
    /// When set, all checks pass once this much time has elapsed since
    /// `armed_at` — "the disk recovers".
    window: Option<Duration>,
    armed_at: Instant,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            modes: Default::default(),
            hits: Default::default(),
            seed: 0,
            window: None,
            armed_at: Instant::now(),
        }
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mix used to turn
/// `(seed, point, hit)` into an independent uniform draw.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// Parses a `point:mode[,point:mode...]` spec. Empty input yields an
    /// empty (all-pass) plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        Self::parse_seeded(spec, 0)
    }

    /// Like [`FaultPlan::parse`] with an explicit seed for `p=` modes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse_seeded(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (point_s, mode_s) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault entry `{entry}` is not point:mode"))?;
            let point = FaultPoint::parse(point_s)
                .ok_or_else(|| format!("unknown fault point `{point_s}`"))?;
            let mode = match mode_s {
                "once" => FaultMode::Once,
                "always" => FaultMode::Always,
                "crash" => FaultMode::Crash,
                _ => {
                    if let Some(n) = mode_s.strip_prefix("at=") {
                        FaultMode::At(
                            n.parse()
                                .map_err(|_| format!("bad fault count in `{entry}`"))?,
                        )
                    } else if let Some(n) = mode_s.strip_prefix("crash_at=") {
                        FaultMode::CrashAt(
                            n.parse()
                                .map_err(|_| format!("bad fault count in `{entry}`"))?,
                        )
                    } else if let Some(f) = mode_s.strip_prefix("p=") {
                        let p: f64 = f
                            .parse()
                            .map_err(|_| format!("bad fault probability in `{entry}`"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("fault probability out of [0,1] in `{entry}`"));
                        }
                        FaultMode::P(p)
                    } else {
                        return Err(format!("unknown fault mode `{mode_s}`"));
                    }
                }
            };
            plan.modes[point.index()] = Some(mode);
        }
        Ok(plan)
    }

    /// Evaluates one hit of `point` against this plan.
    ///
    /// # Errors
    ///
    /// Returns the injected error when the armed mode fires on this hit.
    /// May abort the process (crash modes).
    pub fn check(&self, point: FaultPoint) -> io::Result<()> {
        let Some(mode) = self.modes[point.index()] else {
            return Ok(());
        };
        if let Some(window) = self.window {
            if self.armed_at.elapsed() >= window {
                // The fault window has closed: the disk has "recovered".
                return Ok(());
            }
        }
        // 1-based hit number for this point.
        let hit = self.hits[point.index()].fetch_add(1, Ordering::Relaxed) + 1;
        let fire = match mode {
            FaultMode::Once | FaultMode::Crash => hit == 1,
            FaultMode::Always => true,
            FaultMode::At(n) | FaultMode::CrashAt(n) => hit == n,
            FaultMode::P(p) => {
                // Deterministic per-hit draw: mix (seed, point, hit)
                // into a uniform in [0, 1) and compare against p. No
                // shared RNG state, so concurrent hits at different
                // points never perturb each other's sequences.
                let mixed = splitmix64(
                    self.seed ^ (point.index() as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ hit,
                );
                let draw = (mixed >> 11) as f64 / (1u64 << 53) as f64;
                draw < p
            }
        };
        if !fire {
            return Ok(());
        }
        match mode {
            FaultMode::Crash | FaultMode::CrashAt(_) => {
                // Simulated power loss: no unwinding, no buffers flushed.
                eprintln!("stir: injected crash at fault point {}", point.name());
                std::process::abort();
            }
            _ => Err(io::Error::other(format!(
                "injected fault at {}",
                point.name()
            ))),
        }
    }
}

fn global() -> &'static FaultPlan {
    static PLAN: OnceLock<FaultPlan> = OnceLock::new();
    PLAN.get_or_init(|| {
        let seed = std::env::var("STIR_FAULT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let mut plan = match std::env::var("STIR_FAULT") {
            Ok(spec) => match FaultPlan::parse_seeded(&spec, seed) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("stir: ignoring malformed STIR_FAULT: {e}");
                    FaultPlan::default()
                }
            },
            Err(_) => FaultPlan::default(),
        };
        if let Some(ms) = std::env::var("STIR_FAULT_WINDOW_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            plan.window = Some(Duration::from_millis(ms));
            plan.armed_at = Instant::now();
        }
        plan
    })
}

/// Evaluates one hit of `point` against the process-global plan parsed
/// from `STIR_FAULT` (armed lazily on first call).
///
/// # Errors
///
/// Returns the injected error when the armed mode fires; may abort the
/// process for crash modes.
pub fn check(point: FaultPoint) -> io::Result<()> {
    global().check(point)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_all_pass() {
        let plan = FaultPlan::parse("").expect("parses");
        for _ in 0..3 {
            assert!(plan.check(FaultPoint::WalWrite).is_ok());
        }
    }

    #[test]
    fn once_fires_exactly_once() {
        let plan = FaultPlan::parse("wal_write:once").expect("parses");
        assert!(plan.check(FaultPoint::WalWrite).is_err());
        assert!(plan.check(FaultPoint::WalWrite).is_ok());
        assert!(
            plan.check(FaultPoint::WalFsync).is_ok(),
            "other points pass"
        );
    }

    #[test]
    fn always_fires_every_time() {
        let plan = FaultPlan::parse("snapshot_write:always").expect("parses");
        for _ in 0..3 {
            assert!(plan.check(FaultPoint::SnapshotWrite).is_err());
        }
    }

    #[test]
    fn at_n_fires_on_the_nth_hit_only() {
        let plan = FaultPlan::parse("conn_write:at=3").expect("parses");
        assert!(plan.check(FaultPoint::ConnWrite).is_ok());
        assert!(plan.check(FaultPoint::ConnWrite).is_ok());
        let err = plan.check(FaultPoint::ConnWrite).unwrap_err();
        assert!(err.to_string().contains("conn_write"), "{err}");
        assert!(plan.check(FaultPoint::ConnWrite).is_ok());
    }

    #[test]
    fn multiple_entries_parse() {
        let plan = FaultPlan::parse("wal_write:at=2, snapshot_rename:once").expect("parses");
        assert!(plan.check(FaultPoint::WalWrite).is_ok());
        assert!(plan.check(FaultPoint::WalWrite).is_err());
        assert!(plan.check(FaultPoint::SnapshotRename).is_err());
    }

    #[test]
    fn delete_points_are_independent_of_insert_points() {
        let plan = FaultPlan::parse("wal_delete_write:at=2,wal_delete_fsync:once").expect("parses");
        assert!(plan.check(FaultPoint::WalWrite).is_ok(), "inserts pass");
        assert!(plan.check(FaultPoint::WalDeleteWrite).is_ok());
        let err = plan.check(FaultPoint::WalDeleteWrite).unwrap_err();
        assert!(err.to_string().contains("wal_delete_write"), "{err}");
        assert!(plan.check(FaultPoint::WalDeleteFsync).is_err());
        assert!(plan.check(FaultPoint::WalFsync).is_ok());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "wal_write",
            "nope:once",
            "wal_write:sometimes",
            "wal_write:at=x",
            "wal_write:crash_at=",
            "wal_write:p=",
            "wal_write:p=nan",
            "wal_write:p=1.5",
            "wal_write:p=-0.1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn probabilistic_mode_is_deterministic_under_a_seed() {
        // Two plans with the same seed replay the same sequence...
        let a = FaultPlan::parse_seeded("wal_fsync:p=0.5", 42).expect("parses");
        let b = FaultPlan::parse_seeded("wal_fsync:p=0.5", 42).expect("parses");
        let seq_a: Vec<bool> = (0..64)
            .map(|_| a.check(FaultPoint::WalFsync).is_err())
            .collect();
        let seq_b: Vec<bool> = (0..64)
            .map(|_| b.check(FaultPoint::WalFsync).is_err())
            .collect();
        assert_eq!(seq_a, seq_b, "same seed must replay identically");
        // ...with a fire rate in the right ballpark for p=0.5.
        let fires = seq_a.iter().filter(|f| **f).count();
        assert!((16..=48).contains(&fires), "p=0.5 fired {fires}/64 times");
        // A different seed produces a different sequence.
        let c = FaultPlan::parse_seeded("wal_fsync:p=0.5", 43).expect("parses");
        let seq_c: Vec<bool> = (0..64)
            .map(|_| c.check(FaultPoint::WalFsync).is_err())
            .collect();
        assert_ne!(seq_a, seq_c, "different seeds should diverge");
    }

    #[test]
    fn probabilistic_draws_are_independent_per_point() {
        // The per-point salt decorrelates sequences: two points armed at
        // the same probability under the same seed must not fire in
        // lockstep.
        let plan = FaultPlan::parse_seeded("wal_write:p=0.5,wal_fsync:p=0.5", 7).expect("parses");
        let writes: Vec<bool> = (0..64)
            .map(|_| plan.check(FaultPoint::WalWrite).is_err())
            .collect();
        let fsyncs: Vec<bool> = (0..64)
            .map(|_| plan.check(FaultPoint::WalFsync).is_err())
            .collect();
        assert_ne!(writes, fsyncs, "points should draw independently");
    }

    #[test]
    fn probability_extremes_always_or_never_fire() {
        let plan = FaultPlan::parse_seeded("wal_write:p=1.0,wal_fsync:p=0.0", 9).expect("parses");
        for _ in 0..16 {
            assert!(plan.check(FaultPoint::WalWrite).is_err(), "p=1 fires");
            assert!(plan.check(FaultPoint::WalFsync).is_ok(), "p=0 passes");
        }
    }

    #[test]
    fn an_expired_window_disarms_every_point() {
        let mut plan = FaultPlan::parse("wal_write:always").expect("parses");
        plan.window = Some(Duration::from_millis(0));
        plan.armed_at = Instant::now() - Duration::from_millis(5);
        assert!(plan.check(FaultPoint::WalWrite).is_ok(), "window closed");
        let mut open = FaultPlan::parse("wal_write:always").expect("parses");
        open.window = Some(Duration::from_secs(3600));
        assert!(open.check(FaultPoint::WalWrite).is_err(), "window open");
    }

    #[test]
    fn disk_points_parse_and_fire() {
        let plan = FaultPlan::parse("disk_map:once,compact_write:at=2").expect("parses");
        let err = plan.check(FaultPoint::DiskMap).unwrap_err();
        assert!(err.to_string().contains("disk_map"), "{err}");
        assert!(plan.check(FaultPoint::DiskMap).is_ok());
        assert!(plan.check(FaultPoint::CompactWrite).is_ok());
        let err = plan.check(FaultPoint::CompactWrite).unwrap_err();
        assert!(err.to_string().contains("compact_write"), "{err}");
        assert!(plan.check(FaultPoint::SnapshotWrite).is_ok(), "others pass");
    }

    #[test]
    fn wal_probe_point_parses_and_fires() {
        let plan = FaultPlan::parse("wal_probe:once").expect("parses");
        let err = plan.check(FaultPoint::WalProbe).unwrap_err();
        assert!(err.to_string().contains("wal_probe"), "{err}");
        assert!(plan.check(FaultPoint::WalProbe).is_ok());
        assert!(plan.check(FaultPoint::WalWrite).is_ok(), "others pass");
    }
}
