//! Deterministic fault injection for durability testing.
//!
//! Production code calls [`check`] (or [`crash_point`]) at named fault
//! points — WAL appends, fsyncs, snapshot writes/renames, client socket
//! writes. With no plan armed every call is a branch on a relaxed atomic
//! and costs nothing observable. Tests and the CI crash-recovery smoke
//! arm a plan via the `STIR_FAULT` environment variable:
//!
//! ```text
//! STIR_FAULT=point:mode[,point:mode...]
//! ```
//!
//! Recognized points (an unknown point is a parse error so typos fail
//! loudly): `wal_write`, `wal_fsync`, `wal_delete_write`,
//! `wal_delete_fsync`, `snapshot_write`, `snapshot_rename`,
//! `conn_write`. Insert and delete appends hit distinct points so a
//! test can crash exactly on the N-th *delete* record regardless of how
//! many inserts preceded it.
//!
//! Modes:
//!
//! * `once` — the first hit returns an injected I/O error, later hits
//!   pass.
//! * `always` — every hit returns an injected I/O error.
//! * `at=N` — the N-th hit (1-based) returns an error, others pass.
//! * `crash` — the first hit aborts the process (simulating power
//!   loss mid-operation; the caller never runs its error path).
//! * `crash_at=N` — the N-th hit aborts the process.
//!
//! Injected errors use [`std::io::ErrorKind::Other`] with a message
//! naming the point, so operator-facing errors are self-describing.
//! Crashes use [`std::process::abort`] — no destructors, no flushes —
//! which is the closest portable stand-in for `kill -9` at an exact
//! instruction boundary.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The behavior armed at a single fault point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fail the first hit, pass afterwards.
    Once,
    /// Fail every hit.
    Always,
    /// Fail exactly the `N`-th hit (1-based).
    At(u64),
    /// Abort the process on the first hit.
    Crash,
    /// Abort the process on the `N`-th hit (1-based).
    CrashAt(u64),
}

/// A named fault point: where to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// A WAL insert-record append (before bytes reach the file).
    WalWrite,
    /// A WAL fsync after an insert append under `--durability always`.
    WalFsync,
    /// A WAL delete-record append (before bytes reach the file).
    WalDeleteWrite,
    /// A WAL fsync after a delete append under `--durability always`.
    WalDeleteFsync,
    /// A snapshot temp-file write.
    SnapshotWrite,
    /// The atomic rename publishing a snapshot.
    SnapshotRename,
    /// A reply write on a client socket.
    ConnWrite,
}

impl FaultPoint {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "wal_write" => Some(Self::WalWrite),
            "wal_fsync" => Some(Self::WalFsync),
            "wal_delete_write" => Some(Self::WalDeleteWrite),
            "wal_delete_fsync" => Some(Self::WalDeleteFsync),
            "snapshot_write" => Some(Self::SnapshotWrite),
            "snapshot_rename" => Some(Self::SnapshotRename),
            "conn_write" => Some(Self::ConnWrite),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Self::WalWrite => "wal_write",
            Self::WalFsync => "wal_fsync",
            Self::WalDeleteWrite => "wal_delete_write",
            Self::WalDeleteFsync => "wal_delete_fsync",
            Self::SnapshotWrite => "snapshot_write",
            Self::SnapshotRename => "snapshot_rename",
            Self::ConnWrite => "conn_write",
        }
    }

    fn index(self) -> usize {
        match self {
            Self::WalWrite => 0,
            Self::WalFsync => 1,
            Self::WalDeleteWrite => 2,
            Self::WalDeleteFsync => 3,
            Self::SnapshotWrite => 4,
            Self::SnapshotRename => 5,
            Self::ConnWrite => 6,
        }
    }
}

const POINT_COUNT: usize = 7;

/// A parsed `STIR_FAULT` specification plus per-point hit counters.
#[derive(Debug, Default)]
pub struct FaultPlan {
    modes: [Option<FaultMode>; POINT_COUNT],
    hits: [AtomicU64; POINT_COUNT],
}

impl FaultPlan {
    /// Parses a `point:mode[,point:mode...]` spec. Empty input yields an
    /// empty (all-pass) plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (point_s, mode_s) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault entry `{entry}` is not point:mode"))?;
            let point = FaultPoint::parse(point_s)
                .ok_or_else(|| format!("unknown fault point `{point_s}`"))?;
            let mode = match mode_s {
                "once" => FaultMode::Once,
                "always" => FaultMode::Always,
                "crash" => FaultMode::Crash,
                _ => {
                    if let Some(n) = mode_s.strip_prefix("at=") {
                        FaultMode::At(
                            n.parse()
                                .map_err(|_| format!("bad fault count in `{entry}`"))?,
                        )
                    } else if let Some(n) = mode_s.strip_prefix("crash_at=") {
                        FaultMode::CrashAt(
                            n.parse()
                                .map_err(|_| format!("bad fault count in `{entry}`"))?,
                        )
                    } else {
                        return Err(format!("unknown fault mode `{mode_s}`"));
                    }
                }
            };
            plan.modes[point.index()] = Some(mode);
        }
        Ok(plan)
    }

    /// Evaluates one hit of `point` against this plan.
    ///
    /// # Errors
    ///
    /// Returns the injected error when the armed mode fires on this hit.
    /// May abort the process (crash modes).
    pub fn check(&self, point: FaultPoint) -> io::Result<()> {
        let Some(mode) = self.modes[point.index()] else {
            return Ok(());
        };
        // 1-based hit number for this point.
        let hit = self.hits[point.index()].fetch_add(1, Ordering::Relaxed) + 1;
        let fire = match mode {
            FaultMode::Once | FaultMode::Crash => hit == 1,
            FaultMode::Always => true,
            FaultMode::At(n) | FaultMode::CrashAt(n) => hit == n,
        };
        if !fire {
            return Ok(());
        }
        match mode {
            FaultMode::Crash | FaultMode::CrashAt(_) => {
                // Simulated power loss: no unwinding, no buffers flushed.
                eprintln!("stir: injected crash at fault point {}", point.name());
                std::process::abort();
            }
            _ => Err(io::Error::other(format!(
                "injected fault at {}",
                point.name()
            ))),
        }
    }
}

fn global() -> &'static FaultPlan {
    static PLAN: OnceLock<FaultPlan> = OnceLock::new();
    PLAN.get_or_init(|| match std::env::var("STIR_FAULT") {
        Ok(spec) => match FaultPlan::parse(&spec) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("stir: ignoring malformed STIR_FAULT: {e}");
                FaultPlan::default()
            }
        },
        Err(_) => FaultPlan::default(),
    })
}

/// Evaluates one hit of `point` against the process-global plan parsed
/// from `STIR_FAULT` (armed lazily on first call).
///
/// # Errors
///
/// Returns the injected error when the armed mode fires; may abort the
/// process for crash modes.
pub fn check(point: FaultPoint) -> io::Result<()> {
    global().check(point)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_all_pass() {
        let plan = FaultPlan::parse("").expect("parses");
        for _ in 0..3 {
            assert!(plan.check(FaultPoint::WalWrite).is_ok());
        }
    }

    #[test]
    fn once_fires_exactly_once() {
        let plan = FaultPlan::parse("wal_write:once").expect("parses");
        assert!(plan.check(FaultPoint::WalWrite).is_err());
        assert!(plan.check(FaultPoint::WalWrite).is_ok());
        assert!(
            plan.check(FaultPoint::WalFsync).is_ok(),
            "other points pass"
        );
    }

    #[test]
    fn always_fires_every_time() {
        let plan = FaultPlan::parse("snapshot_write:always").expect("parses");
        for _ in 0..3 {
            assert!(plan.check(FaultPoint::SnapshotWrite).is_err());
        }
    }

    #[test]
    fn at_n_fires_on_the_nth_hit_only() {
        let plan = FaultPlan::parse("conn_write:at=3").expect("parses");
        assert!(plan.check(FaultPoint::ConnWrite).is_ok());
        assert!(plan.check(FaultPoint::ConnWrite).is_ok());
        let err = plan.check(FaultPoint::ConnWrite).unwrap_err();
        assert!(err.to_string().contains("conn_write"), "{err}");
        assert!(plan.check(FaultPoint::ConnWrite).is_ok());
    }

    #[test]
    fn multiple_entries_parse() {
        let plan = FaultPlan::parse("wal_write:at=2, snapshot_rename:once").expect("parses");
        assert!(plan.check(FaultPoint::WalWrite).is_ok());
        assert!(plan.check(FaultPoint::WalWrite).is_err());
        assert!(plan.check(FaultPoint::SnapshotRename).is_err());
    }

    #[test]
    fn delete_points_are_independent_of_insert_points() {
        let plan = FaultPlan::parse("wal_delete_write:at=2,wal_delete_fsync:once").expect("parses");
        assert!(plan.check(FaultPoint::WalWrite).is_ok(), "inserts pass");
        assert!(plan.check(FaultPoint::WalDeleteWrite).is_ok());
        let err = plan.check(FaultPoint::WalDeleteWrite).unwrap_err();
        assert!(err.to_string().contains("wal_delete_write"), "{err}");
        assert!(plan.check(FaultPoint::WalDeleteFsync).is_err());
        assert!(plan.check(FaultPoint::WalFsync).is_ok());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "wal_write",
            "nope:once",
            "wal_write:sometimes",
            "wal_write:at=x",
            "wal_write:crash_at=",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
