//! Durability: write-ahead fact log and database snapshots.
//!
//! The resident engine acknowledges an `insert_facts` batch only after
//! the batch is in the write-ahead log, so a crash at *any* later point
//! (during delta evaluation, between requests, mid-snapshot) loses no
//! acknowledged data: restart loads the latest valid snapshot and
//! replays the WAL suffix. This module owns the two on-disk formats; the
//! recovery choreography lives in [`crate::resident`].
//!
//! # WAL format
//!
//! ```text
//! header:  b"STIRWAL2"  [u64 program fingerprint]
//! record:  [u32 payload_len] [u32 crc32(payload)] [payload]
//! payload: [u8 kind: 0 insert, 1 delete]
//!          [u32 name_len] [name bytes]
//!          [u32 row_count] [u32 arity]  row_count × arity × value
//! value:   [u8 tag] tag 0|1|2 → [u32 bits]   (number/unsigned/float)
//!                   tag 3     → [u32 len] [utf-8 bytes]   (symbol)
//! ```
//!
//! Version 2 adds the per-record kind byte so retractions are logged
//! alongside insertions. Version-1 logs (magic `STIRWAL1`, no kind byte)
//! are still replayed — every record reads as an insert — and the opener
//! rewrites them in the v2 format before appending, so a single log file
//! never mixes frame formats. Values are stored *typed* (not as interned
//! bit patterns) because a recovery without a snapshot re-interns symbols
//! into a fresh table whose ids need not match the crashed process's. All
//! integers are little-endian. Replay stops at the first short read or
//! checksum mismatch — a torn tail from a crash mid-append — and the
//! writer truncates the file back to the last valid record. A frame whose
//! checksum *verifies* but whose payload does not decode (an unknown
//! record kind, trailing bytes) is different: those bytes were written
//! deliberately, by a newer or foreign writer, so replay fails loudly
//! with the record's file offset instead of silently truncating
//! acknowledged history.
//!
//! # Snapshot format
//!
//! ```text
//! b"STIRSNP1" [u64 fingerprint] [u32 counter]
//! [u32 symbol_count] symbol_count × ([u32 len] bytes)
//! [u32 relation_count] relation_count ×
//!     ([u32 name_len] name [u32 arity] tuple-section)   (see stir_der::dump)
//! [u64 extra_fact_count] extra_fact_count ×
//!     ([u32 rel_id] [u32 arity] arity × [u32])
//! [u32 crc32 of everything before]
//! ```
//!
//! A snapshot stores every `Role::Standard` relation — EDB *and* IDB —
//! so loading one skips the initial fixpoint entirely. The `extra_facts`
//! replay list is persisted explicitly (not reconstructed from relation
//! contents) because an `.input` relation that is also a rule head may
//! contain derived tuples, and replaying those as ground facts would
//! wrongly survive a negation-driven retraction. Snapshots are written
//! to a temp file, fsynced, and renamed into place, so a crash never
//! leaves a half-written snapshot visible; the fingerprint (FNV-1a over
//! the printed RAM program) rejects snapshots from a different program.
//! The tuple payload is config-independent — RAM translation does not
//! depend on [`crate::InterpreterConfig`] — so a snapshot written under
//! one engine mode restores under any other.

use crate::database::Database;
use crate::error::StorageError;
use crate::fault::{self, FaultPoint};
use crate::telemetry::ServeMetrics;
use crate::value::Value;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use stir_ram::expr::RamDomain;
use stir_ram::program::{RamProgram, RelId, Role};

/// WAL file magic (current, version 2: records carry a kind byte).
const WAL_MAGIC: &[u8; 8] = b"STIRWAL2";
/// Version-1 WAL magic: kind-less records, accepted on read as inserts.
const WAL_MAGIC_V1: &[u8; 8] = b"STIRWAL1";
/// Snapshot file magic.
const SNAP_MAGIC: &[u8; 8] = b"STIRSNP1";
/// WAL header length: magic + fingerprint.
const WAL_HEADER: u64 = 16;

// ---------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------

/// CRC-32 lookup table (IEEE 802.3, reflected polynomial 0xEDB88320),
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Feeds `data` into a running CRC-32 register (`state` starts at `!0`
/// and the caller inverts the final value). Lets large files — the v2
/// snapshots in [`crate::snap2`] — be checksummed in streaming chunks
/// without buffering the whole file.
pub(crate) fn crc32_feed(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// Standard CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320),
/// table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_feed(!0u32, data)
}

/// FNV-1a 64-bit hash; fingerprints the printed RAM program so durable
/// state from a *different* program is never silently loaded.
pub fn fingerprint(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Durability policy
// ---------------------------------------------------------------------

/// How hard the WAL pushes each accepted batch toward stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Buffered in process memory; a crash can lose recent batches.
    None,
    /// Written to the OS per batch (survives process crash, not power
    /// loss). The default.
    #[default]
    Batch,
    /// `fsync` per batch (survives power loss).
    Always,
}

impl Durability {
    /// Parses `none` / `batch` / `always`.
    ///
    /// # Errors
    ///
    /// Describes the accepted values on mismatch.
    pub fn parse(s: &str) -> Result<Durability, String> {
        match s {
            "none" => Ok(Durability::None),
            "batch" => Ok(Durability::Batch),
            "always" => Ok(Durability::Always),
            _ => Err(format!(
                "invalid durability `{s}` (expected none, batch, or always)"
            )),
        }
    }

    /// The default durability, overridable via `$STIR_DURABILITY` (the
    /// same pattern as `$STIR_JOBS`); malformed values are ignored.
    pub fn default_from_env() -> Durability {
        std::env::var("STIR_DURABILITY")
            .ok()
            .and_then(|s| Durability::parse(&s).ok())
            .unwrap_or_default()
    }

    /// The flag spelling (`none`/`batch`/`always`).
    pub fn as_str(self) -> &'static str {
        match self {
            Durability::None => "none",
            Durability::Batch => "batch",
            Durability::Always => "always",
        }
    }
}

// ---------------------------------------------------------------------
// Byte-level helpers
// ---------------------------------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Number(n) => {
            buf.push(0);
            put_u32(buf, *n as u32);
        }
        Value::Unsigned(u) => {
            buf.push(1);
            put_u32(buf, *u);
        }
        Value::Float(f) => {
            buf.push(2);
            put_u32(buf, f.to_bits());
        }
        Value::Symbol(s) => {
            buf.push(3);
            put_str(buf, s);
        }
    }
}

/// A bounds-checked reader over an in-memory byte slice. Every getter
/// fails cleanly on truncation instead of panicking, so corrupt durable
/// files surface as [`StorageError`]s.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// The current read position, for error messages that name offsets.
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| StorageError::new("truncated durable file"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> Result<String, StorageError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::new("non-UTF-8 string in durable file"))
    }

    fn value(&mut self) -> Result<Value, StorageError> {
        match self.u8()? {
            0 => Ok(Value::Number(self.u32()? as i32)),
            1 => Ok(Value::Unsigned(self.u32()?)),
            2 => Ok(Value::Float(f32::from_bits(self.u32()?))),
            3 => Ok(Value::Symbol(self.str()?)),
            t => Err(StorageError::new(format!("unknown value tag {t}"))),
        }
    }

    /// The unread remainder of the buffer; the read position is
    /// unchanged (pair with [`ByteReader::skip`] after consuming).
    pub(crate) fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Advances the read position by `n` bytes (the caller has already
    /// bounds-checked by consuming from [`ByteReader::rest`]).
    pub(crate) fn skip(&mut self, n: usize) {
        self.pos += n;
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------

/// What a WAL record does to its target relation on replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecordKind {
    /// An `insert_facts` batch (v1 records all read as this).
    Insert,
    /// A `retract_facts` batch.
    Delete,
}

impl WalRecordKind {
    fn tag(self) -> u8 {
        match self {
            WalRecordKind::Insert => 0,
            WalRecordKind::Delete => 1,
        }
    }
}

/// One logged `insert_facts` / `retract_facts` batch.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Whether the batch inserts or deletes.
    pub kind: WalRecordKind,
    /// Target `.input` relation name.
    pub rel: String,
    /// The batch, as typed values.
    pub rows: Vec<Vec<Value>>,
}

impl WalRecord {
    fn encode(kind: WalRecordKind, rel: &str, rows: &[Vec<Value>]) -> Vec<u8> {
        let arity = rows.first().map_or(0, Vec::len);
        let mut payload = Vec::new();
        payload.push(kind.tag());
        put_str(&mut payload, rel);
        put_u32(&mut payload, rows.len() as u32);
        put_u32(&mut payload, arity as u32);
        for row in rows {
            for v in row {
                put_value(&mut payload, v);
            }
        }
        let mut framed = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut framed, payload.len() as u32);
        put_u32(&mut framed, crc32(&payload));
        framed.extend_from_slice(&payload);
        framed
    }

    fn decode(payload: &[u8], version: u8) -> Result<WalRecord, StorageError> {
        let mut r = ByteReader::new(payload);
        let kind = if version >= 2 {
            match r.u8()? {
                0 => WalRecordKind::Insert,
                1 => WalRecordKind::Delete,
                k => {
                    return Err(StorageError::new(format!(
                        "unknown WAL record kind {k} (written by a newer stir?)"
                    )))
                }
            }
        } else {
            WalRecordKind::Insert
        };
        let rel = r.str()?;
        let rows = r.u32()? as usize;
        let arity = r.u32()? as usize;
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                row.push(r.value()?);
            }
            out.push(row);
        }
        if !r.done() {
            return Err(StorageError::new("trailing bytes in WAL record"));
        }
        Ok(WalRecord {
            kind,
            rel,
            rows: out,
        })
    }
}

/// What [`replay`] found in an existing WAL.
#[derive(Debug)]
pub struct WalReplay {
    /// Valid records, in append order.
    pub records: Vec<WalRecord>,
    /// File offset after the last valid record (where appends resume).
    pub valid_len: u64,
    /// Bytes of torn tail discarded after the last valid record.
    pub torn_bytes: u64,
    /// The header version of the file (2 for fresh/missing logs). A
    /// version-1 log must be rewritten (see [`rewrite`]) before a v2
    /// record is appended to it.
    pub version: u8,
}

impl Default for WalReplay {
    fn default() -> Self {
        WalReplay {
            records: Vec::new(),
            valid_len: 0,
            torn_bytes: 0,
            version: 2,
        }
    }
}

/// Reads every valid record of the WAL at `path`, stopping at the first
/// torn record (short frame or checksum mismatch).
///
/// A missing file or a WAL for a different program fingerprint yields an
/// empty replay with `valid_len = 0`, which makes the subsequent
/// [`WalWriter::open`] start the file over.
///
/// # Errors
///
/// Propagates I/O errors other than the file not existing, and rejects a
/// checksum-*valid* frame whose payload does not decode (an unknown
/// record kind or trailing bytes — a newer or foreign writer, not a torn
/// crash tail), reporting its file offset. Truncating such a frame would
/// silently drop acknowledged history behind it.
pub fn replay(path: &Path, fp: u64) -> Result<WalReplay, StorageError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => f
            .read_to_end(&mut bytes)
            .map_err(|e| StorageError::io("read WAL", &e))?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(StorageError::io("open WAL", &e)),
    };
    if bytes.len() < WAL_HEADER as usize
        || (&bytes[..8] != WAL_MAGIC && &bytes[..8] != WAL_MAGIC_V1)
        || bytes[8..16] != fp.to_le_bytes()
    {
        // Foreign or truncated-below-header WAL: start over. (A header
        // can only be torn if the very first append crashed, in which
        // case nothing was ever acknowledged.)
        return Ok(WalReplay::default());
    }
    let version: u8 = if &bytes[..8] == WAL_MAGIC { 2 } else { 1 };
    let mut out = WalReplay {
        valid_len: WAL_HEADER,
        version,
        ..WalReplay::default()
    };
    let mut pos = WAL_HEADER as usize;
    while pos < bytes.len() {
        let Some(frame) = bytes.get(pos..pos + 8) else {
            break; // torn frame header
        };
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break; // torn payload
        };
        if crc32(payload) != crc {
            break; // corrupt or torn payload
        }
        // The checksum passed, so these bytes are exactly what some
        // writer meant to append; a decode failure here is a format we
        // do not understand, not damage, and must not be "recovered"
        // from by truncation.
        let record = WalRecord::decode(payload, version)
            .map_err(|e| StorageError::new(format!("WAL record at offset {pos}: {}", e.msg)))?;
        out.records.push(record);
        pos += 8 + len;
        out.valid_len = pos as u64;
    }
    out.torn_bytes = bytes.len() as u64 - out.valid_len;
    Ok(out)
}

/// Rewrites the WAL at `path` as a fresh version-2 log holding exactly
/// `records` (atomically: temp file + fsync + rename), returning the new
/// valid length. Used by recovery to upgrade a version-1 log in place so
/// appended delete records never share a file with kind-less v1 frames.
///
/// # Errors
///
/// Propagates I/O errors; on failure the original log is untouched.
pub fn rewrite(path: &Path, fp: u64, records: &[WalRecord]) -> Result<u64, StorageError> {
    let mut buf = Vec::new();
    buf.extend_from_slice(WAL_MAGIC);
    buf.extend_from_slice(&fp.to_le_bytes());
    for rec in records {
        buf.extend_from_slice(&WalRecord::encode(rec.kind, &rec.rel, &rec.rows));
    }
    let err = |op: &'static str| move |e: io::Error| StorageError::io(op, &e);
    let tmp = path.with_extension("upgrade");
    {
        let mut f = File::create(&tmp).map_err(err("create WAL upgrade temp"))?;
        f.write_all(&buf).map_err(err("write WAL upgrade"))?;
        f.sync_all().map_err(err("fsync WAL upgrade"))?;
    }
    std::fs::rename(&tmp, path).map_err(err("publish WAL upgrade"))?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(buf.len() as u64)
}

/// Append-path counters, surfaced as `wal.*` metrics.
#[derive(Debug, Default, Clone, Copy)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Bytes appended (frames + payloads).
    pub bytes: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Appends that failed (and were rolled back or poisoned the log).
    pub append_errors: u64,
}

/// An open WAL accepting appends.
#[derive(Debug)]
pub struct WalWriter {
    /// Shared with the group-commit barrier (when enabled), which
    /// fsyncs outside the engine write lock. `&File` implements
    /// `Write`/`Seek`, so the writer's exclusive `&mut self` methods
    /// keep their single-writer discipline through the `Arc`.
    file: Arc<File>,
    durability: Durability,
    len: u64,
    /// Set when a failed append could not be rolled back: the tail may
    /// hold garbage that replay would misparse, so further appends (and
    /// hence acknowledgements) are refused until a snapshot resets the
    /// log.
    broken: bool,
    /// Append-path counters.
    pub stats: WalStats,
    /// Serving-side latency sinks (disabled in batch mode).
    metrics: Arc<ServeMetrics>,
    /// When set (serving under `always`), appends defer their fsync to
    /// this barrier and hand the caller a [`CommitTicket`] instead of
    /// syncing inline.
    group: Option<Arc<GroupCommit>>,
    /// The ticket minted by the most recent deferred-fsync append,
    /// picked up by the engine via [`WalWriter::take_ticket`].
    pending_ticket: Option<CommitTicket>,
}

impl WalWriter {
    /// Opens (or creates) the WAL at `path` for appending.
    ///
    /// `valid_len` comes from [`replay`]: the file is truncated to it
    /// first, discarding any torn tail; `0` (new, foreign, or headerless
    /// file) rewrites the header from scratch.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open(
        path: &Path,
        durability: Durability,
        fp: u64,
        valid_len: u64,
    ) -> Result<WalWriter, StorageError> {
        let err = |op: &'static str| move |e: io::Error| StorageError::io(op, &e);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(err("open WAL"))?;
        let len = if valid_len >= WAL_HEADER {
            file.set_len(valid_len).map_err(err("truncate WAL tail"))?;
            valid_len
        } else {
            file.set_len(0).map_err(err("reset WAL"))?;
            file.write_all(WAL_MAGIC).map_err(err("write WAL header"))?;
            file.write_all(&fp.to_le_bytes())
                .map_err(err("write WAL header"))?;
            WAL_HEADER
        };
        file.seek(SeekFrom::Start(len)).map_err(err("seek WAL"))?;
        if durability == Durability::Always {
            file.sync_all().map_err(err("fsync WAL"))?;
        }
        Ok(WalWriter {
            file: Arc::new(file),
            durability,
            len,
            broken: false,
            stats: WalStats::default(),
            metrics: Arc::new(ServeMetrics::off()),
            group: None,
            pending_ticket: None,
        })
    }

    /// Routes append and fsync latencies into a serving metrics
    /// registry (the daemon attaches its shared one after recovery).
    pub fn attach_metrics(&mut self, metrics: Arc<ServeMetrics>) {
        self.metrics = metrics;
        if let Some(group) = &self.group {
            // Keep the barrier's latency sink in step.
            *group.metrics.lock().unwrap_or_else(|e| e.into_inner()) = Arc::clone(&self.metrics);
        }
    }

    /// Switches `always`-durability appends to group commit: the WAL
    /// write stays inline (ordered under the engine write lock) but the
    /// fsync is deferred to a shared [`GroupCommit`] barrier so
    /// concurrent writers amortize one fsync across many appends. No-op
    /// under other durability policies.
    pub fn enable_group_commit(&mut self) {
        if self.durability == Durability::Always && self.group.is_none() {
            self.group = Some(Arc::new(GroupCommit::new(
                Arc::clone(&self.file),
                Arc::clone(&self.metrics),
            )));
        }
    }

    /// The group-commit barrier, when enabled.
    pub fn group_commit(&self) -> Option<Arc<GroupCommit>> {
        self.group.clone()
    }

    /// Takes the commit ticket minted by the most recent append (if the
    /// append deferred its fsync to the group-commit barrier). The
    /// caller must wait on it *after* releasing the engine write lock
    /// before acknowledging the batch.
    pub fn take_ticket(&mut self) -> Option<CommitTicket> {
        self.pending_ticket.take()
    }

    /// Appends one insert batch and pushes it toward stable storage per
    /// the durability policy. On failure the partial write is rolled
    /// back (or, if even that fails, the log is marked broken and
    /// refuses further appends); either way the batch must not be
    /// acknowledged.
    ///
    /// # Errors
    ///
    /// I/O failures and injected `wal_write`/`wal_fsync` faults.
    pub fn append(&mut self, rel: &str, rows: &[Vec<Value>]) -> Result<(), StorageError> {
        self.append_kind(WalRecordKind::Insert, rel, rows)
    }

    /// Appends one delete batch; same durability and rollback contract
    /// as [`WalWriter::append`].
    ///
    /// # Errors
    ///
    /// I/O failures and injected `wal_delete_write`/`wal_delete_fsync`
    /// faults.
    pub fn append_delete(&mut self, rel: &str, rows: &[Vec<Value>]) -> Result<(), StorageError> {
        self.append_kind(WalRecordKind::Delete, rel, rows)
    }

    fn append_kind(
        &mut self,
        kind: WalRecordKind,
        rel: &str,
        rows: &[Vec<Value>],
    ) -> Result<(), StorageError> {
        if self.broken {
            self.stats.append_errors += 1;
            return Err(StorageError::new(
                "WAL is in a failed state; snapshot to reset it",
            ));
        }
        // Distinct fault points per kind, so a test can crash on exactly
        // the N-th delete record independent of preceding inserts.
        let (write_pt, fsync_pt) = match kind {
            WalRecordKind::Insert => (FaultPoint::WalWrite, FaultPoint::WalFsync),
            WalRecordKind::Delete => (FaultPoint::WalDeleteWrite, FaultPoint::WalDeleteFsync),
        };
        let framed = WalRecord::encode(kind, rel, rows);
        let metrics = Arc::clone(&self.metrics);
        let t_append = metrics.start();
        let mut deferred = false;
        let result = fault::check(write_pt)
            .and_then(|()| (&*self.file).write_all(&framed))
            .and_then(|()| match self.durability {
                Durability::None => Ok(()),
                Durability::Batch => (&*self.file).flush(),
                Durability::Always => {
                    (&*self.file).flush()?;
                    if self.group.is_some() {
                        // Group commit: the fsync (and its fault point)
                        // moves to the barrier, outside the engine
                        // write lock.
                        deferred = true;
                        Ok(())
                    } else {
                        fault::check(fsync_pt)?;
                        self.stats.fsyncs += 1;
                        let t_sync = metrics.start();
                        let r = self.file.sync_data();
                        metrics.observe(&metrics.wal_fsync, t_sync);
                        r
                    }
                }
            });
        match result {
            Ok(()) => {
                metrics.observe(&metrics.wal_append, t_append);
                self.len += framed.len() as u64;
                self.stats.appends += 1;
                self.stats.bytes += framed.len() as u64;
                if deferred {
                    let group = self.group.as_ref().expect("deferred implies group");
                    let seq = group.note_append(kind);
                    self.pending_ticket = Some(CommitTicket {
                        seq,
                        group: Arc::clone(group),
                    });
                }
                Ok(())
            }
            Err(e) => {
                self.stats.append_errors += 1;
                // Roll the file back so the failed frame's bytes cannot
                // precede a later successful append.
                if self.file.set_len(self.len).is_err()
                    || (&*self.file).seek(SeekFrom::Start(self.len)).is_err()
                {
                    self.broken = true;
                }
                Err(StorageError::io("append to WAL", &e))
            }
        }
    }

    /// Flushes and fsyncs regardless of the durability policy (used at
    /// graceful shutdown).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        let t_sync = self.metrics.start();
        (&*self.file)
            .flush()
            .and_then(|()| self.file.sync_data())
            .map_err(|e| StorageError::io("sync WAL", &e))?;
        self.metrics.observe(&self.metrics.wal_fsync, t_sync);
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// True when a failed append could not be rolled back and the log
    /// refuses further appends until reset by a snapshot.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Resets the log to just its header — every logged batch is now
    /// covered by a durable snapshot. Also clears a broken state.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn reset(&mut self) -> Result<(), StorageError> {
        let err = |op: &'static str| move |e: io::Error| StorageError::io(op, &e);
        self.file.set_len(WAL_HEADER).map_err(err("truncate WAL"))?;
        (&*self.file)
            .seek(SeekFrom::Start(WAL_HEADER))
            .map_err(err("seek WAL"))?;
        self.file.sync_data().map_err(err("fsync WAL"))?;
        self.len = WAL_HEADER;
        self.broken = false;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------

/// Sequence bookkeeping behind the group-commit barrier.
#[derive(Debug, Default)]
struct GroupState {
    /// Log sequence number of the latest appended (flushed-to-OS)
    /// record.
    appended_seq: u64,
    /// Sequence number of the latest appended *delete* record (0 when
    /// none), so the barrier fsync can answer for the
    /// `wal_delete_fsync` fault point when it covers a retraction.
    delete_seq: u64,
    /// Highest sequence number covered by a successful fsync.
    durable_seq: u64,
    /// A leader is currently inside `sync_data`.
    flushing: bool,
    /// Sequence numbers at or below this were covered by a *failed*
    /// fsync; their waiters report an error rather than acknowledging.
    failed_through: u64,
    /// The failure message for `failed_through` waiters.
    last_error: Option<String>,
}

/// A group-commit barrier: many appends, one fsync.
///
/// Appends remain ordered under the engine write lock (WAL order must
/// equal evaluation order — inserts and retractions do not commute on
/// replay); only the fsync is deferred. After releasing the lock each
/// writer waits on its [`CommitTicket`]. The first waiter to find no
/// flush in flight becomes the *leader*: it snapshots the current
/// `appended_seq` and issues one `sync_data`, which covers every append
/// up to that point, then wakes all waiters. Followers whose sequence
/// is already durable return immediately — under N concurrent writers
/// one fsync acknowledges up to N batches, while a lone writer
/// degenerates to exactly the old fsync-per-request behavior.
///
/// `ok` ⟹ durable is preserved: no acknowledgement is sent until an
/// fsync covering that append has returned. A failed fsync fails every
/// waiter it covered (their batches are applied and reader-visible but
/// not guaranteed durable — the same contract as
/// `err deadline exceeded (update committed)`).
#[derive(Debug)]
pub struct GroupCommit {
    state: Mutex<GroupState>,
    cv: Condvar,
    file: Arc<File>,
    /// Latency sink shared with the owning [`WalWriter`] (swapped when
    /// the daemon attaches its registry after recovery).
    metrics: Mutex<Arc<ServeMetrics>>,
    /// fsyncs issued by the barrier.
    pub fsyncs: AtomicU64,
    /// Acknowledgements that waited on the barrier.
    pub commits: AtomicU64,
}

impl GroupCommit {
    fn new(file: Arc<File>, metrics: Arc<ServeMetrics>) -> GroupCommit {
        GroupCommit {
            state: Mutex::new(GroupState::default()),
            cv: Condvar::new(),
            file,
            metrics: Mutex::new(metrics),
            fsyncs: AtomicU64::new(0),
            commits: AtomicU64::new(0),
        }
    }

    /// Registers one appended record; returns its sequence number.
    fn note_append(&self, kind: WalRecordKind) -> u64 {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.appended_seq += 1;
        if kind == WalRecordKind::Delete {
            st.delete_seq = st.appended_seq;
        }
        st.appended_seq
    }

    /// Blocks until `seq` is durable (or its covering fsync failed).
    fn wait(&self, seq: u64) -> Result<(), StorageError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.durable_seq >= seq {
                self.commits.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            if st.failed_through >= seq {
                let msg = st.last_error.clone().unwrap_or_default();
                return Err(StorageError::new(format!(
                    "group commit fsync failed: {msg}"
                )));
            }
            if !st.flushing {
                // Become the leader: one fsync covers every append so
                // far, including those by waiters still queueing up.
                st.flushing = true;
                let target = st.appended_seq;
                // The per-kind fault points stay meaningful under group
                // commit: a barrier fsync whose window covers a delete
                // record also answers for `wal_delete_fsync`.
                let covers_delete = st.delete_seq > st.durable_seq.max(st.failed_through);
                drop(st);
                let metrics = Arc::clone(&self.metrics.lock().unwrap_or_else(|e| e.into_inner()));
                let t_sync = metrics.start();
                let r = fault::check(FaultPoint::WalFsync)
                    .and_then(|()| {
                        if covers_delete {
                            fault::check(FaultPoint::WalDeleteFsync)
                        } else {
                            Ok(())
                        }
                    })
                    .and_then(|()| self.file.sync_data());
                metrics.observe(&metrics.wal_fsync, t_sync);
                st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                st.flushing = false;
                match r {
                    Ok(()) => {
                        self.fsyncs.fetch_add(1, Ordering::Relaxed);
                        if target > st.durable_seq {
                            st.durable_seq = target;
                        }
                    }
                    Err(e) => {
                        if target > st.failed_through {
                            st.failed_through = target;
                        }
                        st.last_error = Some(e.to_string());
                    }
                }
                self.cv.notify_all();
            } else {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// A pending durability acknowledgement from a group-committed append.
///
/// Minted by [`WalWriter::append`]/[`WalWriter::append_delete`] when
/// group commit is enabled; the serving layer waits on it *after*
/// dropping the engine write lock, so concurrent writers park at the
/// barrier instead of serializing their fsyncs under the lock.
#[derive(Debug)]
pub struct CommitTicket {
    seq: u64,
    group: Arc<GroupCommit>,
}

impl CommitTicket {
    /// Blocks until the append is durable.
    ///
    /// # Errors
    ///
    /// Returns the fsync failure covering this append. The batch is
    /// applied and reader-visible but not guaranteed durable.
    pub fn wait(self) -> Result<(), StorageError> {
        self.group.wait(self.seq)
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// The decoded contents of a valid snapshot file.
#[derive(Debug)]
pub struct SnapshotData {
    /// The `$` auto-increment counter at snapshot time.
    pub counter: u32,
    /// The full symbol table, in id order.
    pub symbols: Vec<String>,
    /// Every `Role::Standard` relation's tuples, by name.
    pub relations: Vec<(String, Vec<Vec<RamDomain>>)>,
    /// The externally-inserted fact replay list.
    pub extra_facts: Vec<(RelId, Vec<RamDomain>)>,
}

/// The outcome of probing for a snapshot.
#[derive(Debug)]
pub enum SnapshotLoad {
    /// No snapshot file exists.
    Missing,
    /// A file exists but is unusable (corrupt, foreign program, I/O
    /// error); recovery proceeds as if it were missing.
    Invalid(String),
    /// A valid snapshot.
    Loaded(SnapshotData),
}

/// What [`write_snapshot`] persisted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Tuples across all serialized relations.
    pub tuples: u64,
    /// Total snapshot size in bytes.
    pub bytes: u64,
}

/// Serializes the database atomically to `path` (same directory temp
/// file + fsync + rename + directory fsync).
///
/// # Errors
///
/// I/O failures and injected `snapshot_write`/`snapshot_rename` faults;
/// on error the previous snapshot (if any) is untouched.
pub fn write_snapshot(
    path: &Path,
    fp: u64,
    ram: &RamProgram,
    db: &Database,
    extra_facts: &[(RelId, Vec<RamDomain>)],
) -> Result<SnapshotStats, StorageError> {
    let mut buf = Vec::new();
    buf.extend_from_slice(SNAP_MAGIC);
    put_u64(&mut buf, fp);
    put_u32(
        &mut buf,
        db.counter.load(std::sync::atomic::Ordering::Relaxed),
    );

    {
        let symbols = db.symbols_rd();
        let strings = symbols.strings();
        put_u32(&mut buf, strings.len() as u32);
        for s in strings {
            put_str(&mut buf, s);
        }
    }

    let standard: Vec<_> = ram
        .relations
        .iter()
        .filter(|r| r.role == Role::Standard)
        .collect();
    let mut tuples = 0u64;
    put_u32(&mut buf, standard.len() as u32);
    for meta in standard {
        put_str(&mut buf, &meta.name);
        put_u32(&mut buf, meta.arity as u32);
        tuples += stir_der::dump::write_tuples(&mut buf, &db.rd(meta.id))
            .expect("Vec<u8> writes are infallible");
    }

    put_u64(&mut buf, extra_facts.len() as u64);
    for (rid, t) in extra_facts {
        put_u32(&mut buf, rid.0 as u32);
        put_u32(&mut buf, t.len() as u32);
        for &v in t {
            put_u32(&mut buf, v);
        }
    }

    let crc = crc32(&buf);
    put_u32(&mut buf, crc);

    let err = |op: &'static str| move |e: io::Error| StorageError::io(op, &e);
    let tmp: PathBuf = path.with_extension("tmp");
    fault::check(FaultPoint::SnapshotWrite).map_err(err("write snapshot"))?;
    {
        let mut f = File::create(&tmp).map_err(err("create snapshot temp"))?;
        f.write_all(&buf).map_err(err("write snapshot"))?;
        f.sync_all().map_err(err("fsync snapshot"))?;
    }
    fault::check(FaultPoint::SnapshotRename).map_err(err("publish snapshot"))?;
    std::fs::rename(&tmp, path).map_err(err("publish snapshot"))?;
    if let Some(dir) = path.parent() {
        // Make the rename itself durable.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(SnapshotStats {
        tuples,
        bytes: buf.len() as u64,
    })
}

/// Probes `path` for a snapshot matching the program fingerprint.
pub fn read_snapshot(path: &Path, fp: u64) -> SnapshotLoad {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            if let Err(e) = f.read_to_end(&mut bytes) {
                return SnapshotLoad::Invalid(format!("read snapshot: {e}"));
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return SnapshotLoad::Missing,
        Err(e) => return SnapshotLoad::Invalid(format!("open snapshot: {e}")),
    }
    match parse_snapshot(&bytes, fp) {
        Ok(data) => SnapshotLoad::Loaded(data),
        Err(e) => SnapshotLoad::Invalid(e.msg),
    }
}

fn parse_snapshot(bytes: &[u8], fp: u64) -> Result<SnapshotData, StorageError> {
    if bytes.len() < 8 + 8 + 4 + 4 || &bytes[..8] != SNAP_MAGIC {
        return Err(StorageError::new("bad snapshot magic"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != crc {
        return Err(StorageError::new("snapshot checksum mismatch"));
    }
    let mut r = ByteReader::new(&body[8..]);
    let file_fp = r.u64()?;
    if file_fp != fp {
        return Err(StorageError::new(
            "snapshot belongs to a different program (fingerprint mismatch)",
        ));
    }
    let counter = r.u32()?;
    let symbol_count = r.u32()? as usize;
    let mut symbols = Vec::with_capacity(symbol_count);
    for _ in 0..symbol_count {
        symbols.push(r.str()?);
    }
    let rel_count = r.u32()? as usize;
    let mut relations = Vec::with_capacity(rel_count);
    for _ in 0..rel_count {
        let name = r.str()?;
        let arity = r.u32()? as usize;
        let mut section = r.buf.get(r.pos..).unwrap_or(&[]);
        let before = section.len();
        let tuples = stir_der::dump::read_tuples(&mut section, arity)
            .map_err(|e| StorageError::io("decode snapshot tuples", &e))?;
        r.pos += before - section.len();
        relations.push((name, tuples));
    }
    let extra_count = r.u64()? as usize;
    let mut extra_facts = Vec::with_capacity(extra_count);
    for _ in 0..extra_count {
        let rid = RelId(r.u32()? as usize);
        let arity = r.u32()? as usize;
        let mut t = Vec::with_capacity(arity);
        for _ in 0..arity {
            t.push(r.u32()?);
        }
        extra_facts.push((rid, t));
    }
    if !r.done() {
        return Err(StorageError::new("trailing bytes in snapshot"));
    }
    Ok(SnapshotData {
        counter,
        symbols,
        relations,
        extra_facts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stir-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn rows(pairs: &[(i32, &str)]) -> Vec<Vec<Value>> {
        pairs
            .iter()
            .map(|&(n, s)| vec![Value::Number(n), Value::Symbol(s.into())])
            .collect()
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn durability_parses() {
        assert_eq!(Durability::parse("always"), Ok(Durability::Always));
        assert!(Durability::parse("sometimes").is_err());
        assert_eq!(Durability::Batch.as_str(), "batch");
    }

    #[test]
    fn wal_round_trips_batches() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let fp = fingerprint("prog");
        let mut w = WalWriter::open(&path, Durability::Always, fp, 0).expect("opens");
        let b1 = rows(&[(1, "a"), (2, "b")]);
        let b2 = vec![vec![Value::Float(1.5), Value::Unsigned(7)]];
        w.append("e", &b1).expect("appends");
        w.append("f", &b2).expect("appends");
        assert_eq!(w.stats.appends, 2);

        let replayed = replay(&path, fp).expect("replays");
        assert_eq!(replayed.torn_bytes, 0);
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.records[0].rel, "e");
        assert_eq!(replayed.records[0].rows, b1);
        assert_eq!(replayed.records[1].rows, b2);

        // Appends resume after the replayed prefix.
        let mut w =
            WalWriter::open(&path, Durability::Batch, fp, replayed.valid_len).expect("reopens");
        w.append("e", &rows(&[(3, "c")])).expect("appends");
        let replayed = replay(&path, fp).expect("replays");
        assert_eq!(replayed.records.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let fp = fingerprint("prog");
        let mut w = WalWriter::open(&path, Durability::Batch, fp, 0).expect("opens");
        w.append("e", &rows(&[(1, "a")])).expect("appends");
        w.append("e", &rows(&[(2, "b")])).expect("appends");
        drop(w);

        // Tear the last record mid-payload, as a crash during write would.
        let bytes = std::fs::read(&path).expect("reads");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("writes");

        let replayed = replay(&path, fp).expect("replays");
        assert_eq!(replayed.records.len(), 1, "torn record dropped");
        assert_eq!(
            replayed.torn_bytes as usize,
            bytes.len() - 3 - replayed.valid_len as usize
        );

        // Reopening truncates; a fresh append then replays cleanly.
        let mut w =
            WalWriter::open(&path, Durability::Batch, fp, replayed.valid_len).expect("opens");
        w.append("e", &rows(&[(3, "c")])).expect("appends");
        let replayed = replay(&path, fp).expect("replays");
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let dir = tmpdir("corrupt");
        let path = dir.join("wal.log");
        let fp = fingerprint("prog");
        let mut w = WalWriter::open(&path, Durability::Batch, fp, 0).expect("opens");
        w.append("e", &rows(&[(1, "a")])).expect("appends");
        let end = std::fs::metadata(&path).expect("stats").len();
        w.append("e", &rows(&[(2, "b")])).expect("appends");
        drop(w);

        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).expect("reads");
        let i = end as usize + 9;
        bytes[i] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("writes");

        let replayed = replay(&path, fp).expect("replays");
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.valid_len, end);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_fingerprint_starts_over() {
        let dir = tmpdir("foreign");
        let path = dir.join("wal.log");
        let mut w =
            WalWriter::open(&path, Durability::Batch, fingerprint("old"), 0).expect("opens");
        w.append("e", &rows(&[(1, "a")])).expect("appends");
        drop(w);

        let replayed = replay(&path, fingerprint("new")).expect("replays");
        assert!(replayed.records.is_empty());
        assert_eq!(replayed.valid_len, 0);

        // Opening with valid_len 0 rewrites the header for the new program.
        let w = WalWriter::open(&path, Durability::Batch, fingerprint("new"), 0).expect("opens");
        drop(w);
        assert_eq!(std::fs::metadata(&path).expect("stats").len(), WAL_HEADER);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_wal_is_empty() {
        let dir = tmpdir("missing");
        let replayed = replay(&dir.join("nope.log"), 1).expect("replays");
        assert!(replayed.records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_truncates_to_header() {
        let dir = tmpdir("reset");
        let path = dir.join("wal.log");
        let fp = fingerprint("prog");
        let mut w = WalWriter::open(&path, Durability::Batch, fp, 0).expect("opens");
        w.append("e", &rows(&[(1, "a")])).expect("appends");
        w.reset().expect("resets");
        drop(w);
        assert_eq!(std::fs::metadata(&path).expect("stats").len(), WAL_HEADER);
        assert!(replay(&path, fp).expect("replays").records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_wal_fault_fails_append_and_rolls_back() {
        let dir = tmpdir("fault");
        let path = dir.join("wal.log");
        let fp = fingerprint("prog");
        let mut w = WalWriter::open(&path, Durability::Batch, fp, 0).expect("opens");
        w.append("e", &rows(&[(1, "a")])).expect("appends");
        let len_before = std::fs::metadata(&path).expect("stats").len();

        // Unit-scope plan (the global env-driven plan is for processes).
        let plan = crate::fault::FaultPlan::parse("wal_write:once").expect("parses");
        assert!(plan.check(crate::fault::FaultPoint::WalWrite).is_err());
        // Simulate the failed append by rolling back manually — the
        // writer path is exercised end-to-end by the crash-recovery
        // integration test; here we pin the rollback invariant.
        assert_eq!(std::fs::metadata(&path).expect("stats").len(), len_before);
        w.append("e", &rows(&[(2, "b")]))
            .expect("appends after rollback");
        assert_eq!(replay(&path, fp).expect("replays").records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_clears_broken_and_post_heal_appends_replay() {
        let dir = tmpdir("broken-heal");
        let path = dir.join("wal.log");
        let fp = fingerprint("prog");
        let mut w = WalWriter::open(&path, Durability::Batch, fp, 0).expect("opens");
        w.append("e", &rows(&[(1, "a")])).expect("appends");

        // Poison the log as a failed rollback would.
        w.broken = true;
        assert!(w.is_broken());
        let err = w.append("e", &rows(&[(2, "b")])).expect_err("refused");
        assert!(err.to_string().contains("failed state"), "{err}");
        assert_eq!(w.stats.append_errors, 1);

        // The heal path: a snapshot covers logged history, then reset
        // truncates the log and clears the poison.
        w.reset().expect("resets");
        assert!(!w.is_broken(), "reset clears broken");
        w.append("e", &rows(&[(3, "c")]))
            .expect("appends after heal");
        drop(w);

        // The post-heal append round-trips through open's replay path.
        let replayed = replay(&path, fp).expect("replays");
        assert_eq!(replayed.records.len(), 1, "only the post-heal record");
        assert_eq!(replayed.records[0].rows, rows(&[(3, "c")]));
        let mut w =
            WalWriter::open(&path, Durability::Batch, fp, replayed.valid_len).expect("reopens");
        w.append("e", &rows(&[(4, "d")])).expect("appends");
        assert_eq!(replay(&path, fp).expect("replays").records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_defers_the_fsync_to_the_ticket() {
        let dir = tmpdir("group");
        let path = dir.join("wal.log");
        let fp = fingerprint("prog");
        let mut w = WalWriter::open(&path, Durability::Always, fp, 0).expect("opens");
        w.enable_group_commit();
        let group = w.group_commit().expect("enabled");

        w.append("e", &rows(&[(1, "a")])).expect("appends");
        let t1 = w.take_ticket().expect("ticket minted");
        assert_eq!(w.stats.fsyncs, 0, "inline fsync skipped");
        w.append("e", &rows(&[(2, "b")])).expect("appends");
        let t2 = w.take_ticket().expect("ticket minted");
        assert!(w.take_ticket().is_none(), "ticket is taken once");

        // The first waiter leads one fsync covering both appends; the
        // second finds its sequence already durable.
        t1.wait().expect("durable");
        t2.wait().expect("durable");
        assert_eq!(group.fsyncs.load(Ordering::Relaxed), 1, "one fsync");
        assert_eq!(group.commits.load(Ordering::Relaxed), 2, "two acks");

        assert_eq!(replay(&path, fp).expect("replays").records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_is_inert_until_enabled() {
        let dir = tmpdir("group-inert");
        let path = dir.join("wal.log");
        let fp = fingerprint("prog");
        let mut w = WalWriter::open(&path, Durability::Always, fp, 0).expect("opens");
        w.append("e", &rows(&[(1, "a")])).expect("appends");
        assert!(w.take_ticket().is_none(), "no barrier, no ticket");
        assert_eq!(w.stats.fsyncs, 1, "inline fsync preserved");
        // Non-`always` policies never defer, even if asked.
        let mut b = WalWriter::open(&dir.join("b.log"), Durability::Batch, fp, 0).expect("opens");
        b.enable_group_commit();
        assert!(b.group_commit().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        // Pinned so snapshots stay readable across builds.
        assert_eq!(fingerprint(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn mixed_inserts_and_deletes_round_trip_in_order() {
        let dir = tmpdir("mixed");
        let path = dir.join("wal.log");
        let fp = fingerprint("prog");
        let mut w = WalWriter::open(&path, Durability::Batch, fp, 0).expect("opens");
        w.append("e", &rows(&[(1, "a"), (2, "b")])).expect("insert");
        w.append_delete("e", &rows(&[(1, "a")])).expect("delete");
        w.append("e", &rows(&[(3, "c")])).expect("insert");
        drop(w);

        let replayed = replay(&path, fp).expect("replays");
        assert_eq!(replayed.version, 2);
        assert_eq!(
            replayed.records.iter().map(|r| r.kind).collect::<Vec<_>>(),
            vec![
                WalRecordKind::Insert,
                WalRecordKind::Delete,
                WalRecordKind::Insert
            ]
        );
        assert_eq!(replayed.records[1].rows, rows(&[(1, "a")]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Encodes a record the way a version-1 writer did: no kind byte.
    fn encode_v1(rel: &str, rows: &[Vec<Value>]) -> Vec<u8> {
        let arity = rows.first().map_or(0, Vec::len);
        let mut payload = Vec::new();
        put_str(&mut payload, rel);
        put_u32(&mut payload, rows.len() as u32);
        put_u32(&mut payload, arity as u32);
        for row in rows {
            for v in row {
                put_value(&mut payload, v);
            }
        }
        let mut framed = Vec::new();
        put_u32(&mut framed, payload.len() as u32);
        put_u32(&mut framed, crc32(&payload));
        framed.extend_from_slice(&payload);
        framed
    }

    fn write_v1_log(path: &Path, fp: u64, batches: &[(&str, Vec<Vec<Value>>)]) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(WAL_MAGIC_V1);
        bytes.extend_from_slice(&fp.to_le_bytes());
        for (rel, rows) in batches {
            bytes.extend_from_slice(&encode_v1(rel, rows));
        }
        std::fs::write(path, &bytes).expect("writes v1 log");
    }

    #[test]
    fn v1_logs_replay_as_inserts_and_rewrite_upgrades_them() {
        let dir = tmpdir("v1compat");
        let path = dir.join("wal.log");
        let fp = fingerprint("prog");
        write_v1_log(
            &path,
            fp,
            &[("e", rows(&[(1, "a")])), ("f", rows(&[(2, "b")]))],
        );

        let replayed = replay(&path, fp).expect("replays v1");
        assert_eq!(replayed.version, 1);
        assert_eq!(replayed.records.len(), 2);
        assert!(replayed
            .records
            .iter()
            .all(|r| r.kind == WalRecordKind::Insert));

        // Upgrade in place, then append a delete — one file, one format.
        let new_len = rewrite(&path, fp, &replayed.records).expect("rewrites");
        let mut w = WalWriter::open(&path, Durability::Batch, fp, new_len).expect("opens");
        w.append_delete("e", &rows(&[(1, "a")])).expect("delete");
        drop(w);

        let replayed = replay(&path, fp).expect("replays v2");
        assert_eq!(replayed.version, 2);
        assert_eq!(replayed.records.len(), 3);
        assert_eq!(replayed.records[0].rel, "e");
        assert_eq!(replayed.records[0].rows, rows(&[(1, "a")]));
        assert_eq!(replayed.records[2].kind, WalRecordKind::Delete);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_record_kind_is_a_hard_error_with_the_offset() {
        let dir = tmpdir("unknown-kind");
        let path = dir.join("wal.log");
        let fp = fingerprint("prog");
        let mut w = WalWriter::open(&path, Durability::Batch, fp, 0).expect("opens");
        w.append("e", &rows(&[(1, "a")])).expect("appends");
        let offset = std::fs::metadata(&path).expect("stats").len();
        w.append("e", &rows(&[(2, "b")])).expect("appends");
        drop(w);

        // Rewrite the second record's kind byte to a future tag and fix
        // up its checksum — a deliberate frame from a newer writer, not
        // a torn tail.
        let mut bytes = std::fs::read(&path).expect("reads");
        let p = offset as usize;
        let len = u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap()) as usize;
        bytes[p + 8] = 9;
        let crc = crc32(&bytes[p + 8..p + 8 + len]);
        bytes[p + 4..p + 8].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).expect("writes");

        let err = replay(&path, fp).expect_err("must not truncate");
        assert!(err.msg.contains("unknown WAL record kind 9"), "{}", err.msg);
        assert!(err.msg.contains(&format!("offset {offset}")), "{}", err.msg);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_valid_frame_with_trailing_bytes_is_a_hard_error() {
        let dir = tmpdir("trailing");
        let path = dir.join("wal.log");
        let fp = fingerprint("prog");
        let mut w = WalWriter::open(&path, Durability::Batch, fp, 0).expect("opens");
        w.append("e", &rows(&[(1, "a")])).expect("appends");
        drop(w);

        // Extend the payload by one byte with a matching checksum.
        let mut bytes = std::fs::read(&path).expect("reads");
        let p = WAL_HEADER as usize;
        let len = u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap()) as usize;
        bytes.push(0);
        bytes[p..p + 4].copy_from_slice(&((len + 1) as u32).to_le_bytes());
        let crc = crc32(&bytes[p + 8..p + 9 + len]);
        bytes[p + 4..p + 8].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).expect("writes");

        let err = replay(&path, fp).expect_err("must not truncate");
        assert!(err.msg.contains("trailing bytes"), "{}", err.msg);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
