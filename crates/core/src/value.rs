//! Typed values at the engine boundary.
//!
//! Inside the engine everything is `u32` bit patterns; at the API boundary
//! (loading EDB facts, reading results) tuples are made of typed
//! [`Value`]s according to the relation's declared attribute types.

use stir_frontend::ast::AttrType;
use stir_frontend::SymbolTable;

/// One typed value crossing the engine boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A signed number.
    Number(i32),
    /// An unsigned number.
    Unsigned(u32),
    /// A float.
    Float(f32),
    /// A string.
    Symbol(String),
}

impl Value {
    /// Encodes the value as its runtime bit pattern, interning symbols.
    pub fn encode(&self, symbols: &mut SymbolTable) -> u32 {
        match self {
            Value::Number(n) => *n as u32,
            Value::Unsigned(u) => *u,
            Value::Float(f) => f.to_bits(),
            Value::Symbol(s) => symbols.intern(s),
        }
    }

    /// Encodes the value without interning: a symbol not already in the
    /// table yields `None` (no stored tuple can contain it). Lets query
    /// paths stay read-only on the symbol table.
    pub fn encode_existing(&self, symbols: &SymbolTable) -> Option<u32> {
        match self {
            Value::Number(n) => Some(*n as u32),
            Value::Unsigned(u) => Some(*u),
            Value::Float(f) => Some(f.to_bits()),
            Value::Symbol(s) => symbols.lookup(s),
        }
    }

    /// Decodes a bit pattern according to the attribute type.
    pub fn decode(bits: u32, ty: AttrType, symbols: &SymbolTable) -> Value {
        match ty {
            AttrType::Number => Value::Number(bits as i32),
            AttrType::Unsigned => Value::Unsigned(bits),
            AttrType::Float => Value::Float(f32::from_bits(bits)),
            AttrType::Symbol => Value::Symbol(symbols.resolve(bits).to_owned()),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Number(n) => write!(f, "{n}"),
            Value::Unsigned(u) => write!(f, "{u}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Symbol(s) => write!(f, "{s}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Number(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Unsigned(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Symbol(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Symbol(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_bits() {
        let mut syms = SymbolTable::new();
        let cases = [
            (Value::Number(-7), AttrType::Number),
            (Value::Unsigned(3_000_000_000), AttrType::Unsigned),
            (Value::Float(2.5), AttrType::Float),
            (Value::Symbol("hi".into()), AttrType::Symbol),
        ];
        for (v, ty) in cases {
            let bits = v.encode(&mut syms);
            assert_eq!(Value::decode(bits, ty, &syms), v);
        }
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Value::from(-3), Value::Number(-3));
        assert_eq!(Value::from("x").to_string(), "x");
        assert_eq!(Value::Number(5).to_string(), "5");
    }
}
