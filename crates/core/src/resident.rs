//! A resident engine: the database outlives the initial evaluation.
//!
//! Batch evaluation (via [`crate::Engine::run`]) builds a database, runs
//! the fixpoint, extracts outputs, and throws everything away. The
//! serving subsystem instead keeps the [`Database`] — relations, indexes,
//! and symbol table — alive so that later fact insertions and point
//! queries cost time proportional to the *change*, not the whole program.
//!
//! # Incremental updates
//!
//! [`ResidentEngine::insert_facts`] stages the genuinely new tuples of a
//! batch in the target relation's `upd_` sibling and then walks the
//! strata bottom-up. A stratum is *affected* when one of the relations it
//! defines or reads changed this cycle. An affected stratum normally
//! re-runs its translation-provided incremental update statement
//! ([`stir_ram::program::RamStratum::update`]): new upstream tuples seed
//! the semi-naive deltas, so only derivations that use at least one new
//! tuple are enumerated, and the stratum's own newly derived tuples land
//! in its `upd_` relations for downstream strata to pick up.
//!
//! Insertion-only delta restarts are sound only for monotone strata. When
//! a changed relation is read under negation or inside an aggregate, or
//! when an upstream stratum had to be recomputed from scratch (so its
//! `upd_` staging is not a faithful "what's new" set), the stratum falls
//! back to a full recompute: its relations are cleared, their facts
//! replayed, and the original stratum statement re-run. The
//! `server.full_fallbacks` counter tallies these.
//!
//! # Queries
//!
//! [`ResidentEngine::query`] answers a partially-bound pattern with the
//! relation's existing indexes: the index whose order has the longest
//! prefix of bound columns drives an inclusive range scan, and the
//! remaining bound columns are post-filtered. No statement or tree is
//! built, and the symbol table is only read — a bound symbol that was
//! never interned simply matches nothing.
//!
//! Interpreter trees for update statements are rebuilt per request
//! (microseconds, per the paper's thesis that tree generation is cheap);
//! caching them would tie the tree's lifetime to the program's and buy
//! nothing measurable.

use crate::config::InterpreterConfig;
use crate::database::{DataMode, Database, InputData};
use crate::engine::Engine;
use crate::error::{EngineError, EvalError};
use crate::interp::Interpreter;
use crate::itree;
use crate::profile::ProfileReport;
use crate::telemetry::Telemetry;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use stir_ram::expr::RamDomain;
use stir_ram::program::{RamProgram, RelId, Role};

/// What one [`ResidentEngine::insert_facts`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateReport {
    /// Tuples of the batch that were not already present.
    pub inserted: u64,
    /// Strata re-run through their incremental update statement.
    pub strata_rerun: u64,
    /// Strata recomputed from scratch (negation/aggregate reads, eqrel
    /// heads, or rebuilt upstream strata).
    pub full_fallbacks: u64,
}

/// A point-in-time snapshot of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests served (updates + queries).
    pub requests: u64,
    /// Genuinely new tuples inserted across all updates.
    pub update_tuples: u64,
    /// Rows returned across all queries.
    pub query_rows: u64,
    /// Incremental stratum re-runs across all updates.
    pub strata_rerun: u64,
    /// Full stratum recomputations across all updates.
    pub full_fallbacks: u64,
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    update_tuples: AtomicU64,
    query_rows: AtomicU64,
    strata_rerun: AtomicU64,
    full_fallbacks: AtomicU64,
}

/// An engine whose database stays resident between requests.
///
/// Updates take `&mut self` (callers such as `stird` serialize them
/// through a write lock); queries take `&self` and may run concurrently —
/// the type is `Sync` because [`Database`] is.
///
/// # Example
///
/// ```
/// use stir_core::{InterpreterConfig, ResidentEngine, Value};
///
/// let engine = stir_core::Engine::from_source(
///     ".decl e(x: number, y: number)
///      .input e
///      .decl p(x: number, y: number)
///      .output p
///      e(1, 2).
///      p(x, y) :- e(x, y).
///      p(x, z) :- p(x, y), e(y, z).",
/// )?;
/// let mut resident = ResidentEngine::new(
///     engine,
///     InterpreterConfig::optimized(),
///     &Default::default(),
///     None,
/// )?;
/// resident.insert_facts("e", &[vec![Value::Number(2), Value::Number(3)]], None)?;
/// let rows = resident.query("p", &[Some(Value::Number(1)), None], None)?;
/// assert_eq!(rows.len(), 2); // p(1,2), p(1,3)
/// # Ok::<(), stir_core::EngineError>(())
/// ```
#[derive(Debug)]
pub struct ResidentEngine {
    ram: RamProgram,
    config: InterpreterConfig,
    db: Database,
    /// Every tuple inserted after construction (plus the initial external
    /// inputs), replayed when a fallback recompute clears a relation that
    /// also holds ground facts.
    extra_facts: Vec<(RelId, Vec<RamDomain>)>,
    /// For each base relation, its `delta_`/`new_`/`upd_` siblings.
    aux_of: Vec<Vec<RelId>>,
    /// All `upd_` staging relations (cleared at the start of each cycle).
    all_upds: Vec<RelId>,
    counters: Counters,
    initial_profile: Option<ProfileReport>,
}

impl ResidentEngine {
    /// Runs the initial evaluation and keeps the database resident.
    ///
    /// Mirrors [`Engine::run`] (same phase spans when telemetry is
    /// attached) but retains ownership of the RAM program and database.
    ///
    /// # Errors
    ///
    /// Propagates input-loading and runtime errors from the initial
    /// fixpoint.
    pub fn new(
        engine: Engine,
        config: InterpreterConfig,
        inputs: &InputData,
        tel: Option<&Telemetry>,
    ) -> Result<ResidentEngine, EngineError> {
        let ram = engine.into_ram();
        let tracer = tel.map(|t| &t.tracer);
        let mode = if config.legacy_data {
            DataMode::LegacyDynamic
        } else {
            DataMode::Specialized
        };
        let db = {
            let _span = tracer.map(|t| t.span("phase:build-db"));
            Database::new(&ram, mode)
        };
        {
            let _span = tracer.map(|t| t.span("phase:load-inputs"));
            db.load_inputs(&ram, inputs)?;
        }
        let initial_profile = {
            let tree = {
                let _span = tracer.map(|t| t.span("phase:build-itree"));
                itree::build_with_fusions(&ram, &config, &[])
            };
            let mut interp = Interpreter::new(&ram, &db, config);
            if let Some(t) = tel {
                interp.attach_telemetry(t);
            }
            {
                let _span = tracer.map(|t| t.span("phase:evaluate"));
                interp.run(&tree)?;
            }
            interp.profile_report()
        };
        if let Some(t) = tel {
            db.sample_metrics(&ram, &t.metrics);
        }

        // Record the external inputs so a later fallback recompute can
        // replay them alongside the program's own ground facts.
        let mut extra_facts = Vec::new();
        {
            let mut symbols = db.symbols_wr();
            for (name, tuples) in inputs {
                let id = ram
                    .relation_by_name(name)
                    .expect("validated by load_inputs")
                    .id;
                for t in tuples {
                    extra_facts.push((id, t.iter().map(|v| v.encode(&mut symbols)).collect()));
                }
            }
        }

        let mut aux_of = vec![Vec::new(); ram.relations.len()];
        let mut all_upds = Vec::new();
        for r in &ram.relations {
            match r.role {
                Role::Standard => {}
                Role::Delta(b) | Role::New(b) => aux_of[b.0].push(r.id),
                Role::Upd(b) => {
                    aux_of[b.0].push(r.id);
                    all_upds.push(r.id);
                }
            }
        }

        Ok(ResidentEngine {
            ram,
            config,
            db,
            extra_facts,
            aux_of,
            all_upds,
            counters: Counters::default(),
            initial_profile,
        })
    }

    /// Convenience constructor: compile `source` and make it resident.
    ///
    /// # Errors
    ///
    /// Propagates frontend, translation, input-loading, and runtime
    /// errors.
    pub fn from_source(
        source: &str,
        config: InterpreterConfig,
        inputs: &InputData,
        tel: Option<&Telemetry>,
    ) -> Result<ResidentEngine, EngineError> {
        let engine = Engine::from_source_with(source, tel)?;
        ResidentEngine::new(engine, config, inputs, tel)
    }

    /// The resident RAM program.
    pub fn ram(&self) -> &RamProgram {
        &self.ram
    }

    /// The configuration the engine runs under.
    pub fn config(&self) -> InterpreterConfig {
        self.config
    }

    /// The profiling report of the initial evaluation, when profiling was
    /// enabled.
    pub fn initial_profile(&self) -> Option<&ProfileReport> {
        self.initial_profile.as_ref()
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            update_tuples: self.counters.update_tuples.load(Ordering::Relaxed),
            query_rows: self.counters.query_rows.load(Ordering::Relaxed),
            strata_rerun: self.counters.strata_rerun.load(Ordering::Relaxed),
            full_fallbacks: self.counters.full_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Flushes the serving counters and the database structure into an
    /// attached metrics registry (under `server.*`). A no-op when the
    /// registry is disabled.
    pub fn sync_metrics(&self, tel: &Telemetry) {
        let m = &tel.metrics;
        if !m.enabled() {
            return;
        }
        let s = self.stats();
        m.set("server.requests", s.requests);
        m.set("server.update_tuples", s.update_tuples);
        m.set("server.query_rows", s.query_rows);
        m.set("server.strata_rerun", s.strata_rerun);
        m.set("server.full_fallbacks", s.full_fallbacks);
        self.db.sample_metrics(&self.ram, m);
    }

    /// Every `.output` relation's current tuples, sorted, keyed by name.
    pub fn outputs(&self) -> HashMap<String, Vec<Vec<Value>>> {
        self.db.extract_outputs(&self.ram)
    }

    /// Inserts a batch of facts into an `.input` relation and brings all
    /// downstream strata up to date incrementally (see the module docs
    /// for the delta-restart algorithm and its fallback rule).
    ///
    /// # Errors
    ///
    /// Rejects unknown or non-`.input` relations and wrong-arity tuples;
    /// propagates runtime errors from re-evaluation.
    pub fn insert_facts(
        &mut self,
        rel: &str,
        rows: &[Vec<Value>],
        tel: Option<&Telemetry>,
    ) -> Result<UpdateReport, EvalError> {
        let _span = tel.map(|t| t.tracer.span("phase:serve:update"));
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let meta = self
            .ram
            .relation_by_name(rel)
            .ok_or_else(|| EvalError::new(format!("unknown relation `{rel}`")))?;
        if !meta.is_input {
            return Err(EvalError::new(format!(
                "relation `{rel}` is not declared `.input`"
            )));
        }
        let (target, arity) = (meta.id, meta.arity);
        let upd = self.ram.upd_of(target);

        let mut encoded = Vec::with_capacity(rows.len());
        {
            let mut symbols = self.db.symbols_wr();
            for row in rows {
                if row.len() != arity {
                    return Err(EvalError::new(format!(
                        "tuple for `{rel}` has {} values, expected {arity}",
                        row.len()
                    )));
                }
                encoded.push(
                    row.iter()
                        .map(|v| v.encode(&mut symbols))
                        .collect::<Vec<RamDomain>>(),
                );
            }
        }

        // Start a fresh staging cycle: `upd_` relations hold exactly the
        // tuples that became visible during *this* batch.
        for &u in &self.all_upds {
            self.db.wr(u).clear();
        }
        let mut fresh = 0u64;
        for t in encoded {
            if self.db.wr(target).insert(&t) {
                fresh += 1;
                if let Some(u) = upd {
                    self.db.wr(u).insert(&t);
                }
                self.extra_facts.push((target, t));
            }
        }
        self.counters
            .update_tuples
            .fetch_add(fresh, Ordering::Relaxed);
        let mut report = UpdateReport {
            inserted: fresh,
            ..UpdateReport::default()
        };
        if fresh == 0 {
            return Ok(report);
        }

        // `changed`: gained tuples this cycle, staged in `upd_` unless
        // also `rebuilt`. `rebuilt`: recomputed from scratch, so its
        // `upd_` staging is empty and readers cannot update incrementally.
        let n = self.ram.relations.len();
        let mut changed = vec![false; n];
        let mut rebuilt = vec![false; n];
        changed[target.0] = true;
        if upd.is_none() {
            rebuilt[target.0] = true; // eqrel input: no staging sibling
        }

        for i in 0..self.ram.strata.len() {
            let s = &self.ram.strata[i];
            let hit = |ids: &[RelId], flags: &[bool]| ids.iter().any(|r| flags[r.0]);
            let affected = hit(&s.defines, &changed)
                || hit(&s.pos_reads, &changed)
                || hit(&s.neg_agg_reads, &changed);
            if !affected {
                continue;
            }
            let fallback = s.update.is_none()
                || hit(&s.neg_agg_reads, &changed)
                || hit(&s.pos_reads, &rebuilt)
                || hit(&s.defines, &rebuilt);
            if fallback {
                self.recompute_stratum(i, tel)?;
                for d in &self.ram.strata[i].defines {
                    changed[d.0] = true;
                    rebuilt[d.0] = true;
                }
                report.full_fallbacks += 1;
            } else {
                let stmt = s.update.as_ref().expect("checked by fallback condition");
                let tree = itree::build_stmt(&self.ram, &self.config, stmt);
                let mut interp = Interpreter::new(&self.ram, &self.db, self.config);
                if let Some(t) = tel {
                    interp.attach_telemetry(t);
                }
                interp.run(&tree)?;
                for d in &s.defines {
                    if let Some(u) = self.ram.upd_of(*d) {
                        if !self.db.rd(u).is_empty() {
                            changed[d.0] = true;
                        }
                    }
                }
                report.strata_rerun += 1;
            }
        }

        self.counters
            .strata_rerun
            .fetch_add(report.strata_rerun, Ordering::Relaxed);
        self.counters
            .full_fallbacks
            .fetch_add(report.full_fallbacks, Ordering::Relaxed);
        Ok(report)
    }

    /// Clears a stratum's relations, replays their ground and inserted
    /// facts, and re-runs the original stratum statement. Correct at any
    /// point of the bottom-up walk because every upstream relation is
    /// already fully up to date when its readers are visited.
    fn recompute_stratum(&self, i: usize, tel: Option<&Telemetry>) -> Result<(), EvalError> {
        let mut defined = vec![false; self.ram.relations.len()];
        for d in &self.ram.strata[i].defines {
            defined[d.0] = true;
            self.db.wr(*d).clear();
            for a in &self.aux_of[d.0] {
                self.db.wr(*a).clear();
            }
        }
        for (rid, t) in self.ram.facts.iter().chain(self.extra_facts.iter()) {
            if defined[rid.0] {
                self.db.wr(*rid).insert(t);
            }
        }
        let tree = itree::build_stmt(&self.ram, &self.config, self.ram.stratum_stmt(i));
        let mut interp = Interpreter::new(&self.ram, &self.db, self.config);
        if let Some(t) = tel {
            interp.attach_telemetry(t);
        }
        interp.run(&tree)
    }

    /// Answers a partially-bound pattern against the resident database.
    ///
    /// `pattern[i] = Some(v)` binds column `i` to `v`; `None` leaves it
    /// free. Rows come back in the stored order of the chosen index. A
    /// bound symbol that was never interned yields an empty result.
    ///
    /// # Errors
    ///
    /// Rejects unknown relations, auxiliary (`delta_`/`new_`/`upd_`)
    /// relations, and wrong-arity patterns.
    pub fn query(
        &self,
        rel: &str,
        pattern: &[Option<Value>],
        tel: Option<&Telemetry>,
    ) -> Result<Vec<Vec<Value>>, EvalError> {
        let _span = tel.map(|t| t.tracer.span("phase:serve:query"));
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let meta = self
            .ram
            .relation_by_name(rel)
            .ok_or_else(|| EvalError::new(format!("unknown relation `{rel}`")))?;
        if meta.role != Role::Standard {
            return Err(EvalError::new(format!(
                "relation `{rel}` is internal and cannot be queried"
            )));
        }
        if pattern.len() != meta.arity {
            return Err(EvalError::new(format!(
                "pattern for `{rel}` has {} terms, expected {}",
                pattern.len(),
                meta.arity
            )));
        }

        let rel_guard = self.db.rd(meta.id);
        if meta.arity == 0 {
            let rows: Vec<Vec<Value>> = if rel_guard.is_empty() {
                Vec::new()
            } else {
                vec![Vec::new()]
            };
            self.counters
                .query_rows
                .fetch_add(rows.len() as u64, Ordering::Relaxed);
            return Ok(rows);
        }

        let symbols = self.db.symbols_rd();
        let mut bound: Vec<Option<RamDomain>> = Vec::with_capacity(pattern.len());
        for v in pattern {
            match v {
                None => bound.push(None),
                Some(val) => match val.encode_existing(&symbols) {
                    Some(bits) => bound.push(Some(bits)),
                    None => return Ok(Vec::new()),
                },
            }
        }

        // The index whose order starts with the longest run of bound
        // columns turns the most bindings into range bounds; anything not
        // covered is post-filtered.
        let mut best = (0usize, 0usize);
        for k in 0..rel_guard.index_count() {
            let cols = rel_guard.index(k).order().columns();
            let m = cols.iter().take_while(|&&c| bound[c].is_some()).count();
            if m > best.1 {
                best = (k, m);
            }
        }
        let (k, prefix) = best;
        let idx = rel_guard.index(k);
        let order = idx.order();
        let arity = meta.arity;
        // The comparator-based legacy index keeps tuples un-permuted: its
        // range bounds and yielded tuples are in source order, so bound
        // values land at their source positions and no decode happens.
        let source_layout = idx.stores_source_order();
        let mut it = if prefix == 0 {
            idx.scan()
        } else {
            let mut lo = vec![RamDomain::MIN; arity];
            let mut hi = vec![RamDomain::MAX; arity];
            for (pos, &c) in order.columns().iter().enumerate().take(prefix) {
                let bits = bound[c].expect("prefix columns are bound");
                let at = if source_layout { c } else { pos };
                lo[at] = bits;
                hi[at] = bits;
            }
            idx.range(&lo, &hi)
        };

        let mut out = Vec::new();
        let mut src = vec![0; arity];
        while let Some(stored) = it.next_tuple() {
            if source_layout {
                src.copy_from_slice(stored);
            } else {
                order.decode(stored, &mut src);
            }
            if bound
                .iter()
                .zip(&src)
                .all(|(b, &v)| b.is_none_or(|bits| bits == v))
            {
                out.push(
                    src.iter()
                        .zip(&meta.attr_types)
                        .map(|(&bits, &ty)| Value::decode(bits, ty, &symbols))
                        .collect(),
                );
            }
        }
        self.counters
            .query_rows
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TC: &str = "\
        .decl e(x: number, y: number)\n.input e\n\
        .decl p(x: number, y: number)\n.output p\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";

    fn pairs(rows: &[(i32, i32)]) -> Vec<Vec<Value>> {
        rows.iter()
            .map(|&(a, b)| vec![Value::Number(a), Value::Number(b)])
            .collect()
    }

    fn resident(src: &str, inputs: &InputData) -> ResidentEngine {
        ResidentEngine::from_source(src, InterpreterConfig::optimized(), inputs, None)
            .expect("builds")
    }

    #[test]
    fn resident_engine_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<ResidentEngine>();
    }

    #[test]
    fn incremental_chain_extension_matches_batch() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2), (2, 3)]));
        let mut r = resident(TC, &inputs);
        assert_eq!(r.outputs()["p"], pairs(&[(1, 2), (1, 3), (2, 3)]));

        let report = r
            .insert_facts("e", &pairs(&[(3, 4)]), None)
            .expect("updates");
        assert_eq!(report.inserted, 1);
        assert!(report.strata_rerun >= 1);
        assert_eq!(
            report.full_fallbacks, 0,
            "monotone program never falls back"
        );
        assert_eq!(
            r.outputs()["p"],
            pairs(&[(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)])
        );
    }

    #[test]
    fn duplicate_inserts_are_absorbed() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let mut r = resident(TC, &inputs);
        let report = r
            .insert_facts("e", &pairs(&[(1, 2)]), None)
            .expect("updates");
        assert_eq!(report.inserted, 0);
        assert_eq!(report.strata_rerun + report.full_fallbacks, 0);
    }

    #[test]
    fn negation_reader_falls_back_and_retracts() {
        let src = "\
            .decl a(x: number)\n.input a\n\
            .decl b(x: number)\n.input b\n\
            .decl r(x: number)\n.output r\n\
            r(x) :- a(x), !b(x).\n";
        let mut inputs = InputData::new();
        inputs.insert(
            "a".into(),
            vec![vec![Value::Number(1)], vec![Value::Number(2)]],
        );
        inputs.insert("b".into(), vec![vec![Value::Number(2)]]);
        let mut r = resident(src, &inputs);
        assert_eq!(r.outputs()["r"], vec![vec![Value::Number(1)]]);

        // Growing the negated relation must *remove* a derived tuple,
        // which only the full-recompute fallback can do.
        let report = r
            .insert_facts("b", &[vec![Value::Number(1)]], None)
            .expect("updates");
        assert!(report.full_fallbacks >= 1);
        assert!(r.outputs()["r"].is_empty());
    }

    #[test]
    fn queries_use_bound_prefixes_and_post_filters() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2), (2, 3), (2, 4)]));
        let mut r = resident(TC, &inputs);
        r.insert_facts("e", &pairs(&[(4, 5)]), None)
            .expect("updates");

        let from2 = r
            .query("p", &[Some(Value::Number(2)), None], None)
            .expect("queries");
        assert_eq!(from2.len(), 3); // (2,3) (2,4) (2,5)
        let exact = r
            .query("p", &[Some(Value::Number(1)), Some(Value::Number(5))], None)
            .expect("queries");
        assert_eq!(exact, pairs(&[(1, 5)]));
        let all = r.query("e", &[None, None], None).expect("queries");
        assert_eq!(all.len(), 4);
        let to3 = r
            .query("p", &[None, Some(Value::Number(3))], None)
            .expect("queries");
        assert_eq!(to3.len(), 2); // (1,3) (2,3)
    }

    #[test]
    fn unknown_symbols_match_nothing_without_interning() {
        let src = "\
            .decl n(s: symbol)\n.input n\n\
            .decl out(s: symbol)\n.output out\n\
            out(s) :- n(s).\n";
        let mut inputs = InputData::new();
        inputs.insert("n".into(), vec![vec![Value::Symbol("ada".into())]]);
        let r = resident(src, &inputs);
        let rows = r
            .query("out", &[Some(Value::Symbol("ghost".into()))], None)
            .expect("queries");
        assert!(rows.is_empty());
        let rows = r
            .query("out", &[Some(Value::Symbol("ada".into()))], None)
            .expect("queries");
        assert_eq!(rows, vec![vec![Value::Symbol("ada".into())]]);
    }

    #[test]
    fn rejects_bad_requests() {
        let r = resident(TC, &InputData::new());
        assert!(r.query("ghost", &[], None).is_err());
        assert!(r.query("p", &[None], None).is_err());
        assert!(r.query("upd_p", &[None, None], None).is_err());
        let mut r = r;
        assert!(r.insert_facts("p", &pairs(&[(1, 2)]), None).is_err());
        assert!(r
            .insert_facts("e", &[vec![Value::Number(1)]], None)
            .is_err());
    }

    #[test]
    fn counters_accumulate() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let mut r = resident(TC, &inputs);
        r.insert_facts("e", &pairs(&[(2, 3)]), None)
            .expect("updates");
        r.query("p", &[None, None], None).expect("queries");
        let s = r.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.update_tuples, 1);
        assert_eq!(s.query_rows, 3);
        assert!(s.strata_rerun >= 1);
    }

    #[test]
    fn multi_stratum_updates_cascade() {
        let src = "\
            .decl e(x: number, y: number)\n.input e\n\
            .decl p(x: number, y: number)\n\
            .decl q(x: number)\n.output q\n\
            p(x, y) :- e(x, y).\n\
            p(x, z) :- p(x, y), e(y, z).\n\
            q(y) :- p(1, y).\n";
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let mut r = resident(src, &inputs);
        assert_eq!(r.outputs()["q"], vec![vec![Value::Number(2)]]);
        let report = r
            .insert_facts("e", &pairs(&[(2, 3)]), None)
            .expect("updates");
        assert!(report.strata_rerun >= 2, "both strata re-run incrementally");
        assert_eq!(
            r.outputs()["q"],
            vec![vec![Value::Number(2)], vec![Value::Number(3)]]
        );
    }
}
