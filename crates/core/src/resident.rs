//! A resident engine: the database outlives the initial evaluation.
//!
//! Batch evaluation (via [`crate::Engine::run`]) builds a database, runs
//! the fixpoint, extracts outputs, and throws everything away. The
//! serving subsystem instead keeps the [`Database`] — relations, indexes,
//! and symbol table — alive so that later fact insertions and point
//! queries cost time proportional to the *change*, not the whole program.
//!
//! # Incremental updates
//!
//! [`ResidentEngine::insert_facts`] stages the genuinely new tuples of a
//! batch in the target relation's `upd_` sibling and then walks the
//! strata bottom-up. A stratum is *affected* when one of the relations it
//! defines or reads changed this cycle. An affected stratum normally
//! re-runs its translation-provided incremental update statement
//! ([`stir_ram::program::RamStratum::update`]): new upstream tuples seed
//! the semi-naive deltas, so only derivations that use at least one new
//! tuple are enumerated, and the stratum's own newly derived tuples land
//! in its `upd_` relations for downstream strata to pick up.
//!
//! Insertion-only delta restarts are sound only for monotone strata. When
//! a changed relation is read under negation or inside an aggregate, or
//! when an upstream stratum had to be recomputed from scratch (so its
//! `upd_` staging is not a faithful "what's new" set), the stratum falls
//! back to a full recompute: its relations are cleared, their facts
//! replayed, and the original stratum statement re-run. The
//! `server.full_fallbacks` counter tallies these.
//!
//! # Retractions
//!
//! [`ResidentEngine::retract_facts`] is the deletion dual, a DRed-style
//! delete-and-re-derive: the deletion-mode twin of each monotone
//! stratum's update statement ([`stir_ram::deletion`]) collects the
//! *over-delete cone* — every derived tuple with at least one derivation
//! touching a removed tuple — against the unmutated database; the doomed
//! tuples and cones are erased; and each erased tuple that is still a
//! ground fact or still one-step derivable ([`crate::rederive`]) is
//! re-admitted and propagated with the normal insertion-mode statement.
//! The same situations that defeat insertion-only delta restarts
//! (negation or aggregate readers, eqrel heads, rebuilt upstream strata,
//! plus provenance mode and opaque auto-increment heads) fall back to a
//! full stratum recompute.
//!
//! # Queries
//!
//! [`ResidentEngine::query`] answers a partially-bound pattern with the
//! relation's existing indexes: the index whose order has the longest
//! prefix of bound columns drives an inclusive range scan, and the
//! remaining bound columns are post-filtered. No statement or tree is
//! built, and the symbol table is only read — a bound symbol that was
//! never interned simply matches nothing.
//!
//! Interpreter trees for update statements are rebuilt per request
//! (microseconds, per the paper's thesis that tree generation is cheap);
//! caching them would tie the tree's lifetime to the program's and buy
//! nothing measurable.

use crate::config::{InterpreterConfig, StorageBackend};
use crate::database::{DataMode, Database, InputData};
use crate::engine::Engine;
use crate::error::{EngineError, EvalError, StorageError};
use crate::fault::{self, FaultPoint};
use crate::health::HealthMonitor;
use crate::interp::Interpreter;
use crate::itree;
use crate::morsel::ParallelReport;
use crate::profile::ProfileReport;
use crate::prov::{ExplainLimits, ProofNode};
use crate::snap2;
use crate::telemetry::{LogLevel, ServeMetrics, Telemetry};
use crate::value::Value;
use crate::wal::{
    self, CommitTicket, Durability, SnapshotLoad, SnapshotStats, WalStats, WalWriter,
};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use stir_der::disk::{self, DiskIndex, RunFile};
use stir_frontend::SymbolTable;
use stir_ram::expr::RamDomain;
use stir_ram::program::{RamProgram, RelId, Role};

/// What one [`ResidentEngine::insert_facts`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateReport {
    /// Tuples of the batch that were not already present.
    pub inserted: u64,
    /// Strata re-run through their incremental update statement.
    pub strata_rerun: u64,
    /// Strata recomputed from scratch (negation/aggregate reads, eqrel
    /// heads, or rebuilt upstream strata).
    pub full_fallbacks: u64,
    /// The request's deadline elapsed during evaluation. The update was
    /// still applied in full (and, when durability is on, logged) —
    /// aborting between strata would leave downstream strata stale — so
    /// callers should report the timeout while treating the data as
    /// committed.
    pub deadline_exceeded: bool,
}

/// What one [`ResidentEngine::retract_facts`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetractReport {
    /// Tuples of the batch that were actually present (and removed).
    pub retracted: u64,
    /// Over-deleted derived tuples restored because a surviving
    /// derivation (or surviving ground fact) still supports them.
    pub rederived: u64,
    /// Strata repaired through the deletion-mode delta + re-derivation
    /// pipeline.
    pub strata_rerun: u64,
    /// Strata recomputed from scratch (negation/aggregate readers,
    /// eqrel heads, provenance mode, or rebuilt upstream strata).
    pub full_fallbacks: u64,
    /// The request's deadline elapsed during evaluation; the retraction
    /// was still applied in full (see [`UpdateReport::deadline_exceeded`]
    /// for why mid-way aborts are never an option).
    pub deadline_exceeded: bool,
}

/// Durability settings for [`ResidentEngine::open`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PersistOptions {
    /// How hard each accepted batch is pushed toward stable storage.
    pub durability: Durability,
    /// Auto-snapshot (and truncate the WAL) every N accepted batches;
    /// `None` snapshots only on demand and at graceful shutdown.
    pub snapshot_interval: Option<u64>,
}

/// What [`ResidentEngine::open`] recovered from the data directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A valid snapshot was loaded (skipping the initial fixpoint).
    pub snapshot_loaded: bool,
    /// WAL batches re-applied after the snapshot point.
    pub replayed_batches: u64,
    /// Genuinely new tuples those batches contributed.
    pub replayed_tuples: u64,
    /// WAL batches that no longer apply (e.g. the program changed in a
    /// way the fingerprint tolerates only for identical RAM, so this is
    /// normally 0); they are dropped, not fatal.
    pub skipped_batches: u64,
    /// Torn bytes discarded from the WAL tail.
    pub torn_bytes: u64,
    /// Wall-clock milliseconds spent reading and replaying the WAL.
    pub replay_ms: u64,
}

/// Live durability state: the open WAL plus snapshot bookkeeping.
#[derive(Debug)]
struct Persistence {
    dir: PathBuf,
    wal: WalWriter,
    fp: u64,
    snapshot_every: Option<u64>,
    batches_since_snapshot: u64,
    snapshot_writes: u64,
    snapshot_tuples: u64,
    recovery: RecoveryReport,
}

/// The WAL file name inside a data directory.
pub const WAL_FILE: &str = "wal.log";
/// The snapshot file name inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// The transient probe file written by storage health checks.
pub const PROBE_FILE: &str = "wal.probe";

/// Writes, fsyncs, and removes a probe file in `dir` — the core of a
/// storage health check. Gated by the `wal_probe` fault point (distinct
/// from the WAL append points so probes never shift `at=N` hit counts).
fn probe_storage_dir(dir: &Path) -> Result<(), StorageError> {
    let err = |op: &'static str| move |e: std::io::Error| StorageError::io(op, &e);
    fault::check(FaultPoint::WalProbe).map_err(err("probe storage"))?;
    let path = dir.join(PROBE_FILE);
    let mut f = std::fs::File::create(&path).map_err(err("create storage probe"))?;
    f.write_all(b"stir-probe")
        .map_err(err("write storage probe"))?;
    f.sync_data().map_err(err("fsync storage probe"))?;
    drop(f);
    let _ = std::fs::remove_file(&path);
    Ok(())
}

impl Persistence {
    fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }
}

/// A point-in-time snapshot of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests served (updates + queries).
    pub requests: u64,
    /// Genuinely new tuples inserted across all updates.
    pub update_tuples: u64,
    /// Rows returned across all queries.
    pub query_rows: u64,
    /// Incremental stratum re-runs across all updates.
    pub strata_rerun: u64,
    /// Full stratum recomputations across all updates.
    pub full_fallbacks: u64,
    /// `.explain` requests served (always 0 with provenance off).
    pub explain_requests: u64,
    /// Proof-tree nodes returned across all `.explain` requests.
    pub explain_nodes: u64,
    /// Retraction requests served.
    pub retracts: u64,
    /// Tuples actually removed across all retractions.
    pub retract_tuples: u64,
    /// Over-deleted tuples restored by re-derivation.
    pub rederived: u64,
    /// Scans that fanned out to work-stealing workers (0 when the engine
    /// runs sequentially).
    pub parallel_scans: u64,
    /// Morsels claimed across all parallel scans and workers.
    pub parallel_morsels: u64,
    /// Morsels claimed outside the claiming worker's own range.
    pub parallel_steals: u64,
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    update_tuples: AtomicU64,
    query_rows: AtomicU64,
    strata_rerun: AtomicU64,
    full_fallbacks: AtomicU64,
    explain_requests: AtomicU64,
    explain_nodes: AtomicU64,
    retracts: AtomicU64,
    retract_tuples: AtomicU64,
    rederived: AtomicU64,
    parallel_scans: AtomicU64,
    parallel_morsels: AtomicU64,
    parallel_steals: AtomicU64,
    /// Per-worker tuple totals across every parallel scan; grows to the
    /// largest job count seen.
    worker_tuples: std::sync::Mutex<Vec<u64>>,
}

impl Counters {
    /// Folds one evaluation's work-stealing statistics into the serving
    /// counters. A no-op for sequential evaluations (`None`).
    fn absorb_parallel(&self, par: Option<&ParallelReport>) {
        let Some(par) = par else { return };
        self.parallel_scans.fetch_add(par.scans, Ordering::Relaxed);
        self.parallel_morsels
            .fetch_add(par.morsels(), Ordering::Relaxed);
        self.parallel_steals
            .fetch_add(par.steals(), Ordering::Relaxed);
        let mut wt = self.worker_tuples.lock().expect("worker tuples lock");
        if wt.len() < par.workers.len() {
            wt.resize(par.workers.len(), 0);
        }
        for (w, s) in par.workers.iter().enumerate() {
            wt[w] += s.tuples;
        }
    }
}

/// An engine whose database stays resident between requests.
///
/// Updates take `&mut self` (callers such as `stird` serialize them
/// through a write lock); queries take `&self` and may run concurrently —
/// the type is `Sync` because [`Database`] is.
///
/// # Example
///
/// ```
/// use stir_core::{InterpreterConfig, ResidentEngine, Value};
///
/// let engine = stir_core::Engine::from_source(
///     ".decl e(x: number, y: number)
///      .input e
///      .decl p(x: number, y: number)
///      .output p
///      e(1, 2).
///      p(x, y) :- e(x, y).
///      p(x, z) :- p(x, y), e(y, z).",
/// )?;
/// let mut resident = ResidentEngine::new(
///     engine,
///     InterpreterConfig::optimized(),
///     &Default::default(),
///     None,
/// )?;
/// resident.insert_facts("e", &[vec![Value::Number(2), Value::Number(3)]], None)?;
/// let rows = resident.query("p", &[Some(Value::Number(1)), None], None)?;
/// assert_eq!(rows.len(), 2); // p(1,2), p(1,3)
/// # Ok::<(), stir_core::EngineError>(())
/// ```
#[derive(Debug)]
pub struct ResidentEngine {
    ram: RamProgram,
    config: InterpreterConfig,
    db: Database,
    /// Every tuple inserted after construction (plus the initial external
    /// inputs), replayed when a fallback recompute clears a relation that
    /// also holds ground facts.
    extra_facts: Vec<(RelId, Vec<RamDomain>)>,
    /// For each base relation, its `delta_`/`new_`/`upd_` siblings.
    aux_of: Vec<Vec<RelId>>,
    /// All `upd_` staging relations (cleared at the start of each cycle).
    all_upds: Vec<RelId>,
    counters: Counters,
    initial_profile: Option<ProfileReport>,
    /// Durable state, when the engine was opened with a data directory.
    persistence: Option<Persistence>,
    /// Serving latency histograms and gauges, shared with the daemon's
    /// admin endpoint (disabled outside serving mode).
    serve_metrics: Arc<ServeMetrics>,
    /// Storage health state machine, shared (`Arc`) with the serving
    /// layer, admin endpoint, and heal loop. Stays Healthy forever on
    /// non-durable engines.
    health: Arc<HealthMonitor>,
    /// The mapped v2 snapshot the disk-backed indexes serve pages off
    /// (cold start or `.compact`); `None` when every index is
    /// memory-resident or no base has been installed yet.
    run_file: Option<Arc<RunFile>>,
}

impl ResidentEngine {
    /// Runs the initial evaluation and keeps the database resident.
    ///
    /// Mirrors [`Engine::run`] (same phase spans when telemetry is
    /// attached) but retains ownership of the RAM program and database.
    ///
    /// # Errors
    ///
    /// Propagates input-loading and runtime errors from the initial
    /// fixpoint.
    pub fn new(
        engine: Engine,
        config: InterpreterConfig,
        inputs: &InputData,
        tel: Option<&Telemetry>,
    ) -> Result<ResidentEngine, EngineError> {
        let ram = engine.into_ram();
        let tracer = tel.map(|t| &t.tracer);
        let mode = if config.legacy_data {
            DataMode::LegacyDynamic
        } else {
            DataMode::Specialized
        };
        let db = {
            let _span = tracer.map(|t| t.span("phase:build-db"));
            Database::new_with_storage(&ram, mode, config.provenance, config.storage)
        };
        {
            let _span = tracer.map(|t| t.span("phase:load-inputs"));
            db.load_inputs(&ram, inputs)?;
        }
        let counters = Counters::default();
        let initial_profile = {
            let tree = {
                let _span = tracer.map(|t| t.span("phase:build-itree"));
                itree::build_with_fusions(&ram, &config, &[])
            };
            let mut interp = Interpreter::new(&ram, &db, config);
            if let Some(t) = tel {
                interp.attach_telemetry(t);
            }
            {
                let _span = tracer.map(|t| t.span("phase:evaluate"));
                interp.run(&tree)?;
            }
            counters.absorb_parallel(interp.parallel_report().as_ref());
            interp.profile_report()
        };
        if let Some(t) = tel {
            db.sample_metrics(&ram, &t.metrics);
        }

        // Record the external inputs so a later fallback recompute can
        // replay them alongside the program's own ground facts.
        let mut extra_facts = Vec::new();
        {
            let mut symbols = db.symbols_wr();
            for (name, tuples) in inputs {
                let id = ram
                    .relation_by_name(name)
                    .expect("validated by load_inputs")
                    .id;
                for t in tuples {
                    extra_facts.push((id, t.iter().map(|v| v.encode(&mut symbols)).collect()));
                }
            }
        }

        let mut aux_of = vec![Vec::new(); ram.relations.len()];
        let mut all_upds = Vec::new();
        for r in &ram.relations {
            match r.role {
                Role::Standard => {}
                Role::Delta(b) | Role::New(b) => aux_of[b.0].push(r.id),
                Role::Upd(b) => {
                    aux_of[b.0].push(r.id);
                    all_upds.push(r.id);
                }
            }
        }

        Ok(ResidentEngine {
            ram,
            config,
            db,
            extra_facts,
            aux_of,
            all_upds,
            counters,
            initial_profile,
            persistence: None,
            serve_metrics: Arc::new(ServeMetrics::off()),
            health: Arc::new(HealthMonitor::new()),
            run_file: None,
        })
    }

    /// Builds a resident engine from a valid snapshot, skipping the
    /// initial fixpoint: relations (EDB *and* IDB), symbols, the
    /// auto-increment counter, and the fact replay list all come from
    /// the snapshot.
    fn from_snapshot(
        engine: Engine,
        config: InterpreterConfig,
        snap: wal::SnapshotData,
        tel: Option<&Telemetry>,
    ) -> Result<ResidentEngine, EngineError> {
        let mut ram = engine.into_ram();
        let tracer = tel.map(|t| &t.tracer);
        let mode = if config.legacy_data {
            DataMode::LegacyDynamic
        } else {
            DataMode::Specialized
        };
        let db = {
            let _span = tracer.map(|t| t.span("phase:build-db"));
            Database::new_with_storage(&ram, mode, config.provenance, config.storage)
        };
        {
            // Replace the table wholesale: every bit pattern in the
            // snapshot was encoded against it. The program's own symbols
            // are a prefix of it (interning only appends), so the
            // `ram.facts` tuples inserted by `Database::new` stay valid.
            let mut fresh = SymbolTable::new();
            for s in &snap.symbols {
                fresh.intern(s);
            }
            if fresh.len() < ram.symbols.len() {
                return Err(StorageError::new(
                    "snapshot symbol table is smaller than the program's",
                )
                .into());
            }
            *db.symbols_wr() = fresh;
        }
        if !config.provenance {
            db.counter
                .store(snap.counter, std::sync::atomic::Ordering::Relaxed);
        }

        {
            let _span = tracer.map(|t| t.span("phase:load-snapshot"));
            for (name, tuples) in &snap.relations {
                let meta = ram.relation_by_name(name).ok_or_else(|| {
                    StorageError::new(format!("snapshot relation `{name}` is not in the program"))
                })?;
                // Annotations are deliberately not serialized: with
                // provenance on, only the `.input` relations are taken
                // from the snapshot (as height-0 axioms) and everything
                // derived is recomputed below, regaining its rule and
                // height annotations. The snapshot format stays identical
                // in both modes.
                if config.provenance && !meta.is_input {
                    continue;
                }
                let mut rel = db.wr(meta.id);
                // The snapshot is the *complete* state of this relation.
                // `Database::new_with` pre-inserted the program's ground
                // facts; any of them missing from the snapshot was
                // retracted before it was taken and must not resurrect.
                rel.clear();
                for t in tuples {
                    if t.len() != meta.arity {
                        return Err(StorageError::new(format!(
                            "snapshot tuple for `{name}` has arity {}, expected {}",
                            t.len(),
                            meta.arity
                        ))
                        .into());
                    }
                    if rel.insert(t) && config.provenance {
                        rel.record_annotation(t, 0, crate::database::RULE_INPUT);
                    }
                }
            }
        }
        {
            // Reconcile the ground-fact replay list the same way: a
            // program fact of a snapshot-covered `.input` relation that
            // the snapshot no longer contains was retracted, and a later
            // fallback recompute must not replay it back to life.
            let mut covered = vec![false; ram.relations.len()];
            for (name, _) in &snap.relations {
                if let Some(m) = ram.relation_by_name(name) {
                    if m.is_input {
                        covered[m.id.0] = true;
                    }
                }
            }
            ram.facts
                .retain(|(rid, t)| !covered[rid.0] || db.rd(*rid).contains(t));
        }
        let counters = Counters::default();
        if config.provenance {
            // Recompute-on-recovery: re-run the main fixpoint over the
            // recovered inputs so derived tuples exist *with* annotations.
            let tree = {
                let _span = tracer.map(|t| t.span("phase:build-itree"));
                itree::build_with_fusions(&ram, &config, &[])
            };
            let mut interp = Interpreter::new(&ram, &db, config);
            if let Some(t) = tel {
                interp.attach_telemetry(t);
            }
            {
                let _span = tracer.map(|t| t.span("phase:evaluate"));
                interp.run(&tree)?;
            }
            counters.absorb_parallel(interp.parallel_report().as_ref());
            // Auto-increment ids were re-allocated during the recompute;
            // keep the snapshot's high-water mark so future allocations
            // never collide with values it recorded.
            let cur = db.counter.load(std::sync::atomic::Ordering::Relaxed);
            db.counter
                .store(cur.max(snap.counter), std::sync::atomic::Ordering::Relaxed);
        }
        for (rid, _) in &snap.extra_facts {
            if rid.0 >= ram.relations.len() {
                return Err(
                    StorageError::new("snapshot replay list names an unknown relation").into(),
                );
            }
        }
        if let Some(t) = tel {
            db.sample_metrics(&ram, &t.metrics);
        }

        let mut aux_of = vec![Vec::new(); ram.relations.len()];
        let mut all_upds = Vec::new();
        for r in &ram.relations {
            match r.role {
                Role::Standard => {}
                Role::Delta(b) | Role::New(b) => aux_of[b.0].push(r.id),
                Role::Upd(b) => {
                    aux_of[b.0].push(r.id);
                    all_upds.push(r.id);
                }
            }
        }

        Ok(ResidentEngine {
            ram,
            config,
            db,
            extra_facts: snap.extra_facts,
            aux_of,
            all_upds,
            counters,
            initial_profile: None,
            persistence: None,
            serve_metrics: Arc::new(ServeMetrics::off()),
            health: Arc::new(HealthMonitor::new()),
            run_file: None,
        })
    }

    /// Builds a resident engine directly off a mapped v2 snapshot — the
    /// disk-storage cold-start path. No fixpoint runs and no index is
    /// rebuilt: each disk-backed index is rebased onto its persisted run
    /// (pages fault in lazily through the shared cache) and only the
    /// inline relations (nullary, eqrel) are materialized. Callers
    /// guarantee `config.storage == Disk` and provenance off (provenance
    /// recovery recomputes annotations, so it goes through
    /// [`Self::from_snapshot`] on materialized tuples instead).
    fn from_snap2(
        engine: Engine,
        config: InterpreterConfig,
        snap: snap2::Snap2,
        tel: Option<&Telemetry>,
    ) -> Result<ResidentEngine, EngineError> {
        let mut ram = engine.into_ram();
        let tracer = tel.map(|t| &t.tracer);
        let mode = if config.legacy_data {
            DataMode::LegacyDynamic
        } else {
            DataMode::Specialized
        };
        let db = {
            let _span = tracer.map(|t| t.span("phase:build-db"));
            Database::new_with_storage(&ram, mode, config.provenance, config.storage)
        };
        {
            // Same wholesale symbol-table replacement as
            // [`Self::from_snapshot`]: the snapshot's bit patterns were
            // encoded against it.
            let mut fresh = SymbolTable::new();
            for s in &snap.symbols {
                fresh.intern(s);
            }
            if fresh.len() < ram.symbols.len() {
                return Err(StorageError::new(
                    "snapshot symbol table is smaller than the program's",
                )
                .into());
            }
            *db.symbols_wr() = fresh;
        }
        db.counter
            .store(snap.counter, std::sync::atomic::Ordering::Relaxed);

        {
            let _span = tracer.map(|t| t.span("phase:map-snapshot"));
            for srel in &snap.relations {
                let meta = ram.relation_by_name(&srel.name).ok_or_else(|| {
                    StorageError::new(format!(
                        "snapshot relation `{}` is not in the program",
                        srel.name
                    ))
                })?;
                if srel.arity != meta.arity {
                    return Err(StorageError::new(format!(
                        "snapshot relation `{}` has arity {}, expected {}",
                        srel.name, srel.arity, meta.arity
                    ))
                    .into());
                }
                let mut rel = db.wr(meta.id);
                if let Some(tuples) = &srel.inline {
                    // The snapshot is the complete state: ground facts
                    // pre-inserted by `Database::new_with_storage` that
                    // are missing from it were retracted and must not
                    // resurrect.
                    rel.clear();
                    for t in tuples {
                        if t.len() != meta.arity {
                            return Err(StorageError::new(format!(
                                "snapshot tuple for `{}` has arity {}, expected {}",
                                srel.name,
                                t.len(),
                                meta.arity
                            ))
                            .into());
                        }
                        rel.insert(t);
                    }
                    continue;
                }
                // Run-backed: every index of the relation must be a
                // DiskIndex whose order matches the persisted run (the
                // fingerprint makes a mismatch a corruption, not a
                // version skew).
                if rel.index_count() != srel.runs.len() {
                    return Err(StorageError::new(format!(
                        "snapshot relation `{}` has {} runs, the program wants {} indexes",
                        srel.name,
                        srel.runs.len(),
                        rel.index_count()
                    ))
                    .into());
                }
                for (k, run) in srel.runs.iter().enumerate() {
                    let base = snap.base_run(srel, k);
                    let idx = rel.index_mut(k);
                    if idx.order().columns() != &run.order[..] {
                        return Err(StorageError::new(format!(
                            "snapshot run {k} of `{}` is ordered {:?}, the index wants {:?}",
                            srel.name,
                            run.order,
                            idx.order().columns()
                        ))
                        .into());
                    }
                    idx.as_any_mut()
                        .downcast_mut::<DiskIndex>()
                        .ok_or_else(|| {
                            StorageError::new(format!(
                                "snapshot relation `{}` is run-backed but index {k} is not \
                                 a disk index",
                                srel.name
                            ))
                        })?
                        .rebase(base);
                }
            }
        }
        {
            // Ground-fact replay-list reconciliation, as in
            // [`Self::from_snapshot`]: a program fact of a
            // snapshot-covered `.input` relation that the snapshot no
            // longer contains was retracted.
            let mut covered = vec![false; ram.relations.len()];
            for srel in &snap.relations {
                if let Some(m) = ram.relation_by_name(&srel.name) {
                    if m.is_input {
                        covered[m.id.0] = true;
                    }
                }
            }
            ram.facts
                .retain(|(rid, t)| !covered[rid.0] || db.rd(*rid).contains(t));
        }
        for (rid, _) in &snap.extra_facts {
            if rid.0 >= ram.relations.len() {
                return Err(
                    StorageError::new("snapshot replay list names an unknown relation").into(),
                );
            }
        }
        if let Some(t) = tel {
            db.sample_metrics(&ram, &t.metrics);
        }

        let mut aux_of = vec![Vec::new(); ram.relations.len()];
        let mut all_upds = Vec::new();
        for r in &ram.relations {
            match r.role {
                Role::Standard => {}
                Role::Delta(b) | Role::New(b) => aux_of[b.0].push(r.id),
                Role::Upd(b) => {
                    aux_of[b.0].push(r.id);
                    all_upds.push(r.id);
                }
            }
        }

        Ok(ResidentEngine {
            ram,
            config,
            db,
            extra_facts: snap.extra_facts,
            aux_of,
            all_upds,
            counters: Counters::default(),
            initial_profile: None,
            persistence: None,
            serve_metrics: Arc::new(ServeMetrics::off()),
            health: Arc::new(HealthMonitor::new()),
            run_file: Some(snap.file),
        })
    }

    /// Opens a resident engine backed by a data directory: loads the
    /// latest valid snapshot (falling back to a fresh evaluation of
    /// `inputs`), replays the WAL suffix, truncates any torn tail, and
    /// keeps the WAL open for [`Self::insert_facts`] appends.
    ///
    /// When a snapshot is loaded, `inputs` is ignored — the snapshot
    /// already contains those facts (and everything inserted since).
    ///
    /// # Errors
    ///
    /// Propagates construction errors and I/O failures on the data
    /// directory. An *invalid* snapshot or torn WAL tail is not an
    /// error: recovery degrades to re-evaluation and reports it.
    pub fn open(
        engine: Engine,
        config: InterpreterConfig,
        inputs: &InputData,
        data_dir: &Path,
        opts: PersistOptions,
        tel: Option<&Telemetry>,
    ) -> Result<(ResidentEngine, RecoveryReport), EngineError> {
        std::fs::create_dir_all(data_dir).map_err(|e| StorageError::io("create data dir", &e))?;
        let fp = wal::fingerprint(&engine.ram().to_string());
        let snap_path = data_dir.join(SNAPSHOT_FILE);
        let wal_path = data_dir.join(WAL_FILE);

        let mut report = RecoveryReport::default();
        let mut this = if snap2::is_v2(&snap_path) {
            // A v2 snapshot: under disk storage the run region is mapped
            // and served in place (no fixpoint, no index rebuild); under
            // memory storage — or with provenance on, which recomputes
            // derived tuples to regain annotations — the runs are
            // materialized into the v1 load path. Either way the format
            // is portable across engine modes and storage backends.
            match snap2::open_snapshot_v2(&snap_path, fp, disk::cache_budget_from_env()) {
                Ok(snap) => {
                    report.snapshot_loaded = true;
                    if config.storage == StorageBackend::Disk && !config.provenance {
                        Self::from_snap2(engine, config, snap, tel)?
                    } else {
                        Self::from_snapshot(engine, config, snap.into_snapshot_data(), tel)?
                    }
                }
                Err(reason) => {
                    if let Some(t) = tel {
                        t.logger.log(
                            LogLevel::Warn,
                            &format!("ignoring unusable snapshot: {reason}"),
                        );
                    }
                    Self::new(engine, config, inputs, tel)?
                }
            }
        } else {
            match wal::read_snapshot(&snap_path, fp) {
                SnapshotLoad::Loaded(snap) => {
                    report.snapshot_loaded = true;
                    Self::from_snapshot(engine, config, snap, tel)?
                }
                SnapshotLoad::Missing => Self::new(engine, config, inputs, tel)?,
                SnapshotLoad::Invalid(reason) => {
                    if let Some(t) = tel {
                        t.logger.log(
                            LogLevel::Warn,
                            &format!("ignoring unusable snapshot: {reason}"),
                        );
                    }
                    Self::new(engine, config, inputs, tel)?
                }
            }
        };

        let replay_started = Instant::now();
        let replayed = wal::replay(&wal_path, fp)?;
        report.torn_bytes = replayed.torn_bytes;
        for rec in &replayed.records {
            // Replay runs the same validated path as serving, minus the
            // WAL append; batches already covered by the snapshot
            // re-insert (or re-remove) zero fresh tuples and touch no
            // strata.
            let applied = match rec.kind {
                wal::WalRecordKind::Insert => this
                    .insert_internal(&rec.rel, &rec.rows, None, tel)
                    .map(|r| r.inserted),
                wal::WalRecordKind::Delete => this
                    .retract_internal(&rec.rel, &rec.rows, None, tel)
                    .map(|r| r.retracted),
            };
            match applied {
                Ok(tuples) => {
                    report.replayed_batches += 1;
                    report.replayed_tuples += tuples;
                }
                Err(e) => {
                    report.skipped_batches += 1;
                    if let Some(t) = tel {
                        t.logger
                            .log(LogLevel::Warn, &format!("skipping WAL batch: {e}"));
                    }
                }
            }
        }

        report.replay_ms = replay_started.elapsed().as_millis().min(u64::MAX as u128) as u64;

        let valid_len = if replayed.version == 1 {
            // Upgrade a version-1 log in place before appending: one
            // file never mixes kind-less and kinded frames.
            wal::rewrite(&wal_path, fp, &replayed.records)?
        } else {
            replayed.valid_len
        };
        let wal = WalWriter::open(&wal_path, opts.durability, fp, valid_len)?;
        this.persistence = Some(Persistence {
            dir: data_dir.to_path_buf(),
            wal,
            fp,
            snapshot_every: opts.snapshot_interval,
            batches_since_snapshot: report.replayed_batches,
            snapshot_writes: 0,
            snapshot_tuples: 0,
            recovery: report,
        });
        Ok((this, report))
    }

    /// Convenience constructor: compile `source` and make it resident.
    ///
    /// # Errors
    ///
    /// Propagates frontend, translation, input-loading, and runtime
    /// errors.
    pub fn from_source(
        source: &str,
        config: InterpreterConfig,
        inputs: &InputData,
        tel: Option<&Telemetry>,
    ) -> Result<ResidentEngine, EngineError> {
        let engine = Engine::from_source_with(source, tel)?;
        ResidentEngine::new(engine, config, inputs, tel)
    }

    /// The resident RAM program.
    pub fn ram(&self) -> &RamProgram {
        &self.ram
    }

    /// The configuration the engine runs under.
    pub fn config(&self) -> InterpreterConfig {
        self.config
    }

    /// The profiling report of the initial evaluation, when profiling was
    /// enabled.
    pub fn initial_profile(&self) -> Option<&ProfileReport> {
        self.initial_profile.as_ref()
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            update_tuples: self.counters.update_tuples.load(Ordering::Relaxed),
            query_rows: self.counters.query_rows.load(Ordering::Relaxed),
            strata_rerun: self.counters.strata_rerun.load(Ordering::Relaxed),
            full_fallbacks: self.counters.full_fallbacks.load(Ordering::Relaxed),
            explain_requests: self.counters.explain_requests.load(Ordering::Relaxed),
            explain_nodes: self.counters.explain_nodes.load(Ordering::Relaxed),
            retracts: self.counters.retracts.load(Ordering::Relaxed),
            retract_tuples: self.counters.retract_tuples.load(Ordering::Relaxed),
            rederived: self.counters.rederived.load(Ordering::Relaxed),
            parallel_scans: self.counters.parallel_scans.load(Ordering::Relaxed),
            parallel_morsels: self.counters.parallel_morsels.load(Ordering::Relaxed),
            parallel_steals: self.counters.parallel_steals.load(Ordering::Relaxed),
        }
    }

    /// Per-worker tuple totals across every parallel scan the engine has
    /// run; empty when evaluation is sequential.
    pub fn parallel_worker_tuples(&self) -> Vec<u64> {
        self.counters
            .worker_tuples
            .lock()
            .expect("worker tuples lock")
            .clone()
    }

    /// Flushes the serving counters and the database structure into an
    /// attached metrics registry (under `server.*`). A no-op when the
    /// registry is disabled.
    pub fn sync_metrics(&self, tel: &Telemetry) {
        let m = &tel.metrics;
        if !m.enabled() {
            return;
        }
        let s = self.stats();
        m.set("server.requests", s.requests);
        m.set("server.update_tuples", s.update_tuples);
        m.set("server.query_rows", s.query_rows);
        m.set("server.strata_rerun", s.strata_rerun);
        m.set("server.full_fallbacks", s.full_fallbacks);
        if s.retracts > 0 {
            // Gated the same way as the explain counters: a server that
            // never saw a retraction produces a metric dump
            // byte-identical to older builds.
            m.set("server.retracts", s.retracts);
            m.set("server.retract_tuples", s.retract_tuples);
            m.set("server.rederived", s.rederived);
        }
        if s.parallel_scans > 0 {
            // Gated likewise: sequential servers keep the sequential
            // counter schema.
            m.set("server.parallel_scans", s.parallel_scans);
            m.set("server.parallel_morsels", s.parallel_morsels);
            m.set("server.parallel_steals", s.parallel_steals);
            for (w, tuples) in self.parallel_worker_tuples().iter().enumerate() {
                m.set(&format!("server.parallel_worker.{w}.tuples"), *tuples);
            }
        }
        if self.config.provenance {
            // Gated so that provenance-off metric dumps (and the profile
            // JSON built from them) stay byte-identical to older builds.
            m.set("explain.requests", s.explain_requests);
            m.set("explain.nodes", s.explain_nodes);
        }
        if let Some(p) = &self.persistence {
            m.set("wal.appends", p.wal.stats.appends);
            m.set("wal.bytes", p.wal.stats.bytes);
            m.set("wal.fsyncs", p.wal.stats.fsyncs);
            m.set("wal.append_errors", p.wal.stats.append_errors);
            m.set("snapshot.writes", p.snapshot_writes);
            m.set("snapshot.tuples", p.snapshot_tuples);
            m.set(
                "recovery.snapshot_loaded",
                u64::from(p.recovery.snapshot_loaded),
            );
            m.set("recovery.replayed_batches", p.recovery.replayed_batches);
            m.set("recovery.replayed_tuples", p.recovery.replayed_tuples);
            m.set("recovery.skipped_batches", p.recovery.skipped_batches);
            m.set("recovery.torn_bytes", p.recovery.torn_bytes);
            m.set("recovery.replay_ms", p.recovery.replay_ms);
        }
        if let Some((fsyncs, commits)) = self.group_commit_stats() {
            m.set("group_commit.fsyncs", fsyncs);
            m.set("group_commit.commits", commits);
        }
        if let Some((hits, misses, evictions, resident, budget)) = self.page_cache_stats() {
            // Gated like the parallel/retract counters: engines that
            // never mapped a snapshot keep the old metric schema.
            m.set("storage.page_cache.hits", hits);
            m.set("storage.page_cache.misses", misses);
            m.set("storage.page_cache.evictions", evictions);
            m.set("storage.page_cache.resident_bytes", resident);
            m.set("storage.page_cache.budget_bytes", budget);
        }
        let h = &self.health;
        if h.state_code() != 0 || h.degraded_entered.load(Ordering::Relaxed) > 0 {
            // Gated like the retract/parallel counters: an engine that
            // never degraded keeps the old metric schema.
            m.set("health.state", u64::from(h.state_code()));
            m.set(
                "health.degraded_entered",
                h.degraded_entered.load(Ordering::Relaxed),
            );
            m.set(
                "health.degraded_healed",
                h.degraded_healed.load(Ordering::Relaxed),
            );
            m.set(
                "health.probe_failures",
                h.probe_failures.load(Ordering::Relaxed),
            );
            m.set(
                "health.writes_refused",
                h.writes_refused.load(Ordering::Relaxed),
            );
        }
        self.db.sample_metrics(&self.ram, m);
    }

    /// Shares a serving metrics registry with the engine: WAL append
    /// and fsync latencies flow into its histograms, snapshot durations
    /// are recorded, and the recovery report is exported as gauges so a
    /// scrape after restart can verify recovery health.
    pub fn attach_serve_metrics(&mut self, metrics: Arc<ServeMetrics>) {
        if let Some(p) = &mut self.persistence {
            p.wal.attach_metrics(Arc::clone(&metrics));
            let rec = p.recovery;
            metrics.recovery_wal_records.store(
                rec.replayed_batches + rec.skipped_batches,
                Ordering::Relaxed,
            );
            metrics
                .recovery_replay_ms
                .store(rec.replay_ms, Ordering::Relaxed);
            metrics
                .recovery_snapshot_loaded
                .store(u64::from(rec.snapshot_loaded), Ordering::Relaxed);
        }
        self.serve_metrics = metrics;
    }

    /// The serving metrics registry attached to this engine (a disabled
    /// one unless [`Self::attach_serve_metrics`] was called).
    pub fn serve_metrics(&self) -> &Arc<ServeMetrics> {
        &self.serve_metrics
    }

    /// The WAL append-path counters, when the engine is durable.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.persistence.as_ref().map(|p| p.wal.stats)
    }

    /// Snapshot-write counters `(writes, tuples)`, when durable.
    pub fn snapshot_stats(&self) -> Option<(u64, u64)> {
        self.persistence
            .as_ref()
            .map(|p| (p.snapshot_writes, p.snapshot_tuples))
    }

    /// What recovery did at [`Self::open`] time, when durable.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.persistence.as_ref().map(|p| p.recovery)
    }

    /// The storage health monitor, shared with the serving layer, the
    /// admin endpoint, and the daemon's heal loop.
    pub fn health(&self) -> Arc<HealthMonitor> {
        Arc::clone(&self.health)
    }

    /// Probes the storage layer and repairs recoverable damage: writes,
    /// fsyncs, and removes a probe file in the data directory (the
    /// `wal_probe` fault point), then — if a failed rollback poisoned
    /// the WAL — writes a fresh snapshot covering all logged history and
    /// truncates the log, which clears the poison. A no-op without a
    /// data directory.
    ///
    /// # Errors
    ///
    /// Returns the probe or repair failure; the engine is not healthy.
    pub fn heal_storage(&mut self) -> Result<(), StorageError> {
        let Some(p) = &self.persistence else {
            return Ok(());
        };
        probe_storage_dir(&p.dir)?;
        if p.wal.is_broken() {
            // Truncate-or-rotate: the snapshot is the new recovery
            // baseline, so resetting the poisoned tail loses nothing.
            self.snapshot(None)
                .map_err(|e| StorageError::new(e.to_string()))?;
        }
        Ok(())
    }

    /// Reacts to a storage failure on the write path: probe (and
    /// repair) immediately. A passing probe means the failure was
    /// transient — the engine stays Healthy and only the failing
    /// request reports an error. A failing probe enters Degraded:
    /// writes are refused with a `retry-after` hint until the heal
    /// loop's probe succeeds.
    pub fn note_storage_failure(&mut self, cause: &str) {
        let health = Arc::clone(&self.health);
        match self.heal_storage() {
            Ok(()) => health.mark_healed(),
            Err(_) => health.record_degraded(cause),
        }
    }

    /// One background heal attempt: probe (and repair) storage, then
    /// record the outcome on the health monitor. Returns `true` when
    /// the engine came out healthy.
    pub fn try_heal(&mut self) -> bool {
        let health = Arc::clone(&self.health);
        match self.heal_storage() {
            Ok(()) => {
                health.mark_healed();
                true
            }
            Err(e) => {
                health.record_probe_failure(&e.to_string());
                false
            }
        }
    }

    /// Switches `always`-durability WAL appends to group commit (see
    /// [`crate::wal::GroupCommit`]). A no-op without persistence or
    /// under other durability policies.
    pub fn enable_group_commit(&mut self) {
        if let Some(p) = &mut self.persistence {
            p.wal.enable_group_commit();
        }
    }

    /// Takes the durability ticket minted by the most recent
    /// group-committed append. The serving layer waits on it *after*
    /// releasing the engine write lock, so concurrent writers share
    /// fsyncs at the barrier instead of serializing them under the
    /// lock.
    pub fn take_commit_ticket(&mut self) -> Option<CommitTicket> {
        self.persistence.as_mut().and_then(|p| p.wal.take_ticket())
    }

    /// Group-commit counters `(fsyncs, commits)`, when enabled.
    pub fn group_commit_stats(&self) -> Option<(u64, u64)> {
        self.persistence
            .as_ref()
            .and_then(|p| p.wal.group_commit())
            .map(|g| {
                (
                    g.fsyncs.load(Ordering::Relaxed),
                    g.commits.load(Ordering::Relaxed),
                )
            })
    }

    /// The database epoch: bumped on every visible mutation, so two
    /// equal readings bracket an unchanged database.
    pub fn db_epoch(&self) -> u64 {
        u64::from(self.db.epoch.load(Ordering::Relaxed))
    }

    /// Current tuple count of every base (`Role::Standard`) relation,
    /// in declaration order — the per-relation gauges on `/metrics`.
    pub fn relation_tuples(&self) -> Vec<(String, u64)> {
        self.ram
            .relations
            .iter()
            .filter(|r| matches!(r.role, Role::Standard))
            .map(|r| (r.name.clone(), self.db.rd(r.id).len() as u64))
            .collect()
    }

    /// Approximate resident bytes of every base (`Role::Standard`)
    /// relation — the sum of its indexes' structural estimates — in
    /// declaration order: the per-relation `stir_relation_bytes` gauges
    /// on `/metrics`. Disk-backed indexes report only what actually
    /// lives in memory (fences and delta overlays), not the mapped run
    /// region, so the total tracks the process's real footprint.
    pub fn relation_bytes(&self) -> Vec<(String, u64)> {
        self.ram
            .relations
            .iter()
            .filter(|r| matches!(r.role, Role::Standard))
            .map(|r| {
                let bytes: usize = self.db.rd(r.id).index_stats().iter().map(|s| s.bytes).sum();
                (r.name.clone(), bytes as u64)
            })
            .collect()
    }

    /// Page-cache counters of the mapped v2 snapshot, as
    /// `(hits, misses, evictions, resident_bytes, budget_bytes)`;
    /// `None` until a cold start or `.compact` installs one.
    pub fn page_cache_stats(&self) -> Option<(u64, u64, u64, u64, u64)> {
        self.run_file.as_ref().map(|f| {
            let s = f.stats();
            (
                s.hits.load(Ordering::Relaxed),
                s.misses.load(Ordering::Relaxed),
                s.evictions.load(Ordering::Relaxed),
                s.resident_bytes.load(Ordering::Relaxed),
                f.budget() as u64,
            )
        })
    }

    /// The storage backend the engine's database runs on.
    pub fn storage(&self) -> StorageBackend {
        self.config.storage
    }

    /// Every `.output` relation's current tuples, sorted, keyed by name.
    pub fn outputs(&self) -> HashMap<String, Vec<Vec<Value>>> {
        self.db.extract_outputs(&self.ram)
    }

    /// Inserts a batch of facts into an `.input` relation and brings all
    /// downstream strata up to date incrementally (see the module docs
    /// for the delta-restart algorithm and its fallback rule).
    ///
    /// When the engine was [`Self::open`]ed with a data directory, the
    /// batch is appended to the write-ahead log *before* evaluation, so
    /// an `Ok` return means the facts survive a crash at any later
    /// point; a [`EngineError::Storage`] return means the batch was
    /// neither logged nor applied.
    ///
    /// # Errors
    ///
    /// Rejects unknown or non-`.input` relations and wrong-arity tuples;
    /// propagates WAL failures and runtime errors from re-evaluation.
    pub fn insert_facts(
        &mut self,
        rel: &str,
        rows: &[Vec<Value>],
        tel: Option<&Telemetry>,
    ) -> Result<UpdateReport, EngineError> {
        self.insert_facts_deadline(rel, rows, None, tel)
    }

    /// [`Self::insert_facts`] with a per-request deadline. Evaluation is
    /// never aborted mid-way (that would leave downstream strata stale);
    /// instead [`UpdateReport::deadline_exceeded`] is set when the
    /// deadline elapsed, and the caller decides how to report it.
    ///
    /// # Errors
    ///
    /// As [`Self::insert_facts`].
    pub fn insert_facts_deadline(
        &mut self,
        rel: &str,
        rows: &[Vec<Value>],
        deadline: Option<Instant>,
        tel: Option<&Telemetry>,
    ) -> Result<UpdateReport, EngineError> {
        let _span = tel.map(|t| t.tracer.span("phase:serve:update"));
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        // Validate before logging, so the WAL only ever holds batches
        // the engine would accept on replay.
        self.validate_batch(rel, rows)?;
        if let Some(p) = &mut self.persistence {
            // WAL-then-evaluate: nothing is acknowledged (or applied)
            // unless it is recoverable first.
            if let Err(e) = p.wal.append(rel, rows) {
                self.note_storage_failure(&e.to_string());
                return Err(e.into());
            }
        }
        let report = self.insert_internal(rel, rows, deadline, tel)?;
        self.maybe_auto_snapshot(tel);
        Ok(report)
    }

    /// Structural checks shared by the insert and retract serving paths
    /// (pre-WAL) and their replay twins: the relation must exist, be
    /// `.input`, and every row must have its arity.
    fn validate_batch(&self, rel: &str, rows: &[Vec<Value>]) -> Result<(), EvalError> {
        let meta = self
            .ram
            .relation_by_name(rel)
            .ok_or_else(|| EvalError::new(format!("unknown relation `{rel}`")))?;
        if !meta.is_input {
            return Err(EvalError::new(format!(
                "relation `{rel}` is not declared `.input`"
            )));
        }
        for row in rows {
            if row.len() != meta.arity {
                return Err(EvalError::new(format!(
                    "tuple for `{rel}` has {} values, expected {}",
                    row.len(),
                    meta.arity
                )));
            }
        }
        Ok(())
    }

    /// Applies one validated batch: staging, delta restart, fallback.
    /// Does *not* touch the WAL — the serving path appends first, the
    /// recovery path replays from it.
    fn insert_internal(
        &mut self,
        rel: &str,
        rows: &[Vec<Value>],
        deadline: Option<Instant>,
        tel: Option<&Telemetry>,
    ) -> Result<UpdateReport, EvalError> {
        self.validate_batch(rel, rows)?;
        let meta = self.ram.relation_by_name(rel).expect("validated above");
        let target = meta.id;
        let upd = self.ram.upd_of(target);

        let mut encoded = Vec::with_capacity(rows.len());
        {
            let mut symbols = self.db.symbols_wr();
            for row in rows {
                encoded.push(
                    row.iter()
                        .map(|v| v.encode(&mut symbols))
                        .collect::<Vec<RamDomain>>(),
                );
            }
        }

        // Start a fresh staging cycle: `upd_` relations hold exactly the
        // tuples that became visible during *this* batch.
        for &u in &self.all_upds {
            self.db.wr(u).clear();
        }
        let prov = self.db.provenance();
        let mut fresh = 0u64;
        for t in encoded {
            let mut rel_wr = self.db.wr(target);
            if rel_wr.insert(&t) {
                if prov {
                    rel_wr.record_annotation(&t, 0, crate::database::RULE_INPUT);
                }
                drop(rel_wr);
                fresh += 1;
                if let Some(u) = upd {
                    self.db.wr(u).insert(&t);
                }
                self.extra_facts.push((target, t));
            }
        }
        self.counters
            .update_tuples
            .fetch_add(fresh, Ordering::Relaxed);
        let mut report = UpdateReport {
            inserted: fresh,
            ..UpdateReport::default()
        };
        if fresh == 0 {
            report.deadline_exceeded = deadline.is_some_and(|d| Instant::now() > d);
            return Ok(report);
        }

        // `changed`: gained tuples this cycle, staged in `upd_` unless
        // also `rebuilt`. `rebuilt`: recomputed from scratch, so its
        // `upd_` staging is empty and readers cannot update incrementally.
        let n = self.ram.relations.len();
        let mut changed = vec![false; n];
        let mut rebuilt = vec![false; n];
        changed[target.0] = true;
        if upd.is_none() {
            rebuilt[target.0] = true; // eqrel input: no staging sibling
        }

        for i in 0..self.ram.strata.len() {
            let s = &self.ram.strata[i];
            let hit = |ids: &[RelId], flags: &[bool]| ids.iter().any(|r| flags[r.0]);
            let affected = hit(&s.defines, &changed)
                || hit(&s.pos_reads, &changed)
                || hit(&s.neg_agg_reads, &changed);
            if !affected {
                continue;
            }
            let fallback = s.update.is_none()
                || hit(&s.neg_agg_reads, &changed)
                || hit(&s.pos_reads, &rebuilt)
                || hit(&s.defines, &rebuilt);
            if fallback {
                self.recompute_stratum(i, tel)?;
                for d in &self.ram.strata[i].defines {
                    changed[d.0] = true;
                    rebuilt[d.0] = true;
                }
                report.full_fallbacks += 1;
            } else {
                let stmt = s.update.as_ref().expect("checked by fallback condition");
                let tree = itree::build_stmt(&self.ram, &self.config, stmt);
                let mut interp = Interpreter::new(&self.ram, &self.db, self.config);
                if let Some(t) = tel {
                    interp.attach_telemetry(t);
                }
                interp.run(&tree)?;
                self.counters
                    .absorb_parallel(interp.parallel_report().as_ref());
                for d in &s.defines {
                    if let Some(u) = self.ram.upd_of(*d) {
                        if !self.db.rd(u).is_empty() {
                            changed[d.0] = true;
                        }
                    }
                }
                report.strata_rerun += 1;
            }
        }

        self.counters
            .strata_rerun
            .fetch_add(report.strata_rerun, Ordering::Relaxed);
        self.counters
            .full_fallbacks
            .fetch_add(report.full_fallbacks, Ordering::Relaxed);
        report.deadline_exceeded = deadline.is_some_and(|d| Instant::now() > d);
        Ok(report)
    }

    /// Retracts a batch of facts from an `.input` relation and repairs
    /// all downstream strata (delete-and-re-derive; see the module docs).
    ///
    /// When the engine is durable, the batch is appended to the WAL as a
    /// delete record *before* evaluation, so an `Ok` return means the
    /// retraction survives a crash at any later point.
    ///
    /// # Errors
    ///
    /// Rejects unknown or non-`.input` relations and wrong-arity tuples;
    /// propagates WAL failures and runtime errors from re-evaluation.
    pub fn retract_facts(
        &mut self,
        rel: &str,
        rows: &[Vec<Value>],
        tel: Option<&Telemetry>,
    ) -> Result<RetractReport, EngineError> {
        self.retract_facts_deadline(rel, rows, None, tel)
    }

    /// [`Self::retract_facts`] with a per-request deadline; like
    /// updates, retraction commits in full and only flags the overrun.
    ///
    /// # Errors
    ///
    /// As [`Self::retract_facts`].
    pub fn retract_facts_deadline(
        &mut self,
        rel: &str,
        rows: &[Vec<Value>],
        deadline: Option<Instant>,
        tel: Option<&Telemetry>,
    ) -> Result<RetractReport, EngineError> {
        let _span = tel.map(|t| t.tracer.span("phase:serve:retract"));
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.retracts.fetch_add(1, Ordering::Relaxed);
        self.validate_batch(rel, rows)?;
        if let Some(p) = &mut self.persistence {
            if let Err(e) = p.wal.append_delete(rel, rows) {
                self.note_storage_failure(&e.to_string());
                return Err(e.into());
            }
        }
        let report = self.retract_internal(rel, rows, deadline, tel)?;
        self.maybe_auto_snapshot(tel);
        Ok(report)
    }

    /// Applies one validated retraction batch: DRed-style over-delete of
    /// the derived cone, erase, then re-derivation of the survivors.
    /// Does *not* touch the WAL — the serving path appends first, the
    /// recovery path replays from it.
    ///
    /// The three phases:
    ///
    /// 1. **Cone** — with the doomed tuples staged in `upd_target` and
    ///    the database *unmutated*, each affected monotone stratum runs
    ///    its deletion-mode twin statement
    ///    ([`stir_ram::deletion::deletion_stmt`]): every derived tuple
    ///    with at least one derivation touching a removed tuple
    ///    accumulates in its `upd_` relation. Strata behind negation,
    ///    aggregation, eqrel heads, opaque (auto-increment) heads, or a
    ///    rebuilt upstream stratum are planned for full recomputation
    ///    instead, exactly like the insert path.
    /// 2. **Erase** — the doomed tuples and every collected cone leave
    ///    their relations. All `upd_` staging is then cleared: it holds
    ///    *deleted* tuples, which a downstream insertion-mode statement
    ///    would otherwise happily treat as new.
    /// 3. **Re-derive** — bottom-up again: fallback strata recompute
    ///    from scratch; incremental strata re-admit each cone member
    ///    that is still a ground fact or still one-step derivable
    ///    ([`crate::rederive::derivable`]) from the post-deletion
    ///    database, then run the *normal* update statement so restored
    ///    seeds propagate (within-stratum recursion included). Skipping
    ///    the statement when no seed survives is sound: any truly
    ///    derivable cone member of minimal derivation height has all its
    ///    premises outside the cone, so it would have been a seed.
    fn retract_internal(
        &mut self,
        rel: &str,
        rows: &[Vec<Value>],
        deadline: Option<Instant>,
        tel: Option<&Telemetry>,
    ) -> Result<RetractReport, EvalError> {
        self.validate_batch(rel, rows)?;
        let meta = self.ram.relation_by_name(rel).expect("validated above");
        let target = meta.id;
        let upd = self.ram.upd_of(target);

        // Encode, dedup, and keep only tuples actually present. A row
        // naming a never-interned symbol cannot be present.
        let mut doomed: Vec<Vec<RamDomain>> = Vec::new();
        {
            let symbols = self.db.symbols_rd();
            'rows: for row in rows {
                let mut t = Vec::with_capacity(row.len());
                for v in row {
                    match v.encode_existing(&symbols) {
                        Some(bits) => t.push(bits),
                        None => continue 'rows,
                    }
                }
                doomed.push(t);
            }
        }
        doomed.sort_unstable();
        doomed.dedup();
        {
            let rel_rd = self.db.rd(target);
            doomed.retain(|t| rel_rd.contains(t));
        }
        self.counters
            .retract_tuples
            .fetch_add(doomed.len() as u64, Ordering::Relaxed);
        let mut report = RetractReport {
            retracted: doomed.len() as u64,
            ..RetractReport::default()
        };
        if doomed.is_empty() {
            report.deadline_exceeded = deadline.is_some_and(|d| Instant::now() > d);
            return Ok(report);
        }

        // The retracted rows stop being ground: a fallback replay (or a
        // recovery that loads this state from a snapshot) must not
        // resurrect them.
        self.ram
            .facts
            .retain(|(rid, t)| *rid != target || doomed.binary_search(t).is_err());
        self.extra_facts
            .retain(|(rid, t)| *rid != target || doomed.binary_search(t).is_err());

        // ---- Phase 1: collect the over-delete cone (DB unmutated). ----
        for &u in &self.all_upds {
            self.db.wr(u).clear();
        }
        if let Some(u) = upd {
            let mut w = self.db.wr(u);
            for t in &doomed {
                w.insert(t);
            }
        }
        let n = self.ram.relations.len();
        let mut changed = vec![false; n];
        let mut rebuilt = vec![false; n];
        changed[target.0] = true;
        if upd.is_none() {
            rebuilt[target.0] = true; // eqrel input: no staging sibling
        }

        #[derive(Clone, Copy, PartialEq)]
        enum Plan {
            Untouched,
            Incremental,
            Fallback,
        }
        let strata = self.ram.strata.len();
        let mut plan = vec![Plan::Untouched; strata];
        // Per incremental stratum: each defined relation's cone.
        let mut cones: Vec<Vec<(RelId, Vec<Vec<RamDomain>>)>> = vec![Vec::new(); strata];

        for i in 0..strata {
            let s = &self.ram.strata[i];
            let hit = |ids: &[RelId], flags: &[bool]| ids.iter().any(|r| flags[r.0]);
            let affected = hit(&s.defines, &changed)
                || hit(&s.pos_reads, &changed)
                || hit(&s.neg_agg_reads, &changed);
            if !affected {
                continue;
            }
            // A head whose provenance plan cannot be re-matched (opaque
            // auto-increment values, or no plan at all) defeats the
            // one-step derivability check of phase 3.
            let opaque = s.defines.iter().any(|d| {
                let mut rules = self
                    .ram
                    .prov
                    .rules
                    .iter()
                    .filter(|r| r.head == *d)
                    .peekable();
                rules.peek().is_none() || rules.any(|r| r.opaque || r.stmt.is_none())
            });
            let fallback = self.config.provenance // recompute re-annotates exactly
                || s.update.is_none()
                || opaque
                || hit(&s.neg_agg_reads, &changed)
                || hit(&s.pos_reads, &rebuilt)
                || hit(&s.defines, &rebuilt);
            let del = if fallback {
                None
            } else {
                stir_ram::deletion::deletion_stmt(&self.ram, i)
            };
            match del {
                None => {
                    plan[i] = Plan::Fallback;
                    for d in &self.ram.strata[i].defines {
                        changed[d.0] = true;
                        rebuilt[d.0] = true;
                    }
                    report.full_fallbacks += 1;
                }
                Some(stmt) => {
                    let tree = itree::build_stmt(&self.ram, &self.config, &stmt);
                    let mut interp = Interpreter::new(&self.ram, &self.db, self.config);
                    if let Some(t) = tel {
                        interp.attach_telemetry(t);
                    }
                    interp.run(&tree)?;
                    self.counters
                        .absorb_parallel(interp.parallel_report().as_ref());
                    let mut stratum_cones: Vec<(RelId, Vec<Vec<RamDomain>>)> = Vec::new();
                    let mut cone_total = 0usize;
                    let mut live_total = 0usize;
                    for d in &self.ram.strata[i].defines {
                        let u = self.ram.upd_of(*d).expect("deletion_stmt requires upd");
                        let cone = self.db.rd(u).to_sorted_tuples();
                        cone_total += cone.len();
                        live_total += self.db.rd(*d).len();
                        stratum_cones.push((*d, cone));
                    }
                    // Cost-based demotion: when the deletion wave swallows
                    // most of a non-trivial stratum, erasing and re-checking
                    // the cone tuple by tuple costs more than recomputing
                    // the stratum outright. Tiny strata stay incremental —
                    // either path is cheap and the counters stay stable.
                    if live_total > 1024 && cone_total * 2 > live_total {
                        plan[i] = Plan::Fallback;
                        for d in &self.ram.strata[i].defines {
                            changed[d.0] = true;
                            rebuilt[d.0] = true;
                        }
                        report.full_fallbacks += 1;
                    } else {
                        plan[i] = Plan::Incremental;
                        report.strata_rerun += 1;
                        for (d, cone) in &stratum_cones {
                            if !cone.is_empty() {
                                changed[d.0] = true;
                            }
                        }
                        cones[i] = stratum_cones;
                    }
                }
            }
        }

        // ---- Phase 2: erase the doomed tuples and the cones. ----
        let prov = self.db.provenance();
        if upd.is_none() {
            // An eqrel input cannot erase a single pair soundly (the
            // closure may re-imply it); rebuild it from the surviving
            // ground facts and let insertion re-close it.
            self.db.wr(target).clear();
            for (rid, t) in self.ram.facts.iter().chain(self.extra_facts.iter()) {
                if *rid == target {
                    let mut w = self.db.wr(target);
                    if w.insert(t) && prov {
                        w.record_annotation(t, 0, crate::database::RULE_INPUT);
                    }
                }
            }
        } else {
            let mut w = self.db.wr(target);
            for t in &doomed {
                w.erase(t);
            }
        }
        for i in 0..strata {
            if plan[i] == Plan::Incremental {
                for (d, cone) in &cones[i] {
                    let mut w = self.db.wr(*d);
                    for t in cone {
                        w.erase(t);
                    }
                }
            }
        }
        // Phase 1 left doomed tuples and cones staged in `upd_`; an
        // insertion-mode statement in phase 3 would consume them as if
        // they were fresh inserts. Restart the staging from empty.
        for &u in &self.all_upds {
            self.db.wr(u).clear();
        }

        // ---- Phase 3: re-derive survivors, bottom-up. ----
        for i in 0..strata {
            match plan[i] {
                Plan::Untouched => {}
                Plan::Fallback => self.recompute_stratum(i, tel)?,
                Plan::Incremental => {
                    let mut seeded = false;
                    for (d, cone) in &cones[i] {
                        if cone.is_empty() {
                            continue;
                        }
                        // Ground facts of `d` (an `.input` relation can
                        // also be a rule head) survive unconditionally.
                        let ground: std::collections::HashSet<&[RamDomain]> = self
                            .ram
                            .facts
                            .iter()
                            .chain(self.extra_facts.iter())
                            .filter(|(rid, _)| rid == d)
                            .map(|(_, t)| t.as_slice())
                            .collect();
                        let u = self.ram.upd_of(*d).expect("incremental plan");
                        // The batch checker shares the per-rule matching
                        // state across the whole cone; seeds go in only
                        // after it returns, which is the pure DRed
                        // re-derive step (the insertion statement below
                        // restores multi-step survivors from the seeds).
                        let derivable =
                            crate::rederive::derivable_batch(&self.ram, &self.db, *d, cone);
                        for (t, ok) in cone.iter().zip(derivable) {
                            if ok || ground.contains(t.as_slice()) {
                                self.db.wr(*d).insert(t);
                                self.db.wr(u).insert(t);
                                report.rederived += 1;
                                seeded = true;
                            }
                        }
                    }
                    if seeded {
                        // The *insertion* statement: restored seeds
                        // propagate to their within-stratum consequences,
                        // and its `upd_` staging feeds downstream strata.
                        let s = &self.ram.strata[i];
                        let stmt = s.update.as_ref().expect("incremental plan");
                        let tree = itree::build_stmt(&self.ram, &self.config, stmt);
                        let mut interp = Interpreter::new(&self.ram, &self.db, self.config);
                        if let Some(t) = tel {
                            interp.attach_telemetry(t);
                        }
                        interp.run(&tree)?;
                        self.counters
                            .absorb_parallel(interp.parallel_report().as_ref());
                    }
                }
            }
        }

        self.counters
            .strata_rerun
            .fetch_add(report.strata_rerun, Ordering::Relaxed);
        self.counters
            .full_fallbacks
            .fetch_add(report.full_fallbacks, Ordering::Relaxed);
        self.counters
            .rederived
            .fetch_add(report.rederived, Ordering::Relaxed);
        report.deadline_exceeded = deadline.is_some_and(|d| Instant::now() > d);
        Ok(report)
    }

    /// Writes a snapshot and truncates the WAL. The snapshot is the new
    /// recovery baseline: every previously logged batch is covered by
    /// it, so the log restarts empty.
    ///
    /// # Errors
    ///
    /// Fails when the engine has no data directory, and on snapshot or
    /// WAL I/O errors (the previous snapshot stays in place; on a WAL
    /// truncation failure replay after the *new* snapshot merely
    /// re-inserts duplicates, which is idempotent).
    pub fn snapshot(&mut self, tel: Option<&Telemetry>) -> Result<SnapshotStats, EngineError> {
        let _span = tel.map(|t| t.tracer.span("phase:serve:snapshot"));
        let t_snap = self.serve_metrics.start();
        let Some(p) = &mut self.persistence else {
            return Err(StorageError::new("no data directory configured").into());
        };
        let stats = if self.config.storage == StorageBackend::Disk {
            // Disk engines snapshot in the v2 run format so the next
            // cold start maps the file instead of rebuilding indexes.
            // The live indexes keep serving off their current base (the
            // renamed-over file stays readable through its open handle)
            // plus overlays; only `.compact` rebases them.
            snap2::write_snapshot_v2(
                &p.snapshot_path(),
                p.fp,
                &self.ram,
                &self.db,
                &self.extra_facts,
                FaultPoint::SnapshotWrite,
            )?
        } else {
            wal::write_snapshot(
                &p.snapshot_path(),
                p.fp,
                &self.ram,
                &self.db,
                &self.extra_facts,
            )?
        };
        p.wal.reset()?;
        p.batches_since_snapshot = 0;
        p.snapshot_writes += 1;
        p.snapshot_tuples += stats.tuples;
        self.serve_metrics
            .observe(&self.serve_metrics.snapshot_write, t_snap);
        Ok(stats)
    }

    /// Rewrites the database as a fresh v2 snapshot — folding every
    /// disk-backed index's delta overlay into new base runs — truncates
    /// the WAL, and (under disk storage) rebases the live indexes onto
    /// the fresh file, emptying their overlays and releasing the old
    /// snapshot's pages. The write is atomic (temp + fsync + rename,
    /// gated by the `compact_write` fault point); a failure leaves the
    /// previous snapshot and the live overlays untouched.
    ///
    /// Under memory storage this still writes a v2 file (the format is
    /// portable), so a later restart with `--storage disk` cold-starts
    /// off it; there is just nothing to rebase.
    ///
    /// # Errors
    ///
    /// Fails when the engine has no data directory, and on snapshot or
    /// WAL I/O errors.
    pub fn compact(&mut self, tel: Option<&Telemetry>) -> Result<SnapshotStats, EngineError> {
        let _span = tel.map(|t| t.tracer.span("phase:serve:compact"));
        let t_snap = self.serve_metrics.start();
        let Some(p) = &mut self.persistence else {
            return Err(StorageError::new("no data directory configured").into());
        };
        let stats = snap2::write_snapshot_v2(
            &p.snapshot_path(),
            p.fp,
            &self.ram,
            &self.db,
            &self.extra_facts,
            FaultPoint::CompactWrite,
        )?;
        p.wal.reset()?;
        p.batches_since_snapshot = 0;
        p.snapshot_writes += 1;
        p.snapshot_tuples += stats.tuples;
        if self.config.storage == StorageBackend::Disk {
            let snap =
                snap2::open_snapshot_v2(&p.snapshot_path(), p.fp, disk::cache_budget_from_env())?;
            for srel in &snap.relations {
                if srel.runs.is_empty() {
                    continue;
                }
                let meta = self.ram.relation_by_name(&srel.name).ok_or_else(|| {
                    StorageError::new(format!(
                        "compacted snapshot names unknown relation `{}`",
                        srel.name
                    ))
                })?;
                let mut rel = self.db.wr(meta.id);
                for k in 0..srel.runs.len() {
                    let base = snap.base_run(srel, k);
                    if let Some(di) = rel.index_mut(k).as_any_mut().downcast_mut::<DiskIndex>() {
                        di.rebase(base);
                    }
                }
            }
            self.run_file = Some(snap.file);
        }
        self.serve_metrics
            .observe(&self.serve_metrics.snapshot_write, t_snap);
        Ok(stats)
    }

    /// Auto-snapshot bookkeeping after each accepted batch. A failed
    /// auto-snapshot is logged and retried after the next batch; the
    /// insert it rode on is already durable in the WAL.
    fn maybe_auto_snapshot(&mut self, tel: Option<&Telemetry>) {
        let Some(p) = &mut self.persistence else {
            return;
        };
        p.batches_since_snapshot += 1;
        let due = p
            .snapshot_every
            .is_some_and(|every| p.batches_since_snapshot >= every);
        if due {
            if let Err(e) = self.snapshot(tel) {
                if let Some(t) = tel {
                    t.logger
                        .log(LogLevel::Warn, &format!("auto-snapshot failed: {e}"));
                }
                // A failed snapshot is a storage failure like any
                // other: probe immediately and degrade if persistent.
                self.note_storage_failure(&e.to_string());
            }
        }
    }

    /// Whether the engine persists to a data directory.
    pub fn is_durable(&self) -> bool {
        self.persistence.is_some()
    }

    /// Flushes and fsyncs the WAL regardless of the durability policy
    /// (used at graceful shutdown). A no-op without a data directory.
    ///
    /// # Errors
    ///
    /// Propagates WAL I/O errors.
    pub fn flush_wal(&mut self) -> Result<(), EngineError> {
        if let Some(p) = &mut self.persistence {
            p.wal.sync()?;
        }
        Ok(())
    }

    /// Clears a stratum's relations, replays their ground and inserted
    /// facts, and re-runs the original stratum statement. Correct at any
    /// point of the bottom-up walk because every upstream relation is
    /// already fully up to date when its readers are visited.
    fn recompute_stratum(&self, i: usize, tel: Option<&Telemetry>) -> Result<(), EvalError> {
        let mut defined = vec![false; self.ram.relations.len()];
        for d in &self.ram.strata[i].defines {
            defined[d.0] = true;
            self.db.wr(*d).clear();
            for a in &self.aux_of[d.0] {
                self.db.wr(*a).clear();
            }
        }
        let prov = self.db.provenance();
        for (rid, t) in self.ram.facts.iter().chain(self.extra_facts.iter()) {
            if defined[rid.0] {
                let mut rel = self.db.wr(*rid);
                if rel.insert(t) && prov {
                    rel.record_annotation(t, 0, crate::database::RULE_INPUT);
                }
            }
        }
        let tree = itree::build_stmt(&self.ram, &self.config, self.ram.stratum_stmt(i));
        let mut interp = Interpreter::new(&self.ram, &self.db, self.config);
        if let Some(t) = tel {
            interp.attach_telemetry(t);
        }
        let res = interp.run(&tree);
        self.counters
            .absorb_parallel(interp.parallel_report().as_ref());
        res
    }

    /// Answers a partially-bound pattern against the resident database.
    ///
    /// `pattern[i] = Some(v)` binds column `i` to `v`; `None` leaves it
    /// free. Rows come back in the stored order of the chosen index. A
    /// bound symbol that was never interned yields an empty result.
    ///
    /// # Errors
    ///
    /// Rejects unknown relations, auxiliary (`delta_`/`new_`/`upd_`)
    /// relations, and wrong-arity patterns.
    pub fn query(
        &self,
        rel: &str,
        pattern: &[Option<Value>],
        tel: Option<&Telemetry>,
    ) -> Result<Vec<Vec<Value>>, EvalError> {
        self.query_deadline(rel, pattern, None, tel)
    }

    /// [`Self::query`] with a per-request deadline. Unlike updates,
    /// queries are read-only, so an elapsed deadline aborts the scan
    /// outright — nothing is poisoned — and reports an error.
    ///
    /// # Errors
    ///
    /// As [`Self::query`], plus a `deadline exceeded` error when the
    /// scan ran past `deadline`.
    pub fn query_deadline(
        &self,
        rel: &str,
        pattern: &[Option<Value>],
        deadline: Option<Instant>,
        tel: Option<&Telemetry>,
    ) -> Result<Vec<Vec<Value>>, EvalError> {
        let _span = tel.map(|t| t.tracer.span("phase:serve:query"));
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let meta = self
            .ram
            .relation_by_name(rel)
            .ok_or_else(|| EvalError::new(format!("unknown relation `{rel}`")))?;
        if meta.role != Role::Standard {
            return Err(EvalError::new(format!(
                "relation `{rel}` is internal and cannot be queried"
            )));
        }
        if pattern.len() != meta.arity {
            return Err(EvalError::new(format!(
                "pattern for `{rel}` has {} terms, expected {}",
                pattern.len(),
                meta.arity
            )));
        }
        // Check once up front so an already-elapsed deadline aborts even
        // a tiny scan; the in-loop poll only fires every 4096 tuples.
        if deadline.is_some_and(|d| Instant::now() > d) {
            return Err(EvalError::new("deadline exceeded"));
        }

        let rel_guard = self.db.rd(meta.id);
        if meta.arity == 0 {
            let rows: Vec<Vec<Value>> = if rel_guard.is_empty() {
                Vec::new()
            } else {
                vec![Vec::new()]
            };
            self.counters
                .query_rows
                .fetch_add(rows.len() as u64, Ordering::Relaxed);
            return Ok(rows);
        }

        let symbols = self.db.symbols_rd();
        let mut bound: Vec<Option<RamDomain>> = Vec::with_capacity(pattern.len());
        for v in pattern {
            match v {
                None => bound.push(None),
                Some(val) => match val.encode_existing(&symbols) {
                    Some(bits) => bound.push(Some(bits)),
                    None => return Ok(Vec::new()),
                },
            }
        }

        // The index whose order starts with the longest run of bound
        // columns turns the most bindings into range bounds; anything not
        // covered is post-filtered.
        let mut best = (0usize, 0usize);
        for k in 0..rel_guard.index_count() {
            let cols = rel_guard.index(k).order().columns();
            let m = cols.iter().take_while(|&&c| bound[c].is_some()).count();
            if m > best.1 {
                best = (k, m);
            }
        }
        let (k, prefix) = best;
        let idx = rel_guard.index(k);
        let order = idx.order();
        let arity = meta.arity;
        // The comparator-based legacy index keeps tuples un-permuted: its
        // range bounds and yielded tuples are in source order, so bound
        // values land at their source positions and no decode happens.
        let source_layout = idx.stores_source_order();
        let mut it = if prefix == 0 {
            idx.scan()
        } else {
            let mut lo = vec![RamDomain::MIN; arity];
            let mut hi = vec![RamDomain::MAX; arity];
            for (pos, &c) in order.columns().iter().enumerate().take(prefix) {
                let bits = bound[c].expect("prefix columns are bound");
                let at = if source_layout { c } else { pos };
                lo[at] = bits;
                hi[at] = bits;
            }
            idx.range(&lo, &hi)
        };

        let mut out = Vec::new();
        let mut src = vec![0; arity];
        let mut scanned = 0u32;
        while let Some(stored) = it.next_tuple() {
            // Poll the clock every 4096 tuples: cheap enough to leave on,
            // frequent enough that a runaway scan stops promptly.
            scanned = scanned.wrapping_add(1);
            if scanned & 0xFFF == 0 {
                if let Some(d) = deadline {
                    if Instant::now() > d {
                        return Err(EvalError::new("deadline exceeded"));
                    }
                }
            }
            if source_layout {
                src.copy_from_slice(stored);
            } else {
                order.decode(stored, &mut src);
            }
            if bound
                .iter()
                .zip(&src)
                .all(|(b, &v)| b.is_none_or(|bits| bits == v))
            {
                out.push(src.clone());
            }
        }
        // Which index answered the query depends on the engine mode and
        // the program's search signatures; sorting the encoded tuples
        // makes the row order deterministic across all of them (the same
        // convention `to_sorted_tuples` uses for batch outputs).
        out.sort_unstable();
        let rows: Vec<Vec<Value>> = out
            .iter()
            .map(|src| {
                src.iter()
                    .zip(&meta.attr_types)
                    .map(|(&bits, &ty)| Value::decode(bits, ty, &symbols))
                    .collect()
            })
            .collect();
        self.counters
            .query_rows
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        Ok(rows)
    }

    /// Explains how `row` of relation `rel` was derived, as a
    /// minimal-height proof tree (see [`crate::prov`]).
    ///
    /// Requires the engine to run with
    /// [`InterpreterConfig::provenance`] on; render the result with
    /// [`Self::render_proof`].
    ///
    /// # Errors
    ///
    /// Rejects unknown/internal relations and wrong-arity rows; reports
    /// provenance-off engines and non-derivable facts as evaluation
    /// errors.
    pub fn explain(
        &self,
        rel: &str,
        row: &[Value],
        limits: ExplainLimits,
        tel: Option<&Telemetry>,
    ) -> Result<ProofNode, EvalError> {
        let _span = tel.map(|t| t.tracer.span("phase:serve:explain"));
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters
            .explain_requests
            .fetch_add(1, Ordering::Relaxed);
        let meta = self
            .ram
            .relation_by_name(rel)
            .ok_or_else(|| EvalError::new(format!("unknown relation `{rel}`")))?;
        if meta.role != Role::Standard {
            return Err(EvalError::new(format!(
                "relation `{rel}` is internal and cannot be explained"
            )));
        }
        if row.len() != meta.arity {
            return Err(EvalError::new(format!(
                "fact for `{rel}` has {} values, expected {}",
                row.len(),
                meta.arity
            )));
        }
        let mut tuple = Vec::with_capacity(row.len());
        {
            let symbols = self.db.symbols_rd();
            for v in row {
                match v.encode_existing(&symbols) {
                    Some(bits) => tuple.push(bits),
                    // A never-interned symbol cannot be in any relation.
                    None => {
                        let vals: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                        return Err(EvalError::new(format!(
                            "`{rel}({})` is not derivable",
                            vals.join(", ")
                        )));
                    }
                }
            }
        }
        let node = crate::prov::explain(&self.ram, &self.db, meta.id, &tuple, &limits)?;
        self.counters
            .explain_nodes
            .fetch_add(node.size() as u64, Ordering::Relaxed);
        Ok(node)
    }

    /// Renders a proof tree from [`Self::explain`] as an indented text
    /// block (one line per node, premises indented under their rule).
    pub fn render_proof(&self, node: &ProofNode) -> String {
        crate::prov::render_proof(&self.ram, &self.db, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TC: &str = "\
        .decl e(x: number, y: number)\n.input e\n\
        .decl p(x: number, y: number)\n.output p\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";

    fn pairs(rows: &[(i32, i32)]) -> Vec<Vec<Value>> {
        rows.iter()
            .map(|&(a, b)| vec![Value::Number(a), Value::Number(b)])
            .collect()
    }

    fn resident(src: &str, inputs: &InputData) -> ResidentEngine {
        ResidentEngine::from_source(src, InterpreterConfig::optimized(), inputs, None)
            .expect("builds")
    }

    #[test]
    fn resident_engine_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<ResidentEngine>();
    }

    #[test]
    fn incremental_chain_extension_matches_batch() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2), (2, 3)]));
        let mut r = resident(TC, &inputs);
        assert_eq!(r.outputs()["p"], pairs(&[(1, 2), (1, 3), (2, 3)]));

        let report = r
            .insert_facts("e", &pairs(&[(3, 4)]), None)
            .expect("updates");
        assert_eq!(report.inserted, 1);
        assert!(report.strata_rerun >= 1);
        assert_eq!(
            report.full_fallbacks, 0,
            "monotone program never falls back"
        );
        assert_eq!(
            r.outputs()["p"],
            pairs(&[(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)])
        );
    }

    #[test]
    fn duplicate_inserts_are_absorbed() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let mut r = resident(TC, &inputs);
        let report = r
            .insert_facts("e", &pairs(&[(1, 2)]), None)
            .expect("updates");
        assert_eq!(report.inserted, 0);
        assert_eq!(report.strata_rerun + report.full_fallbacks, 0);
    }

    #[test]
    fn negation_reader_falls_back_and_retracts() {
        let src = "\
            .decl a(x: number)\n.input a\n\
            .decl b(x: number)\n.input b\n\
            .decl r(x: number)\n.output r\n\
            r(x) :- a(x), !b(x).\n";
        let mut inputs = InputData::new();
        inputs.insert(
            "a".into(),
            vec![vec![Value::Number(1)], vec![Value::Number(2)]],
        );
        inputs.insert("b".into(), vec![vec![Value::Number(2)]]);
        let mut r = resident(src, &inputs);
        assert_eq!(r.outputs()["r"], vec![vec![Value::Number(1)]]);

        // Growing the negated relation must *remove* a derived tuple,
        // which only the full-recompute fallback can do.
        let report = r
            .insert_facts("b", &[vec![Value::Number(1)]], None)
            .expect("updates");
        assert!(report.full_fallbacks >= 1);
        assert!(r.outputs()["r"].is_empty());
    }

    #[test]
    fn queries_use_bound_prefixes_and_post_filters() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2), (2, 3), (2, 4)]));
        let mut r = resident(TC, &inputs);
        r.insert_facts("e", &pairs(&[(4, 5)]), None)
            .expect("updates");

        let from2 = r
            .query("p", &[Some(Value::Number(2)), None], None)
            .expect("queries");
        assert_eq!(from2.len(), 3); // (2,3) (2,4) (2,5)
        let exact = r
            .query("p", &[Some(Value::Number(1)), Some(Value::Number(5))], None)
            .expect("queries");
        assert_eq!(exact, pairs(&[(1, 5)]));
        let all = r.query("e", &[None, None], None).expect("queries");
        assert_eq!(all.len(), 4);
        let to3 = r
            .query("p", &[None, Some(Value::Number(3))], None)
            .expect("queries");
        assert_eq!(to3.len(), 2); // (1,3) (2,3)
    }

    #[test]
    fn unknown_symbols_match_nothing_without_interning() {
        let src = "\
            .decl n(s: symbol)\n.input n\n\
            .decl out(s: symbol)\n.output out\n\
            out(s) :- n(s).\n";
        let mut inputs = InputData::new();
        inputs.insert("n".into(), vec![vec![Value::Symbol("ada".into())]]);
        let r = resident(src, &inputs);
        let rows = r
            .query("out", &[Some(Value::Symbol("ghost".into()))], None)
            .expect("queries");
        assert!(rows.is_empty());
        let rows = r
            .query("out", &[Some(Value::Symbol("ada".into()))], None)
            .expect("queries");
        assert_eq!(rows, vec![vec![Value::Symbol("ada".into())]]);
    }

    #[test]
    fn rejects_bad_requests() {
        let r = resident(TC, &InputData::new());
        assert!(r.query("ghost", &[], None).is_err());
        assert!(r.query("p", &[None], None).is_err());
        assert!(r.query("upd_p", &[None, None], None).is_err());
        let mut r = r;
        assert!(r.insert_facts("p", &pairs(&[(1, 2)]), None).is_err());
        assert!(r
            .insert_facts("e", &[vec![Value::Number(1)]], None)
            .is_err());
    }

    #[test]
    fn counters_accumulate() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let mut r = resident(TC, &inputs);
        r.insert_facts("e", &pairs(&[(2, 3)]), None)
            .expect("updates");
        r.query("p", &[None, None], None).expect("queries");
        let s = r.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.update_tuples, 1);
        assert_eq!(s.query_rows, 3);
        assert!(s.strata_rerun >= 1);
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stir-resident-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open_dir(
        src: &str,
        config: InterpreterConfig,
        inputs: &InputData,
        dir: &Path,
        opts: PersistOptions,
    ) -> (ResidentEngine, RecoveryReport) {
        let engine = crate::engine::Engine::from_source(src).expect("compiles");
        ResidentEngine::open(engine, config, inputs, dir, opts, None).expect("opens")
    }

    #[test]
    fn wal_replay_recovers_acked_inserts() {
        let dir = tmpdir("wal-replay");
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let opts = PersistOptions::default();

        let (mut r, rec) = open_dir(TC, InterpreterConfig::optimized(), &inputs, &dir, opts);
        assert_eq!(rec, RecoveryReport::default());
        r.insert_facts("e", &pairs(&[(2, 3)]), None)
            .expect("inserts");
        r.insert_facts("e", &pairs(&[(3, 4)]), None)
            .expect("inserts");
        let before = r.outputs();
        drop(r); // simulated crash: no snapshot, no graceful shutdown

        let (r, rec) = open_dir(TC, InterpreterConfig::optimized(), &inputs, &dir, opts);
        assert!(!rec.snapshot_loaded);
        assert_eq!(rec.replayed_batches, 2);
        assert_eq!(rec.replayed_tuples, 2);
        assert_eq!(rec.skipped_batches, 0);
        assert_eq!(r.outputs(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_wal_and_restores() {
        let dir = tmpdir("snapshot");
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let opts = PersistOptions::default();

        let (mut r, _) = open_dir(TC, InterpreterConfig::optimized(), &inputs, &dir, opts);
        r.insert_facts("e", &pairs(&[(2, 3)]), None)
            .expect("inserts");
        let stats = r.snapshot(None).expect("snapshots");
        assert!(stats.tuples > 0);
        r.insert_facts("e", &pairs(&[(3, 4)]), None)
            .expect("inserts");
        let before = r.outputs();
        drop(r);

        let (r, rec) = open_dir(TC, InterpreterConfig::optimized(), &inputs, &dir, opts);
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.replayed_batches, 1, "only the post-snapshot suffix");
        assert_eq!(r.outputs(), before);
        assert!(
            r.initial_profile().is_none(),
            "snapshot load skips the initial fixpoint"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshots_are_portable_across_engine_modes() {
        let src = "\
            .decl n(s: symbol)\n.input n\n\
            .decl out(s: symbol)\n.output out\n\
            out(s) :- n(s).\n";
        let dir = tmpdir("modes");
        let mut inputs = InputData::new();
        inputs.insert("n".into(), vec![vec![Value::Symbol("ada".into())]]);
        let opts = PersistOptions::default();

        let (mut r, _) = open_dir(src, InterpreterConfig::optimized(), &inputs, &dir, opts);
        r.insert_facts("n", &[vec![Value::Symbol("grace".into())]], None)
            .expect("inserts");
        r.snapshot(None).expect("snapshots");
        let before = r.outputs();
        drop(r);

        // Same data dir, opposite end of the configuration space.
        let (r, rec) = open_dir(src, InterpreterConfig::legacy(), &inputs, &dir, opts);
        assert!(rec.snapshot_loaded);
        assert_eq!(r.outputs(), before);
        let rows = r
            .query("out", &[Some(Value::Symbol("grace".into()))], None)
            .expect("queries");
        assert_eq!(rows.len(), 1, "recovered symbols stay queryable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cold_start_maps_v2_snapshot_and_replays_wal_suffix() {
        let dir = tmpdir("disk-cold");
        let disk = InterpreterConfig::optimized().with_storage(StorageBackend::Disk);
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let opts = PersistOptions::default();

        let (mut r, _) = open_dir(TC, disk, &inputs, &dir, opts);
        r.insert_facts("e", &pairs(&[(2, 3)]), None)
            .expect("inserts");
        r.snapshot(None).expect("snapshots");
        r.insert_facts("e", &pairs(&[(3, 4)]), None)
            .expect("inserts");
        let before = r.outputs();
        drop(r); // simulated crash after the snapshot + one WAL batch

        let (r, rec) = open_dir(TC, disk, &inputs, &dir, opts);
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.replayed_batches, 1, "only the post-snapshot suffix");
        assert!(
            r.initial_profile().is_none(),
            "cold start skips the initial fixpoint"
        );
        assert!(
            r.page_cache_stats().is_some(),
            "disk cold start maps the v2 snapshot"
        );
        assert_eq!(r.outputs(), before);
        let rows = r
            .query("p", &[Some(Value::Number(1)), None], None)
            .expect("queries");
        assert_eq!(rows.len(), 3); // (1,2) (1,3) (1,4)
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_snapshots_are_portable_across_storage_backends() {
        let dir = tmpdir("storage-port");
        let disk = InterpreterConfig::optimized().with_storage(StorageBackend::Disk);
        let mem = InterpreterConfig::optimized().with_storage(StorageBackend::Mem);
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let opts = PersistOptions::default();

        // v1 (mem) snapshot restores under disk storage...
        let (mut r, _) = open_dir(TC, mem, &inputs, &dir, opts);
        r.insert_facts("e", &pairs(&[(2, 3)]), None)
            .expect("inserts");
        r.snapshot(None).expect("snapshots");
        let before = r.outputs();
        drop(r);
        let (mut r, rec) = open_dir(TC, disk, &inputs, &dir, opts);
        assert!(rec.snapshot_loaded);
        assert_eq!(r.outputs(), before);

        // ...and the v2 (disk) snapshot it now writes restores under mem.
        r.insert_facts("e", &pairs(&[(3, 4)]), None)
            .expect("inserts");
        r.snapshot(None).expect("snapshots");
        let before = r.outputs();
        drop(r);
        let (r, rec) = open_dir(TC, mem, &inputs, &dir, opts);
        assert!(rec.snapshot_loaded);
        assert!(
            r.page_cache_stats().is_none(),
            "mem storage materializes the runs instead of mapping them"
        );
        assert_eq!(r.outputs(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_folds_overlays_into_fresh_base_runs() {
        let dir = tmpdir("compact");
        let disk = InterpreterConfig::optimized().with_storage(StorageBackend::Disk);
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let opts = PersistOptions::default();

        let (mut r, _) = open_dir(TC, disk, &inputs, &dir, opts);
        r.insert_facts("e", &pairs(&[(2, 3)]), None)
            .expect("inserts");
        let before = r.outputs();
        let stats = r.compact(None).expect("compacts");
        assert!(stats.tuples > 0);
        assert!(
            r.page_cache_stats().is_some(),
            "compaction rebases onto the fresh file"
        );
        // The live indexes now serve off base runs with empty overlays.
        let p = r.ram.relation_by_name("p").expect("p exists").id;
        {
            let rel = r.db.rd(p);
            for k in 0..rel.index_count() {
                let di = rel
                    .index(k)
                    .as_any()
                    .downcast_ref::<DiskIndex>()
                    .expect("disk index");
                assert!(di.has_base());
                assert_eq!(di.overlay_len(), (0, 0), "overlay folded into the base");
            }
        }
        assert_eq!(r.outputs(), before, "contents unchanged by compaction");

        // Compaction truncated the WAL: a restart replays nothing and
        // serves the same answers straight off the new base runs.
        r.insert_facts("e", &pairs(&[(3, 4)]), None)
            .expect("inserts");
        let before = r.outputs();
        drop(r);
        let (r, rec) = open_dir(TC, disk, &inputs, &dir, opts);
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.replayed_batches, 1, "only the post-compact batch");
        assert_eq!(r.outputs(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_without_data_dir_is_an_error() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let mut r = resident(TC, &inputs);
        assert!(r.compact(None).is_err());
    }

    #[test]
    fn v2_snapshot_with_provenance_recomputes_annotations() {
        let dir = tmpdir("disk-prov");
        let disk = InterpreterConfig::optimized().with_storage(StorageBackend::Disk);
        let mut prov = disk;
        prov.provenance = true;
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2), (2, 3)]));
        let opts = PersistOptions::default();

        // A provenance-off disk engine writes the v2 snapshot...
        let (mut r, _) = open_dir(TC, disk, &inputs, &dir, opts);
        r.insert_facts("e", &pairs(&[(3, 4)]), None)
            .expect("inserts");
        r.snapshot(None).expect("snapshots");
        let before = r.outputs();
        drop(r);

        // ...and a provenance-on restart materializes it, re-runs the
        // fixpoint for annotations, and can serve proof trees.
        let (r, rec) = open_dir(TC, prov, &inputs, &dir, opts);
        assert!(rec.snapshot_loaded);
        assert_eq!(r.outputs(), before);
        let tree = r
            .explain(
                "p",
                &[Value::Number(1), Value::Number(4)],
                ExplainLimits::default(),
                None,
            )
            .expect("explains");
        assert!(r.render_proof(&tree).contains("p(1, 4)"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_v2_snapshot_degrades_to_reevaluation() {
        let dir = tmpdir("disk-corrupt");
        let disk = InterpreterConfig::optimized().with_storage(StorageBackend::Disk);
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let opts = PersistOptions::default();

        let (mut r, _) = open_dir(TC, disk, &inputs, &dir, opts);
        r.insert_facts("e", &pairs(&[(2, 3)]), None)
            .expect("inserts");
        r.snapshot(None).expect("snapshots");
        let before = r.outputs();
        drop(r);

        // Flip one byte in the middle of the run region: the streaming
        // CRC rejects the file and recovery falls back to re-evaluating
        // the program plus the (truncated-at-snapshot) WAL — which is
        // empty here, so only the original inputs survive.
        let snap = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&snap).expect("reads");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap, &bytes).expect("writes");
        let (r, rec) = open_dir(TC, disk, &inputs, &dir, opts);
        assert!(!rec.snapshot_loaded, "corrupt snapshot is not loaded");
        assert_ne!(r.outputs(), before, "post-snapshot insert lost with it");
        assert_eq!(r.outputs()["p"], pairs(&[(1, 2)]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_snapshot_interval_resets_the_wal() {
        let dir = tmpdir("auto");
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let opts = PersistOptions {
            snapshot_interval: Some(2),
            ..PersistOptions::default()
        };

        let (mut r, _) = open_dir(TC, InterpreterConfig::optimized(), &inputs, &dir, opts);
        r.insert_facts("e", &pairs(&[(2, 3)]), None)
            .expect("inserts");
        assert!(!dir.join(SNAPSHOT_FILE).exists(), "below the interval");
        r.insert_facts("e", &pairs(&[(3, 4)]), None)
            .expect("inserts");
        assert!(dir.join(SNAPSHOT_FILE).exists(), "interval reached");
        drop(r);

        let (r, rec) = open_dir(TC, InterpreterConfig::optimized(), &inputs, &dir, opts);
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.replayed_batches, 0, "snapshot covered everything");
        assert_eq!(r.outputs()["p"].len(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn negation_retraction_survives_recovery() {
        // The explicit extra_facts section: a derived tuple in an .input
        // relation must not be replayed as ground after recovery.
        let src = "\
            .decl a(x: number)\n.input a\n\
            .decl b(x: number)\n.input b\n\
            .decl r(x: number)\n.output r\n\
            r(x) :- a(x), !b(x).\n";
        let dir = tmpdir("negation");
        let mut inputs = InputData::new();
        inputs.insert("a".into(), vec![vec![Value::Number(1)]]);
        inputs.insert("b".into(), Vec::new());
        let opts = PersistOptions::default();

        let (mut r, _) = open_dir(src, InterpreterConfig::optimized(), &inputs, &dir, opts);
        r.snapshot(None).expect("snapshots");
        r.insert_facts("b", &[vec![Value::Number(1)]], None)
            .expect("inserts");
        assert!(r.outputs()["r"].is_empty());
        drop(r);

        let (r, _) = open_dir(src, InterpreterConfig::optimized(), &inputs, &dir, opts);
        assert!(
            r.outputs()["r"].is_empty(),
            "retraction holds after snapshot + WAL replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn insert_deadline_sets_flag_but_commits() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let mut r = resident(TC, &inputs);
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let report = r
            .insert_facts_deadline("e", &pairs(&[(2, 3)]), Some(past), None)
            .expect("applies despite deadline");
        assert!(report.deadline_exceeded);
        assert_eq!(report.inserted, 1, "the update still committed");
        assert_eq!(r.outputs()["p"].len(), 3);
    }

    #[test]
    fn query_deadline_aborts_cleanly() {
        // Non-recursive program: large EDB without a quadratic closure.
        let src = "\
            .decl e(x: number, y: number)\n.input e\n\
            .decl p(x: number, y: number)\n.output p\n\
            p(x, y) :- e(x, y).\n";
        let mut inputs = InputData::new();
        // Enough rows that the scan crosses at least one deadline poll.
        inputs.insert(
            "e".into(),
            pairs(&(0..5000).map(|i| (i, i + 1)).collect::<Vec<_>>()),
        );
        let r = resident(src, &inputs);
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let err = r
            .query_deadline("e", &[None, None], Some(past), None)
            .unwrap_err();
        assert!(err.msg.contains("deadline"), "{err:?}");
        // The engine is untouched: the same query without a deadline works.
        assert_eq!(
            r.query("e", &[None, None], None).expect("queries").len(),
            5000
        );
    }

    #[test]
    fn snapshot_without_data_dir_is_an_error() {
        let mut r = resident(TC, &InputData::new());
        assert!(!r.is_durable());
        assert!(matches!(r.snapshot(None), Err(EngineError::Storage(_))));
        r.flush_wal().expect("no-op without persistence");
    }

    #[test]
    fn explain_covers_incremental_derivations() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2), (2, 3)]));
        let mut r = ResidentEngine::from_source(
            TC,
            InterpreterConfig::optimized().with_provenance(),
            &inputs,
            None,
        )
        .expect("builds");
        r.insert_facts("e", &pairs(&[(3, 4)]), None)
            .expect("updates");

        // p(1,4) only exists because of the incrementally inserted edge.
        let node = r
            .explain(
                "p",
                &[Value::Number(1), Value::Number(4)],
                ExplainLimits::default(),
                None,
            )
            .expect("explains");
        assert!(!node.is_input());
        assert!(node.premises.iter().any(|p| p.tuple == vec![3, 4]));
        let rendered = r.render_proof(&node);
        assert!(rendered.contains("p(1, 4)"), "{rendered}");
        assert!(rendered.contains("[input]"), "{rendered}");
        let s = r.stats();
        assert_eq!(s.explain_requests, 1);
        assert!(s.explain_nodes >= node.size() as u64);

        // Non-derivable and never-interned facts report errors, not trees.
        assert!(r
            .explain(
                "p",
                &[Value::Number(9), Value::Number(9)],
                ExplainLimits::default(),
                None,
            )
            .is_err());
    }

    #[test]
    fn explain_rejects_provenance_off_engines() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let r = resident(TC, &inputs);
        let err = r
            .explain(
                "p",
                &[Value::Number(1), Value::Number(2)],
                ExplainLimits::default(),
                None,
            )
            .unwrap_err();
        assert!(err.msg.contains("provenance"), "{err:?}");
    }

    #[test]
    fn provenance_survives_snapshot_recovery_by_recompute() {
        let dir = tmpdir("prov-snap");
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let opts = PersistOptions::default();
        let config = InterpreterConfig::optimized().with_provenance();

        let (mut r, _) = open_dir(TC, config, &inputs, &dir, opts);
        r.insert_facts("e", &pairs(&[(2, 3)]), None)
            .expect("inserts");
        r.snapshot(None).expect("snapshots");
        r.insert_facts("e", &pairs(&[(3, 4)]), None)
            .expect("inserts");
        let before = r.outputs();
        drop(r);

        let (r, rec) = open_dir(TC, config, &inputs, &dir, opts);
        assert!(rec.snapshot_loaded);
        assert_eq!(r.outputs(), before, "recompute-on-recovery reaches parity");
        // Every recovered derived tuple is explainable again.
        for row in &r.outputs()["p"] {
            let node = r
                .explain("p", row, ExplainLimits::default(), None)
                .expect("explains after recovery");
            assert!(node.height >= 1 || node.is_input());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_rows_come_back_sorted_in_every_mode() {
        // Insertion order deliberately scrambled; rows must come back in
        // encoded-tuple order regardless of which index serves the scan.
        let scrambled = pairs(&[(5, 1), (2, 9), (2, 3), (4, 4), (1, 7)]);
        for config in [
            InterpreterConfig::optimized(),
            InterpreterConfig::dynamic_adapter(),
            InterpreterConfig::unoptimized(),
            InterpreterConfig::legacy(),
        ] {
            let mut inputs = InputData::new();
            inputs.insert("e".into(), scrambled.clone());
            let r = ResidentEngine::from_source(TC, config, &inputs, None).expect("builds");
            let rows = r.query("e", &[None, None], None).expect("queries");
            assert_eq!(
                rows,
                pairs(&[(1, 7), (2, 3), (2, 9), (4, 4), (5, 1)]),
                "sorted rows in {config:?}"
            );
            let bound = r
                .query("p", &[Some(Value::Number(2)), None], None)
                .expect("queries");
            let mut sorted = bound.clone();
            sorted.sort_by_key(|row| match row[1] {
                Value::Number(n) => n,
                _ => unreachable!(),
            });
            assert_eq!(bound, sorted, "bound-prefix rows sorted in {config:?}");
        }
    }

    #[test]
    fn multi_stratum_updates_cascade() {
        let src = "\
            .decl e(x: number, y: number)\n.input e\n\
            .decl p(x: number, y: number)\n\
            .decl q(x: number)\n.output q\n\
            p(x, y) :- e(x, y).\n\
            p(x, z) :- p(x, y), e(y, z).\n\
            q(y) :- p(1, y).\n";
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let mut r = resident(src, &inputs);
        assert_eq!(r.outputs()["q"], vec![vec![Value::Number(2)]]);
        let report = r
            .insert_facts("e", &pairs(&[(2, 3)]), None)
            .expect("updates");
        assert!(report.strata_rerun >= 2, "both strata re-run incrementally");
        assert_eq!(
            r.outputs()["q"],
            vec![vec![Value::Number(2)], vec![Value::Number(3)]]
        );
    }

    #[test]
    fn retraction_removes_the_derived_cone_incrementally() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2), (2, 3), (3, 4)]));
        let mut r = resident(TC, &inputs);
        assert_eq!(r.outputs()["p"].len(), 6);

        let report = r
            .retract_facts("e", &pairs(&[(2, 3)]), None)
            .expect("retracts");
        assert_eq!(report.retracted, 1);
        assert!(report.strata_rerun >= 1);
        assert_eq!(report.full_fallbacks, 0, "monotone program stays delta");
        // Only e(1,2)→p(1,2) and e(3,4)→p(3,4) survive.
        assert_eq!(r.outputs()["p"], pairs(&[(1, 2), (3, 4)]));
        assert_eq!(r.query("e", &[None, None], None).expect("queries").len(), 2);
    }

    #[test]
    fn retraction_restores_alternatively_derivable_tuples() {
        // Diamond: p(1,4) via 2 and via 3. Removing one path must keep it.
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2), (2, 4), (1, 3), (3, 4)]));
        let mut r = resident(TC, &inputs);

        let report = r
            .retract_facts("e", &pairs(&[(2, 4)]), None)
            .expect("retracts");
        assert_eq!(report.retracted, 1);
        assert!(report.rederived >= 1, "p(1,4) must be restored: {report:?}");
        assert_eq!(r.outputs()["p"], pairs(&[(1, 2), (1, 3), (1, 4), (3, 4)]));
    }

    #[test]
    fn retracting_absent_or_unknown_tuples_is_a_noop() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let mut r = resident(TC, &inputs);
        let report = r
            .retract_facts("e", &pairs(&[(7, 8)]), None)
            .expect("retracts");
        assert_eq!(report.retracted, 0);
        assert_eq!(report.strata_rerun + report.full_fallbacks, 0);
        assert_eq!(r.outputs()["p"], pairs(&[(1, 2)]));
        // Bad requests are rejected exactly like inserts.
        assert!(r.retract_facts("p", &pairs(&[(1, 2)]), None).is_err());
        assert!(r
            .retract_facts("e", &[vec![Value::Number(1)]], None)
            .is_err());
    }

    #[test]
    fn retraction_cascades_across_strata() {
        let src = "\
            .decl e(x: number, y: number)\n.input e\n\
            .decl p(x: number, y: number)\n\
            .decl q(x: number)\n.output q\n\
            p(x, y) :- e(x, y).\n\
            p(x, z) :- p(x, y), e(y, z).\n\
            q(y) :- p(1, y).\n";
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2), (2, 3)]));
        let mut r = resident(src, &inputs);
        assert_eq!(r.outputs()["q"].len(), 2);

        let report = r
            .retract_facts("e", &pairs(&[(2, 3)]), None)
            .expect("retracts");
        assert!(report.strata_rerun >= 2, "{report:?}");
        assert_eq!(report.full_fallbacks, 0);
        assert_eq!(r.outputs()["q"], vec![vec![Value::Number(2)]]);
    }

    #[test]
    fn negation_reader_gains_tuples_via_fallback() {
        let src = "\
            .decl a(x: number)\n.input a\n\
            .decl b(x: number)\n.input b\n\
            .decl r(x: number)\n.output r\n\
            r(x) :- a(x), !b(x).\n";
        let mut inputs = InputData::new();
        inputs.insert("a".into(), vec![vec![Value::Number(1)]]);
        inputs.insert("b".into(), vec![vec![Value::Number(1)]]);
        let mut r = resident(src, &inputs);
        assert!(r.outputs()["r"].is_empty());

        // Shrinking a negated relation *adds* downstream tuples — only
        // the full-recompute fallback can produce them.
        let report = r
            .retract_facts("b", &[vec![Value::Number(1)]], None)
            .expect("retracts");
        assert!(report.full_fallbacks >= 1, "{report:?}");
        assert_eq!(r.outputs()["r"], vec![vec![Value::Number(1)]]);
    }

    #[test]
    fn interleaved_inserts_and_retractions_match_from_scratch() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let mut r = resident(TC, &inputs);
        r.insert_facts("e", &pairs(&[(2, 3), (3, 4)]), None)
            .expect("inserts");
        r.retract_facts("e", &pairs(&[(1, 2)]), None)
            .expect("retracts");
        r.insert_facts("e", &pairs(&[(4, 1)]), None)
            .expect("inserts");
        r.retract_facts("e", &pairs(&[(3, 4)]), None)
            .expect("retracts");

        // Survivors: e(2,3), e(4,1).
        let mut fresh_inputs = InputData::new();
        fresh_inputs.insert("e".into(), pairs(&[(2, 3), (4, 1)]));
        let fresh = resident(TC, &fresh_inputs);
        assert_eq!(r.outputs(), fresh.outputs());
    }

    #[test]
    fn retracting_a_program_ground_fact_sticks() {
        // The fact comes from the source text, not an insert; fallback
        // replays must not resurrect it.
        let src = "\
            .decl a(x: number)\n.input a\n\
            .decl b(x: number)\n.input b\n\
            .decl r(x: number)\n.output r\n\
            a(1). a(2). b(9).\n\
            r(x) :- a(x), !b(x).\n";
        let mut r = resident(src, &InputData::new());
        assert_eq!(r.outputs()["r"].len(), 2);
        r.retract_facts("a", &[vec![Value::Number(1)]], None)
            .expect("retracts");
        assert_eq!(r.outputs()["r"], vec![vec![Value::Number(2)]]);
        // Force the negation fallback (full recompute of r's stratum):
        // the replay list must no longer contain a(1).
        r.insert_facts("b", &[vec![Value::Number(3)]], None)
            .expect("inserts");
        assert_eq!(r.outputs()["r"], vec![vec![Value::Number(2)]]);
    }

    #[test]
    fn eqrel_input_retraction_rebuilds_the_closure() {
        let src = "\
            .decl eq(x: number, y: number) eqrel\n.input eq\n\
            .decl out(x: number, y: number)\n.output out\n\
            out(x, y) :- eq(x, y).\n";
        let mut r = resident(src, &InputData::new());
        r.insert_facts("eq", &pairs(&[(1, 2), (2, 3)]), None)
            .expect("inserts");
        assert!(
            r.query(
                "eq",
                &[Some(Value::Number(1)), Some(Value::Number(3))],
                None
            )
            .expect("queries")
            .len()
                == 1
        );

        let report = r
            .retract_facts("eq", &pairs(&[(1, 2)]), None)
            .expect("retracts");
        assert_eq!(report.retracted, 1);
        assert!(report.full_fallbacks >= 1, "eqrel readers recompute");
        // The closure of the surviving generator {(2,3)} excludes 1.
        assert!(r
            .query("eq", &[Some(Value::Number(1)), None], None)
            .expect("queries")
            .is_empty());
        assert!(
            r.query(
                "out",
                &[Some(Value::Number(2)), Some(Value::Number(3))],
                None
            )
            .expect("queries")
            .len()
                == 1
        );
    }

    #[test]
    fn retraction_survives_wal_replay() {
        let dir = tmpdir("retract-wal");
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2)]));
        let opts = PersistOptions::default();

        let (mut r, _) = open_dir(TC, InterpreterConfig::optimized(), &inputs, &dir, opts);
        r.insert_facts("e", &pairs(&[(2, 3)]), None)
            .expect("inserts");
        r.retract_facts("e", &pairs(&[(1, 2)]), None)
            .expect("retracts");
        let before = r.outputs();
        drop(r); // crash: recovery must replay the delete record too

        let (r, rec) = open_dir(TC, InterpreterConfig::optimized(), &inputs, &dir, opts);
        assert_eq!(rec.replayed_batches, 2);
        assert_eq!(r.outputs(), before);
        assert_eq!(r.outputs()["p"], pairs(&[(2, 3)]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retraction_is_covered_by_snapshots() {
        // Retract a *program* ground fact, snapshot, recover: neither
        // `Database::new_with`'s fact pre-load nor the replay list may
        // resurrect it.
        let src = "\
            .decl e(x: number, y: number)\n.input e\n\
            .decl p(x: number, y: number)\n.output p\n\
            e(1, 2). e(2, 3).\n\
            p(x, y) :- e(x, y).\n\
            p(x, z) :- p(x, y), e(y, z).\n";
        let dir = tmpdir("retract-snap");
        let opts = PersistOptions::default();

        let (mut r, _) = open_dir(
            src,
            InterpreterConfig::optimized(),
            &InputData::new(),
            &dir,
            opts,
        );
        r.retract_facts("e", &pairs(&[(1, 2)]), None)
            .expect("retracts");
        r.snapshot(None).expect("snapshots");
        let before = r.outputs();
        drop(r);

        let (mut r, rec) = open_dir(
            src,
            InterpreterConfig::optimized(),
            &InputData::new(),
            &dir,
            opts,
        );
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.replayed_batches, 0);
        assert_eq!(r.outputs(), before);
        assert_eq!(r.outputs()["p"], pairs(&[(2, 3)]));
        // And a post-recovery fallback recompute must not resurrect it
        // from the reconciled replay list either.
        let report = r
            .retract_facts("e", &pairs(&[(2, 3)]), None)
            .expect("retracts");
        assert_eq!(report.retracted, 1);
        assert!(r.outputs()["p"].is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retract_deadline_sets_flag_but_commits() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2), (2, 3)]));
        let mut r = resident(TC, &inputs);
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let report = r
            .retract_facts_deadline("e", &pairs(&[(2, 3)]), Some(past), None)
            .expect("applies despite deadline");
        assert!(report.deadline_exceeded);
        assert_eq!(report.retracted, 1, "the retraction still committed");
        assert_eq!(r.outputs()["p"], pairs(&[(1, 2)]));
    }

    #[test]
    fn retraction_counters_accumulate_and_stay_gated() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2), (1, 3)]));
        let mut r = resident(TC, &inputs);
        let s = r.stats();
        assert_eq!((s.retracts, s.retract_tuples, s.rederived), (0, 0, 0));
        r.retract_facts("e", &pairs(&[(1, 2), (9, 9)]), None)
            .expect("retracts");
        let s = r.stats();
        assert_eq!(s.retracts, 1);
        assert_eq!(s.retract_tuples, 1, "absent tuples don't count");
        assert_eq!(s.requests, 1);
    }

    #[test]
    fn explain_stays_exact_after_retraction() {
        let mut inputs = InputData::new();
        inputs.insert("e".into(), pairs(&[(1, 2), (2, 3), (1, 3)]));
        let mut r = ResidentEngine::from_source(
            TC,
            InterpreterConfig::optimized().with_provenance(),
            &inputs,
            None,
        )
        .expect("builds");

        let report = r
            .retract_facts("e", &pairs(&[(2, 3)]), None)
            .expect("retracts");
        assert!(
            report.full_fallbacks >= 1,
            "provenance mode recomputes for exact annotations: {report:?}"
        );
        // p(1,3) survives via the direct edge and explains as such.
        let node = r
            .explain(
                "p",
                &[Value::Number(1), Value::Number(3)],
                ExplainLimits::default(),
                None,
            )
            .expect("explains");
        assert!(node.premises.iter().all(|p| p.tuple != vec![2, 3]));
        // p(2,3) is gone and reports non-derivable.
        assert!(r
            .explain(
                "p",
                &[Value::Number(2), Value::Number(3)],
                ExplainLimits::default(),
                None,
            )
            .is_err());
    }

    #[test]
    fn retraction_matches_from_scratch_in_every_mode() {
        for config in [
            InterpreterConfig::optimized(),
            InterpreterConfig::dynamic_adapter(),
            InterpreterConfig::unoptimized(),
            InterpreterConfig::legacy(),
        ] {
            let mut inputs = InputData::new();
            inputs.insert("e".into(), pairs(&[(1, 2), (2, 3), (3, 1), (3, 4)]));
            let mut r = ResidentEngine::from_source(TC, config, &inputs, None).expect("builds");
            r.retract_facts("e", &pairs(&[(2, 3)]), None)
                .expect("retracts");

            let mut fresh_inputs = InputData::new();
            fresh_inputs.insert("e".into(), pairs(&[(1, 2), (3, 1), (3, 4)]));
            let fresh =
                ResidentEngine::from_source(TC, config, &fresh_inputs, None).expect("builds");
            assert_eq!(r.outputs(), fresh.outputs(), "mode {config:?}");
        }
    }
}
