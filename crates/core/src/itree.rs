//! The Interpreter Tree: RAM amended with runtime-specific precomputation.
//!
//! `build` turns a RAM program into lightweight interpreter nodes
//! ([`INode`], paper §3/Fig. 4). Each node carries exactly what execution
//! needs — arena offsets instead of `(level, column)` pairs, prefilled
//! bound templates, pre-split super-instruction fields — plus a *shadow
//! pointer* into the RAM tree for static information (query labels,
//! listings). All four optimizations of §4 are applied here, steered by
//! [`InterpreterConfig`]:
//!
//! * **static dispatch** chooses `...Static` node kinds whose handlers
//!   downcast to monomorphized index types (§4.1);
//! * **static reordering** rewrites tuple-element accesses into each
//!   scan's stored order so tuples are never decoded at runtime (§4.2);
//! * **super-instructions** fold `Constant`/`TupleElement` children into
//!   the parent's precomputed fields (§4.4);
//! * the **outlining** ablation (§4.3 analogue) is an execution-time
//!   choice and does not affect tree shape.

use crate::config::{InterpreterConfig, StorageBackend};
use stir_ram::expr::{CmpKind, RamExpr};
use stir_ram::program::{RamProgram, RelId, ReprKind};
use stir_ram::stmt::{AggFunc, RamCond, RamOp, RamStmt};
use stir_ram::IntrinsicOp;

/// An arena slot holding one bound tuple.
#[derive(Debug, Clone, Copy)]
pub struct Slot {
    /// First register of the slot.
    pub ofs: usize,
    /// Number of registers (the tuple arity).
    pub arity: usize,
}

/// How a scanned (stored-order) tuple lands in its arena slot.
#[derive(Debug, Clone)]
pub enum CopySpec {
    /// `regs[ofs + i] = t[i]` — a straight copy (static reordering is on,
    /// or the index order is natural).
    Direct,
    /// `regs[ofs + ord[i]] = t[i]` — the runtime decode that static
    /// reordering eliminates.
    Permuted(Vec<usize>),
}

/// Precomputed range-query bounds for one search site.
///
/// `lo`/`hi` are templates in stored order: unbound positions are prefilled
/// with `0`/`u32::MAX`, and — when super-instructions are on — constant
/// bounds are baked in. At execution time the templates are copied to the
/// stack and the `elems`/`dynamic` entries fill the remaining positions.
#[derive(Debug)]
pub struct Bounds<'p> {
    /// Tuple arity.
    pub arity: usize,
    /// Lower-bound template.
    pub lo: Vec<u32>,
    /// Upper-bound template.
    pub hi: Vec<u32>,
    /// Super-instruction field: `(stored position, arena offset)` pairs
    /// copied without dispatch.
    pub elems: Vec<(usize, usize)>,
    /// Generic expressions: `(stored position, expression)` pairs.
    pub dynamic: Vec<(usize, INode<'p>)>,
    /// Whether every position is bound (a whole-tuple existence probe).
    pub full: bool,
}

/// A hand-crafted native condition (paper §5.2): a function evaluating an
/// entire filter conjunction against the register arena in one dispatch.
pub type NativeCond = fn(&[u32]) -> bool;

/// A request to fuse the arithmetic filter chain of matching queries into
/// one [`NativeCond`] call — the paper's hand-written super-instructions
/// for the `moved_label`-style outlier rules. The provided function must
/// compute exactly the conjunction of the collapsed filter conditions.
#[derive(Debug, Clone)]
pub struct Fusion {
    /// Applied to queries whose label contains this substring.
    pub label_contains: String,
    /// The native replacement condition.
    pub cond: NativeCond,
}

/// One interpreter node. Statements, operations, conditions, and
/// expressions share the enum; the variant is the opcode (the paper's
/// `node->type` switch tag).
#[derive(Debug)]
pub enum INode<'p> {
    // ---- statements -------------------------------------------------
    /// Run children in order.
    Seq(Vec<INode<'p>>),
    /// Repeat until an inner `Exit` fires.
    Loop {
        /// Ordinal of this loop in tree order (keys frontier samples).
        id: usize,
        /// The loop body.
        body: Box<INode<'p>>,
    },
    /// Break the innermost loop when the condition holds.
    Exit(Box<INode<'p>>),
    /// One rule evaluation.
    Query {
        /// Index into the profiler's label table.
        label: usize,
        /// Total registers needed by the query's bindings.
        arena_size: usize,
        /// The operation tree.
        body: Box<INode<'p>>,
        /// Shadow pointer to the source RAM statement.
        shadow: &'p RamStmt,
    },
    /// Remove all tuples.
    Clear(RelId),
    /// Insert all tuples of `from` into `into`.
    Merge {
        /// Destination relation.
        into: RelId,
        /// Source relation.
        from: RelId,
    },
    /// Exchange contents.
    Swap(RelId, RelId),

    // ---- operations ---------------------------------------------------
    /// Full scan, statically dispatched on `(repr, arity)`.
    ScanStatic {
        /// Scanned relation.
        rel: RelId,
        /// Index to iterate.
        index: usize,
        /// Where the tuple lands.
        dst: Slot,
        /// How it lands.
        copy: CopySpec,
        /// Whether the scan may be partitioned across workers.
        parallel: bool,
        /// Loop body.
        body: Box<INode<'p>>,
    },
    /// Full scan through the virtual adapter (optionally buffered).
    ScanDynamic {
        /// Scanned relation.
        rel: RelId,
        /// Index to iterate.
        index: usize,
        /// Where the tuple lands.
        dst: Slot,
        /// How it lands.
        copy: CopySpec,
        /// Whether the 128-tuple buffer amortizes the virtual calls.
        buffered: bool,
        /// Whether the scan may be partitioned across workers.
        parallel: bool,
        /// Loop body.
        body: Box<INode<'p>>,
    },
    /// Range scan, statically dispatched.
    IndexScanStatic {
        /// Scanned relation.
        rel: RelId,
        /// Index to range over.
        index: usize,
        /// Where the tuple lands.
        dst: Slot,
        /// How it lands.
        copy: CopySpec,
        /// The search bounds.
        bounds: Bounds<'p>,
        /// Whether the scan may be partitioned across workers.
        parallel: bool,
        /// Loop body.
        body: Box<INode<'p>>,
    },
    /// Range scan through the virtual adapter (optionally buffered).
    IndexScanDynamic {
        /// Scanned relation.
        rel: RelId,
        /// Index to range over.
        index: usize,
        /// Where the tuple lands.
        dst: Slot,
        /// How it lands.
        copy: CopySpec,
        /// Whether the 128-tuple buffer amortizes the virtual calls.
        buffered: bool,
        /// The search bounds.
        bounds: Bounds<'p>,
        /// Whether the scan may be partitioned across workers.
        parallel: bool,
        /// Loop body.
        body: Box<INode<'p>>,
    },
    /// Conditional execution.
    Filter {
        /// The guard condition.
        cond: Box<INode<'p>>,
        /// Run when the guard holds.
        body: Box<INode<'p>>,
    },
    /// Conditional execution through a hand-crafted native condition: the
    /// whole (possibly multi-filter) arithmetic guard costs one dispatch
    /// (paper §5.2).
    FilterNative {
        /// The fused condition.
        func: NativeCond,
        /// Run when the guard holds.
        body: Box<INode<'p>>,
    },
    /// Insert with super-instruction fields (paper Fig. 14): the tuple
    /// template already holds the constants; `elems` are register-to-
    /// register copies; only `generic` entries dispatch.
    ProjectSuper {
        /// Destination relation.
        rel: RelId,
        /// Whether to statically dispatch the insert.
        static_dispatch: bool,
        /// Source rule id for annotated evaluation (`RULE_INPUT` for
        /// synthetic projections); folded in like the constants.
        rule: u32,
        /// Tuple template with constants baked in.
        template: Vec<u32>,
        /// `(column, arena offset)` copies.
        elems: Vec<(usize, usize)>,
        /// `(column, expression)` evaluations.
        generic: Vec<(usize, INode<'p>)>,
    },
    /// Insert evaluating every column by dispatch.
    ProjectPlain {
        /// Destination relation.
        rel: RelId,
        /// Whether to statically dispatch the insert.
        static_dispatch: bool,
        /// Source rule id for annotated evaluation (`RULE_INPUT` for
        /// synthetic projections).
        rule: u32,
        /// One expression per column.
        values: Vec<INode<'p>>,
    },
    /// Aggregate over one indexed scan; binds a 1-value result.
    Aggregate {
        /// Whether the scan is statically dispatched.
        static_dispatch: bool,
        /// Scanned relation.
        rel: RelId,
        /// Index to range over.
        index: usize,
        /// The aggregate function.
        func: AggFunc,
        /// Slot holding the scanned tuple during the fold and the result
        /// (at offset 0) afterwards.
        dst: Slot,
        /// How scanned tuples land.
        copy: CopySpec,
        /// The search bounds.
        bounds: Bounds<'p>,
        /// Folded expression (`None` for COUNT).
        value: Option<Box<INode<'p>>>,
        /// Executed once with the result bound.
        body: Box<INode<'p>>,
    },

    // ---- conditions ---------------------------------------------------
    /// Always true.
    True,
    /// All children hold.
    Conj(Vec<INode<'p>>),
    /// Child does not hold.
    Not(Box<INode<'p>>),
    /// Binary comparison.
    Cmp {
        /// Pre-typed operator.
        kind: CmpKind,
        /// Left operand.
        lhs: Box<INode<'p>>,
        /// Right operand.
        rhs: Box<INode<'p>>,
    },
    /// `rel = ∅`.
    Empty(RelId),
    /// Existence probe, statically dispatched.
    ExistsStatic {
        /// Probed relation.
        rel: RelId,
        /// Index to probe.
        index: usize,
        /// The probe bounds.
        bounds: Bounds<'p>,
    },
    /// Existence probe through the virtual adapter.
    ExistsDynamic {
        /// Probed relation.
        rel: RelId,
        /// Index to probe.
        index: usize,
        /// The probe bounds.
        bounds: Bounds<'p>,
    },

    // ---- expressions ----------------------------------------------------
    /// A literal bit pattern.
    Constant(u32),
    /// Read one register.
    TupleElement {
        /// Precomputed arena offset (level offset + mapped column).
        ofs: usize,
    },
    /// The `$` counter.
    AutoInc,
    /// An intrinsic operation.
    Intrinsic {
        /// The operation.
        op: IntrinsicOp,
        /// Argument expressions.
        args: Vec<INode<'p>>,
    },
}

/// A built interpreter tree plus its query label table.
#[derive(Debug)]
pub struct ITree<'p> {
    /// The root statement.
    pub root: INode<'p>,
    /// Query labels (rule texts), indexed by `INode::Query::label`.
    pub labels: Vec<String>,
}

/// Builds the interpreter tree for `ram` under `config`.
///
/// This is the "extra code generation" phase whose cost is included in
/// all interpreter timings (paper §5).
pub fn build<'p>(ram: &'p RamProgram, config: &InterpreterConfig) -> ITree<'p> {
    build_with_fusions(ram, config, &[])
}

/// Like [`build`], additionally installing hand-crafted super-instructions
/// for the matching queries (paper §5.2): in each query whose label
/// matches a [`Fusion`], the maximal chain of purely arithmetic `Filter`s
/// is collapsed into a single [`INode::FilterNative`].
pub fn build_with_fusions<'p>(
    ram: &'p RamProgram,
    config: &InterpreterConfig,
    fusions: &[Fusion],
) -> ITree<'p> {
    let mut b = Builder {
        ram,
        config: *config,
        labels: Vec::new(),
        offsets: Vec::new(),
        maps: Vec::new(),
        fusions: fusions.to_vec(),
        active_fusion: None,
        loops: 0,
    };
    let root = b.stmt(&ram.main);
    ITree {
        root,
        labels: b.labels,
    }
}

/// Builds a tree for one statement of `ram` instead of its `main` — the
/// serving subsystem uses this to interpret a stratum's incremental
/// update statement (or its recomputation statement) in isolation. Tree
/// generation is cheap (the paper's core premise), so resident engines
/// rebuild these per request rather than caching self-referential trees.
pub fn build_stmt<'p>(
    ram: &'p RamProgram,
    config: &InterpreterConfig,
    stmt: &'p RamStmt,
) -> ITree<'p> {
    let mut b = Builder {
        ram,
        config: *config,
        labels: Vec::new(),
        offsets: Vec::new(),
        maps: Vec::new(),
        fusions: Vec::new(),
        active_fusion: None,
        loops: 0,
    };
    let root = b.stmt(stmt);
    ITree {
        root,
        labels: b.labels,
    }
}

struct Builder<'p> {
    ram: &'p RamProgram,
    config: InterpreterConfig,
    labels: Vec<String>,
    /// Arena offset of each level of the current query.
    offsets: Vec<usize>,
    /// Per-level source-column → stored-position map (`None` = identity).
    maps: Vec<Option<Vec<usize>>>,
    /// Requested filter fusions.
    fusions: Vec<Fusion>,
    /// The fusion applying to the query under construction, if any.
    active_fusion: Option<NativeCond>,
    /// Loops assigned so far (tree order).
    loops: usize,
}

impl<'p> Builder<'p> {
    /// Whether `rel` is served by disk-backed (`DiskIndex`) adapters and
    /// must therefore answer through the virtual interface: the
    /// monomorphized static handlers downcast to the factory's
    /// specialized index types and would miss. This is the paper's
    /// de-specialization seam doing its job — swapping the storage of one
    /// relation is a per-relation dispatch decision here, not an engine
    /// rewrite.
    fn disk_override(&self, rel: RelId) -> bool {
        self.config.storage == StorageBackend::Disk
            && crate::database::disk_backed(&self.ram.relations[rel.0])
    }

    /// Whether accesses to `rel` may use statically-dispatched
    /// instruction variants.
    fn static_ok(&self, rel: RelId) -> bool {
        self.config.static_dispatch && !self.disk_override(rel)
    }

    fn stmt(&mut self, s: &'p RamStmt) -> INode<'p> {
        match s {
            RamStmt::Seq(stmts) => INode::Seq(stmts.iter().map(|st| self.stmt(st)).collect()),
            RamStmt::Loop(body) => {
                let id = self.loops;
                self.loops += 1;
                INode::Loop {
                    id,
                    body: Box::new(self.stmt(body)),
                }
            }
            RamStmt::Exit(cond) => INode::Exit(Box::new(self.cond(cond))),
            RamStmt::Query {
                label,
                level_arity,
                op,
                ..
            } => {
                let label_id = self.labels.len();
                self.labels.push(label.clone());
                self.active_fusion = self
                    .fusions
                    .iter()
                    .find(|f| label.contains(&f.label_contains))
                    .map(|f| f.cond);
                // Arena layout: one slot per level, packed.
                self.offsets.clear();
                self.maps.clear();
                let mut total = 0;
                for &a in level_arity {
                    self.offsets.push(total);
                    total += a.max(1);
                    self.maps.push(None);
                }
                let body = self.op(op);
                INode::Query {
                    label: label_id,
                    arena_size: total,
                    body: Box::new(body),
                    shadow: s,
                }
            }
            RamStmt::Clear(rel) => INode::Clear(*rel),
            RamStmt::Merge { into, from } => INode::Merge {
                into: *into,
                from: *from,
            },
            RamStmt::Swap(a, b) => INode::Swap(*a, *b),
        }
    }

    /// The lexicographic order in which `(rel, index)` *stores* tuples.
    ///
    /// Search patterns map through this order into bound positions. Under
    /// the legacy data layer tuples are stored un-permuted (the comparator
    /// does the reordering), so the storage order is the identity.
    fn storage_order(&self, rel: RelId, index: usize) -> Vec<usize> {
        let arity = self.ram.relations[rel.0].arity;
        if self.config.legacy_data {
            (0..arity).collect()
        } else {
            self.ram.relations[rel.0].orders[index].clone()
        }
    }

    /// The order in which scanned tuples *emerge* relative to source
    /// columns — the storage order, flipped for eqrel symmetry probes
    /// (which yield `(key, member)` pairs for a source-order `(member,
    /// key)` pattern).
    fn emission_order(&self, rel: RelId, index: usize, eqrel_swap: bool) -> Vec<usize> {
        if eqrel_swap {
            vec![1, 0]
        } else {
            self.storage_order(rel, index)
        }
    }

    /// Installs the level's copy behaviour and column map for an order.
    fn level_plumbing(&mut self, level: usize, ord: &[usize]) -> CopySpec {
        let natural = ord.iter().enumerate().all(|(i, &c)| i == c);
        if natural {
            self.maps[level] = None;
            return CopySpec::Direct;
        }
        if self.config.static_reordering {
            // Tuples stay in stored order; accesses are rewritten.
            let mut map = vec![0usize; ord.len()];
            for (i, &c) in ord.iter().enumerate() {
                map[c] = i;
            }
            self.maps[level] = Some(map);
            CopySpec::Direct
        } else {
            // Tuples are decoded into source order on every iteration.
            self.maps[level] = None;
            CopySpec::Permuted(ord.to_vec())
        }
    }

    fn op(&mut self, o: &'p RamOp) -> INode<'p> {
        match o {
            RamOp::Scan {
                rel,
                level,
                parallel,
                body,
            } => {
                let ord = self.emission_order(*rel, 0, false);
                let copy = self.level_plumbing(*level, &ord);
                let dst = Slot {
                    ofs: self.offsets[*level],
                    arity: self.ram.relations[rel.0].arity,
                };
                let body = Box::new(self.op(body));
                if self.static_ok(*rel) {
                    INode::ScanStatic {
                        rel: *rel,
                        index: 0,
                        dst,
                        copy,
                        parallel: *parallel,
                        body,
                    }
                } else {
                    INode::ScanDynamic {
                        rel: *rel,
                        index: 0,
                        dst,
                        copy,
                        buffered: self.config.buffered_iterators,
                        parallel: *parallel,
                        body,
                    }
                }
            }
            RamOp::IndexScan {
                rel,
                index,
                level,
                pattern,
                eqrel_swap,
                parallel,
                body,
            } => {
                let storage = self.storage_order(*rel, *index);
                let bounds = self.bounds(pattern, &storage);
                let ord = self.emission_order(*rel, *index, *eqrel_swap);
                let copy = self.level_plumbing(*level, &ord);
                let dst = Slot {
                    ofs: self.offsets[*level],
                    arity: self.ram.relations[rel.0].arity,
                };
                let body = Box::new(self.op(body));
                if self.static_ok(*rel) {
                    INode::IndexScanStatic {
                        rel: *rel,
                        index: *index,
                        dst,
                        copy,
                        bounds,
                        parallel: *parallel,
                        body,
                    }
                } else {
                    INode::IndexScanDynamic {
                        rel: *rel,
                        index: *index,
                        dst,
                        copy,
                        buffered: self.config.buffered_iterators,
                        bounds,
                        parallel: *parallel,
                        body,
                    }
                }
            }
            RamOp::Filter { cond, body } => {
                if let Some(func) = self.active_fusion {
                    if is_pure_arith(cond) {
                        // Collapse the maximal chain of arithmetic filters
                        // into one native dispatch.
                        let mut inner: &'p RamOp = body;
                        while let RamOp::Filter { cond, body } = inner {
                            if is_pure_arith(cond) {
                                inner = body;
                            } else {
                                break;
                            }
                        }
                        return INode::FilterNative {
                            func,
                            body: Box::new(self.op(inner)),
                        };
                    }
                }
                INode::Filter {
                    cond: Box::new(self.cond(cond)),
                    body: Box::new(self.op(body)),
                }
            }
            RamOp::Project { rel, values, rule } => self.project(*rel, values, *rule),
            RamOp::Aggregate {
                level,
                func,
                rel,
                index,
                pattern,
                value,
                body,
            } => {
                let ord = self.storage_order(*rel, *index);
                let bounds = self.bounds(pattern, &ord);
                let copy = self.level_plumbing(*level, &ord);
                let dst = Slot {
                    ofs: self.offsets[*level],
                    arity: self.ram.relations[rel.0].arity.max(1),
                };
                // The folded expression sees the scanned tuple (stored
                // order, via the map installed above)...
                let value = value.as_ref().map(|v| Box::new(self.expr(v)));
                // ...but the body sees the 1-value result at offset 0.
                self.maps[*level] = None;
                let body = Box::new(self.op(body));
                INode::Aggregate {
                    static_dispatch: self.static_ok(*rel),
                    rel: *rel,
                    index: *index,
                    func: *func,
                    dst,
                    copy,
                    bounds,
                    value,
                    body,
                }
            }
        }
    }

    fn project(&mut self, rel: RelId, values: &'p [RamExpr], rule: Option<u32>) -> INode<'p> {
        let static_dispatch = self.static_ok(rel);
        // The rule id is absorbed at tree-generation time like any other
        // super-instruction constant; RULE_INPUT marks synthetic
        // projections (aggregate helpers, update seeds without a rule).
        let rule = rule.unwrap_or(crate::database::RULE_INPUT);
        if !self.config.super_instructions {
            return INode::ProjectPlain {
                rel,
                static_dispatch,
                rule,
                values: values.iter().map(|v| self.expr(v)).collect(),
            };
        }
        // Super-instruction splitting (paper Fig. 13).
        let mut template = vec![0u32; values.len()];
        let mut elems = Vec::new();
        let mut generic = Vec::new();
        for (c, v) in values.iter().enumerate() {
            match v {
                RamExpr::Constant(k) => template[c] = *k,
                RamExpr::TupleElement { level, column } => {
                    elems.push((c, self.arena_ofs(*level, *column)));
                }
                other => generic.push((c, self.expr(other))),
            }
        }
        INode::ProjectSuper {
            rel,
            static_dispatch,
            rule,
            template,
            elems,
            generic,
        }
    }

    /// Builds the bound templates for a search pattern against an index
    /// order.
    fn bounds(&mut self, pattern: &'p [Option<RamExpr>], ord: &[usize]) -> Bounds<'p> {
        let arity = pattern.len();
        let mut lo = vec![0u32; arity];
        let mut hi = vec![u32::MAX; arity];
        let mut elems = Vec::new();
        let mut dynamic = Vec::new();
        let mut full = true;
        for (pos, &src_col) in ord.iter().enumerate() {
            match &pattern[src_col] {
                None => full = false,
                Some(RamExpr::Constant(k)) if self.config.super_instructions => {
                    lo[pos] = *k;
                    hi[pos] = *k;
                }
                Some(RamExpr::TupleElement { level, column }) if self.config.super_instructions => {
                    elems.push((pos, self.arena_ofs(*level, *column)));
                }
                Some(e) => dynamic.push((pos, self.expr(e))),
            }
        }
        Bounds {
            arity,
            lo,
            hi,
            elems,
            dynamic,
            full,
        }
    }

    fn cond(&mut self, c: &'p RamCond) -> INode<'p> {
        match c {
            RamCond::True => INode::True,
            RamCond::Conjunction(cs) => INode::Conj(cs.iter().map(|c| self.cond(c)).collect()),
            RamCond::Negation(inner) => INode::Not(Box::new(self.cond(inner))),
            RamCond::Comparison { kind, lhs, rhs } => INode::Cmp {
                kind: *kind,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
            },
            RamCond::EmptinessCheck { rel } => INode::Empty(*rel),
            RamCond::ExistenceCheck {
                rel,
                index,
                pattern,
            } => {
                let mut eqrel_swap = false;
                let repr = self.ram.relations[rel.0].repr;
                let mut pattern_ref: &[Option<RamExpr>] = pattern;
                // Existence checks on eqrel with only the second column
                // bound exploit symmetry like scans do; the translator
                // leaves existence patterns unswapped, so flip here.
                let swapped_storage;
                if repr == ReprKind::EqRel
                    && pattern.len() == 2
                    && pattern[0].is_none()
                    && pattern[1].is_some()
                {
                    swapped_storage = vec![pattern[1].clone(), pattern[0].clone()];
                    pattern_ref = &swapped_storage;
                    eqrel_swap = true;
                    // NOTE: `swapped_storage` borrows end at function exit,
                    // so clone the bounds eagerly below.
                }
                let ord = self.storage_order(*rel, *index);
                let _ = eqrel_swap;
                let bounds = self.bounds_owned(pattern_ref, &ord);
                if self.static_ok(*rel) {
                    INode::ExistsStatic {
                        rel: *rel,
                        index: *index,
                        bounds,
                    }
                } else {
                    INode::ExistsDynamic {
                        rel: *rel,
                        index: *index,
                        bounds,
                    }
                }
            }
        }
    }

    /// Like [`Builder::bounds`] but clones pattern expressions so the
    /// result does not borrow a temporary.
    fn bounds_owned(&mut self, pattern: &[Option<RamExpr>], ord: &[usize]) -> Bounds<'p> {
        let arity = pattern.len();
        let mut lo = vec![0u32; arity];
        let mut hi = vec![u32::MAX; arity];
        let mut elems = Vec::new();
        let mut dynamic = Vec::new();
        let mut full = true;
        for (pos, &src_col) in ord.iter().enumerate() {
            match &pattern[src_col] {
                None => full = false,
                Some(RamExpr::Constant(k)) if self.config.super_instructions => {
                    lo[pos] = *k;
                    hi[pos] = *k;
                }
                Some(RamExpr::TupleElement { level, column }) if self.config.super_instructions => {
                    elems.push((pos, self.arena_ofs(*level, *column)));
                }
                Some(e) => dynamic.push((pos, self.expr_owned(e))),
            }
        }
        Bounds {
            arity,
            lo,
            hi,
            elems,
            dynamic,
            full,
        }
    }

    fn arena_ofs(&self, level: usize, column: usize) -> usize {
        let col = match &self.maps[level] {
            Some(map) => map[column],
            None => column,
        };
        self.offsets[level] + col
    }

    fn expr(&mut self, e: &'p RamExpr) -> INode<'p> {
        self.expr_owned(e)
    }

    fn expr_owned(&mut self, e: &RamExpr) -> INode<'p> {
        match e {
            RamExpr::Constant(k) => INode::Constant(*k),
            RamExpr::TupleElement { level, column } => INode::TupleElement {
                ofs: self.arena_ofs(*level, *column),
            },
            RamExpr::AutoIncrement => INode::AutoInc,
            RamExpr::Intrinsic { op, args } => INode::Intrinsic {
                op: *op,
                args: args.iter().map(|a| self.expr_owned(a)).collect(),
            },
        }
    }
}

/// Whether a condition is purely arithmetic (no relation probes), i.e.
/// eligible for hand-crafted fusion.
fn is_pure_arith(c: &RamCond) -> bool {
    match c {
        RamCond::True | RamCond::Comparison { .. } => true,
        RamCond::Conjunction(cs) => cs.iter().all(is_pure_arith),
        RamCond::Negation(inner) => is_pure_arith(inner),
        RamCond::EmptinessCheck { .. } | RamCond::ExistenceCheck { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_frontend::parse_and_check;
    use stir_ram::translate::translate;

    fn ram(src: &str) -> RamProgram {
        translate(&parse_and_check(src).expect("checks")).expect("translates")
    }

    const TC: &str = "\
        .decl e(x: number, y: number)\n\
        .decl p(x: number, y: number)\n\
        .output p\n\
        e(1, 2).\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";

    fn count_kind(node: &INode<'_>, pred: &dyn Fn(&INode<'_>) -> bool) -> usize {
        let mut n = usize::from(pred(node));
        let children: Vec<&INode<'_>> = match node {
            INode::Seq(v) | INode::Conj(v) => v.iter().collect(),
            INode::Exit(b) | INode::Not(b) => vec![&**b],
            INode::Loop { body, .. } => vec![&**body],
            INode::Query { body, .. } => vec![&**body],
            INode::ScanStatic { body, .. } | INode::ScanDynamic { body, .. } => vec![&**body],
            INode::IndexScanStatic { bounds, body, .. }
            | INode::IndexScanDynamic { bounds, body, .. } => {
                let mut v: Vec<&INode<'_>> = bounds.dynamic.iter().map(|(_, e)| e).collect();
                v.push(&**body);
                v
            }
            INode::Filter { cond, body } => vec![&**cond, &**body],
            INode::ProjectSuper { generic, .. } => generic.iter().map(|(_, e)| e).collect(),
            INode::ProjectPlain { values, .. } => values.iter().collect(),
            INode::Aggregate {
                bounds,
                value,
                body,
                ..
            } => {
                let mut v: Vec<&INode<'_>> = bounds.dynamic.iter().map(|(_, e)| e).collect();
                if let Some(val) = value {
                    v.push(&**val);
                }
                v.push(&**body);
                v
            }
            INode::Cmp { lhs, rhs, .. } => vec![&**lhs, &**rhs],
            INode::ExistsStatic { bounds, .. } | INode::ExistsDynamic { bounds, .. } => {
                bounds.dynamic.iter().map(|(_, e)| e).collect()
            }
            INode::Intrinsic { args, .. } => args.iter().collect(),
            _ => vec![],
        };
        for c in children {
            n += count_kind(c, pred);
        }
        n
    }

    #[test]
    fn static_config_builds_static_nodes() {
        let ram = ram(TC);
        // Pin mem storage: under `STIR_STORAGE=disk` the presets would
        // legitimately demote standard-relation access to dynamic nodes.
        let cfg = InterpreterConfig::optimized().with_storage(StorageBackend::Mem);
        let tree = build(&ram, &cfg);
        assert!(count_kind(&tree.root, &|n| matches!(n, INode::IndexScanStatic { .. })) > 0);
        assert_eq!(
            count_kind(&tree.root, &|n| matches!(n, INode::IndexScanDynamic { .. })),
            0
        );
        assert!(count_kind(&tree.root, &|n| matches!(n, INode::ProjectSuper { .. })) > 0);
        // One exit rule + one delta version of the recursive rule.
        assert_eq!(tree.labels.len(), 2);
    }

    #[test]
    fn dynamic_config_builds_dynamic_nodes() {
        let ram = ram(TC);
        let tree = build(&ram, &InterpreterConfig::dynamic_adapter());
        assert_eq!(
            count_kind(&tree.root, &|n| matches!(n, INode::IndexScanStatic { .. })),
            0
        );
        assert!(count_kind(&tree.root, &|n| matches!(n, INode::IndexScanDynamic { .. })) > 0);
    }

    #[test]
    fn disk_storage_forces_dynamic_nodes_for_standard_relations() {
        let ram = ram(TC);
        let cfg = InterpreterConfig::optimized().with_storage(StorageBackend::Disk);
        let tree = build(&ram, &cfg);
        // Standard relations (e, p) answer through the adapter interface;
        // the auxiliary delta/new relations keep their specialized static
        // handlers.
        let is_disk_rel = |rel: &RelId| crate::database::disk_backed(&ram.relations[rel.0]);
        assert_eq!(
            count_kind(&tree.root, &|n| match n {
                INode::ScanStatic { rel, .. } | INode::IndexScanStatic { rel, .. } =>
                    is_disk_rel(rel),
                INode::ProjectSuper {
                    rel,
                    static_dispatch,
                    ..
                } => *static_dispatch && is_disk_rel(rel),
                INode::ExistsStatic { rel, .. } => is_disk_rel(rel),
                _ => false,
            }),
            0,
            "no static access to a disk-backed relation"
        );
        assert!(
            count_kind(&tree.root, &|n| matches!(
                n,
                INode::ScanDynamic { .. } | INode::IndexScanDynamic { .. }
            )) > 0,
            "disk-backed relations scan dynamically"
        );
        assert!(
            count_kind(&tree.root, &|n| match n {
                INode::ScanStatic { rel, .. } | INode::IndexScanStatic { rel, .. } =>
                    !is_disk_rel(rel),
                _ => false,
            }) > 0,
            "auxiliary relations keep static dispatch"
        );
    }

    #[test]
    fn super_instructions_fold_constants_into_bounds() {
        let src = "\
            .decl e(x: number, y: number)\n.decl r(y: number)\n\
            e(7, 8).\n\
            r(y) :- e(7, y).\n";
        let ram = ram(src);
        let mem = InterpreterConfig::optimized().with_storage(StorageBackend::Mem);
        let with = build(&ram, &mem);
        // The constant 7 is baked into the bound template: no dynamic
        // entries, no generic Constant nodes under the scan.
        let dyn_entries = count_kind(&with.root, &|n| match n {
            INode::IndexScanStatic { bounds, .. } => !bounds.dynamic.is_empty(),
            _ => false,
        });
        assert_eq!(dyn_entries, 0);

        let without = build(
            &ram,
            &InterpreterConfig {
                super_instructions: false,
                ..mem
            },
        );
        let dyn_entries = count_kind(&without.root, &|n| match n {
            INode::IndexScanStatic { bounds, .. } => !bounds.dynamic.is_empty(),
            _ => false,
        });
        assert!(dyn_entries > 0);
    }

    #[test]
    fn projections_split_into_super_fields() {
        let src = "\
            .decl e(x: number)\n.decl r(a: number, b: number, c: number)\n\
            e(1).\n\
            r(x, 5, x + 1) :- e(x).\n";
        let ram = ram(src);
        let tree = build(&ram, &InterpreterConfig::optimized());
        let mut checked = false;
        fn find<'a, 'p>(n: &'a INode<'p>, f: &mut dyn FnMut(&'a INode<'p>)) {
            f(n);
            match n {
                INode::Seq(v) => v.iter().for_each(|c| find(c, f)),
                INode::Loop { body, .. } => find(body, f),
                INode::Exit(b) => find(b, f),
                INode::Query { body, .. } => find(body, f),
                INode::ScanStatic { body, .. } | INode::ScanDynamic { body, .. } => find(body, f),
                INode::IndexScanStatic { body, .. } | INode::IndexScanDynamic { body, .. } => {
                    find(body, f)
                }
                INode::Filter { body, .. } => find(body, f),
                _ => {}
            }
        }
        find(&tree.root, &mut |n| {
            if let INode::ProjectSuper {
                template,
                elems,
                generic,
                ..
            } = n
            {
                assert_eq!(template[1], 5);
                assert_eq!(elems.len(), 1);
                assert_eq!(generic.len(), 1);
                checked = true;
            }
        });
        assert!(checked, "found the super-instruction projection");
    }
}
