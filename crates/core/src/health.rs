//! Storage health state machine for degraded-mode serving.
//!
//! A [`HealthMonitor`] tracks whether the engine's storage layer is
//! usable. The state machine is `Healthy → Degraded → Failed`:
//!
//! * **Healthy** — writes are admitted and the WAL behaves normally.
//! * **Degraded** — a WAL append/fsync or snapshot write failed *and*
//!   an immediate storage probe also failed, so the failure looks
//!   persistent rather than transient. Writes are refused with a
//!   `retry-after` hint while reads keep serving; a supervised heal
//!   loop re-probes storage on an exponential backoff with jitter and
//!   transitions back to Healthy when a probe round-trips.
//! * **Failed** — the circuit breaker: more than `budget` consecutive
//!   probe failures. The heal loop stops probing, `/readyz` goes 503,
//!   and writes stay refused. Reads still serve; the operator decides
//!   whether to restart or replace the volume.
//!
//! A failure whose follow-up probe *succeeds* never leaves Healthy:
//! the original request still reports its storage error, but the next
//! write proceeds (transient blips — a once-fired fault injection, a
//! momentary EIO — do not flip the daemon read-only).
//!
//! The monitor is engine-owned and shared (`Arc`) with the serving
//! layer, the admin endpoint, and the heal thread. The fast path
//! (`state_code`) is one relaxed atomic load so healthy-path request
//! handling pays nothing measurable.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Base delay before the first re-probe after entering Degraded.
const BACKOFF_BASE_MS: u64 = 50;
/// Ceiling on the exponential backoff between probes.
const BACKOFF_CAP_MS: u64 = 2_000;
/// Default consecutive-probe-failure budget before escalating to
/// Failed. Configurable via [`HealthMonitor::set_budget`].
pub const DEFAULT_HEAL_BUDGET: u32 = 8;
/// `retry-after` hint attached to write refusals while Failed.
const FAILED_RETRY_AFTER_MS: u64 = 5_000;

/// A point-in-time snapshot of the health state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthState {
    /// Storage is usable; writes are admitted.
    Healthy,
    /// Storage is suspect; writes are refused, reads serve, and the
    /// heal loop is probing.
    Degraded {
        /// Milliseconds since the transition into Degraded.
        since_ms: u64,
        /// The storage error that triggered the transition.
        cause: String,
    },
    /// The probe budget is exhausted; the circuit breaker is open.
    Failed {
        /// The storage error observed on the final probe.
        cause: String,
    },
}

impl HealthState {
    /// Short lowercase label (`healthy` / `degraded` / `failed`) used
    /// by `.stats`, `/readyz`, and the metrics expositions.
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded { .. } => "degraded",
            HealthState::Failed { .. } => "failed",
        }
    }
}

#[derive(Debug, Default)]
struct Detail {
    since: Option<Instant>,
    cause: String,
    /// Consecutive probe failures in the current Degraded episode.
    consecutive_failures: u32,
    next_probe_at: Option<Instant>,
    /// Monotone counter mixed into the probe jitter.
    jitter_nonce: u64,
}

/// Shared storage health monitor (see module docs for the state
/// machine).
#[derive(Debug)]
pub struct HealthMonitor {
    /// 0 = Healthy, 1 = Degraded, 2 = Failed.
    state: AtomicU8,
    detail: Mutex<Detail>,
    budget: AtomicU32,
    /// Times the monitor entered Degraded.
    pub degraded_entered: AtomicU64,
    /// Times a heal probe returned the monitor to Healthy.
    pub degraded_healed: AtomicU64,
    /// Total failed heal probes (inline and background).
    pub probe_failures: AtomicU64,
    /// Writes refused while Degraded or Failed.
    pub writes_refused: AtomicU64,
}

impl Default for HealthMonitor {
    fn default() -> Self {
        HealthMonitor {
            state: AtomicU8::new(0),
            detail: Mutex::new(Detail::default()),
            budget: AtomicU32::new(DEFAULT_HEAL_BUDGET),
            degraded_entered: AtomicU64::new(0),
            degraded_healed: AtomicU64::new(0),
            probe_failures: AtomicU64::new(0),
            writes_refused: AtomicU64::new(0),
        }
    }
}

impl HealthMonitor {
    /// A fresh monitor in the Healthy state with the default budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the consecutive-probe-failure budget (minimum 1).
    pub fn set_budget(&self, budget: u32) {
        self.budget.store(budget.max(1), Ordering::Relaxed);
    }

    /// Fast-path state code: 0 Healthy, 1 Degraded, 2 Failed.
    pub fn state_code(&self) -> u8 {
        self.state.load(Ordering::Relaxed)
    }

    /// Snapshots the current state with cause and age.
    pub fn snapshot(&self) -> HealthState {
        match self.state.load(Ordering::Acquire) {
            0 => HealthState::Healthy,
            code => {
                let d = self.detail.lock().unwrap_or_else(|e| e.into_inner());
                let since_ms = d.since.map(|s| s.elapsed().as_millis() as u64).unwrap_or(0);
                if code == 1 {
                    HealthState::Degraded {
                        since_ms,
                        cause: d.cause.clone(),
                    }
                } else {
                    HealthState::Failed {
                        cause: d.cause.clone(),
                    }
                }
            }
        }
    }

    /// Admission check for a write. `Ok` while Healthy; otherwise the
    /// suggested client backoff in milliseconds (time until the next
    /// heal probe, or a fixed hint while Failed).
    ///
    /// # Errors
    ///
    /// Returns the `retry-after` hint when writes are refused.
    pub fn gate_write(&self) -> Result<(), u64> {
        match self.state.load(Ordering::Acquire) {
            0 => Ok(()),
            1 => {
                let d = self.detail.lock().unwrap_or_else(|e| e.into_inner());
                let ms = d
                    .next_probe_at
                    .and_then(|at| at.checked_duration_since(Instant::now()))
                    .map(|left| left.as_millis() as u64)
                    .unwrap_or(0)
                    .max(BACKOFF_BASE_MS);
                self.writes_refused.fetch_add(1, Ordering::Relaxed);
                Err(ms)
            }
            _ => {
                self.writes_refused.fetch_add(1, Ordering::Relaxed);
                Err(FAILED_RETRY_AFTER_MS)
            }
        }
    }

    /// Records that a write failed and the immediate follow-up probe
    /// also failed: enter (or stay in) Degraded and schedule the next
    /// probe. While already Degraded this counts as a failed probe and
    /// may trip the circuit breaker.
    pub fn record_degraded(&self, cause: &str) {
        let mut d = self.detail.lock().unwrap_or_else(|e| e.into_inner());
        match self.state.load(Ordering::Acquire) {
            0 => {
                d.since = Some(Instant::now());
                d.cause = cause.to_string();
                d.consecutive_failures = 1;
                self.degraded_entered.fetch_add(1, Ordering::Relaxed);
                self.probe_failures.fetch_add(1, Ordering::Relaxed);
                self.schedule_next_probe(&mut d);
                self.state.store(1, Ordering::Release);
            }
            1 => {
                d.cause = cause.to_string();
                self.fail_probe_locked(&mut d);
            }
            _ => {}
        }
    }

    /// Records a failed background heal probe; escalates to Failed
    /// once the consecutive-failure budget is exhausted.
    pub fn record_probe_failure(&self, cause: &str) {
        let mut d = self.detail.lock().unwrap_or_else(|e| e.into_inner());
        if self.state.load(Ordering::Acquire) != 1 {
            return;
        }
        d.cause = cause.to_string();
        self.fail_probe_locked(&mut d);
    }

    fn fail_probe_locked(&self, d: &mut Detail) {
        d.consecutive_failures = d.consecutive_failures.saturating_add(1);
        self.probe_failures.fetch_add(1, Ordering::Relaxed);
        if d.consecutive_failures > self.budget.load(Ordering::Relaxed) {
            // Circuit breaker: stop probing, surface Failed.
            d.next_probe_at = None;
            self.state.store(2, Ordering::Release);
        } else {
            self.schedule_next_probe(d);
        }
    }

    /// Records a successful heal probe: return to Healthy.
    pub fn mark_healed(&self) {
        let mut d = self.detail.lock().unwrap_or_else(|e| e.into_inner());
        if self.state.load(Ordering::Acquire) != 0 {
            self.degraded_healed.fetch_add(1, Ordering::Relaxed);
        }
        d.since = None;
        d.cause.clear();
        d.consecutive_failures = 0;
        d.next_probe_at = None;
        self.state.store(0, Ordering::Release);
    }

    /// True when the heal loop should attempt a probe now: Degraded
    /// and the backoff delay has elapsed.
    pub fn due_for_probe(&self) -> bool {
        if self.state.load(Ordering::Acquire) != 1 {
            return false;
        }
        let d = self.detail.lock().unwrap_or_else(|e| e.into_inner());
        d.next_probe_at.is_none_or(|at| Instant::now() >= at)
    }

    /// Exponential backoff with deterministic jitter: `base * 2^(n-1)`
    /// capped, plus up to 25% jitter so synchronized replicas do not
    /// probe in lockstep.
    fn schedule_next_probe(&self, d: &mut Detail) {
        let n = d.consecutive_failures.max(1);
        let base = BACKOFF_BASE_MS
            .saturating_mul(1u64 << (n - 1).min(16))
            .min(BACKOFF_CAP_MS);
        d.jitter_nonce = d.jitter_nonce.wrapping_add(1);
        let mut x = d
            .jitter_nonce
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(n));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let jitter = x % (base / 4 + 1);
        d.next_probe_at = Some(Instant::now() + Duration::from_millis(base + jitter));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_healthy_and_admits_writes() {
        let h = HealthMonitor::new();
        assert_eq!(h.snapshot(), HealthState::Healthy);
        assert_eq!(h.state_code(), 0);
        assert!(h.gate_write().is_ok());
        assert!(!h.due_for_probe());
    }

    #[test]
    fn degraded_refuses_writes_with_a_retry_hint() {
        let h = HealthMonitor::new();
        h.record_degraded("injected fault at wal_fsync");
        match h.snapshot() {
            HealthState::Degraded { cause, .. } => {
                assert!(cause.contains("wal_fsync"), "{cause}")
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        let ms = h.gate_write().expect_err("writes refused");
        assert!(ms >= BACKOFF_BASE_MS, "retry-after {ms}ms too small");
        assert_eq!(h.degraded_entered.load(Ordering::Relaxed), 1);
        assert_eq!(h.writes_refused.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn healing_returns_to_healthy_and_counts() {
        let h = HealthMonitor::new();
        h.record_degraded("boom");
        h.mark_healed();
        assert_eq!(h.snapshot(), HealthState::Healthy);
        assert!(h.gate_write().is_ok());
        assert_eq!(h.degraded_healed.load(Ordering::Relaxed), 1);
        // A second episode re-enters cleanly.
        h.record_degraded("boom again");
        assert_eq!(h.degraded_entered.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn probe_budget_escalates_to_failed() {
        let h = HealthMonitor::new();
        h.set_budget(2);
        h.record_degraded("boom");
        h.record_probe_failure("still boom");
        assert_eq!(h.state_code(), 1, "within budget stays degraded");
        h.record_probe_failure("still boom");
        assert_eq!(h.state_code(), 2, "budget exhausted opens the breaker");
        match h.snapshot() {
            HealthState::Failed { cause } => assert_eq!(cause, "still boom"),
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(!h.due_for_probe(), "failed state stops probing");
        let ms = h.gate_write().expect_err("writes refused");
        assert_eq!(ms, FAILED_RETRY_AFTER_MS);
    }

    #[test]
    fn backoff_grows_between_probes() {
        let h = HealthMonitor::new();
        h.set_budget(100);
        h.record_degraded("boom");
        let first = {
            let d = h.detail.lock().unwrap();
            d.next_probe_at.expect("scheduled") - Instant::now()
        };
        for _ in 0..4 {
            h.record_probe_failure("boom");
        }
        let later = {
            let d = h.detail.lock().unwrap();
            d.next_probe_at.expect("scheduled") - Instant::now()
        };
        assert!(
            later > first,
            "backoff should grow: first {first:?}, later {later:?}"
        );
        let cap = Duration::from_millis(BACKOFF_CAP_MS + BACKOFF_CAP_MS / 4);
        assert!(later <= cap, "backoff {later:?} above cap");
    }

    #[test]
    fn transient_failures_do_not_degrade() {
        // record_degraded is only called after an inline probe fails;
        // a transient failure whose probe succeeds never reaches the
        // monitor, so Healthy in = Healthy out. Pin the monitor's side
        // of that contract: no state change without record_degraded.
        let h = HealthMonitor::new();
        assert!(h.gate_write().is_ok());
        assert_eq!(h.degraded_entered.load(Ordering::Relaxed), 0);
    }
}
