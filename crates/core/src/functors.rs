//! Evaluation of intrinsic operations and comparisons.
//!
//! Shared by the STI and the legacy interpreter (and mirrored by the
//! synthesizer's generated code). All operations work on `u32` bit
//! patterns; the [`IntrinsicOp`] variant encodes the interpretation.

use crate::error::EvalError;
use std::sync::RwLock;
use stir_frontend::SymbolTable;
use stir_ram::expr::CmpKind;
use stir_ram::IntrinsicOp;

/// Evaluates a unary or binary (or ternary, for `substr`) intrinsic.
///
/// # Errors
///
/// Division/remainder by zero and `to_number` on a non-numeric string are
/// runtime errors, as in Soufflé.
#[inline]
pub fn eval_intrinsic(
    op: IntrinsicOp,
    args: &[u32],
    symbols: &RwLock<SymbolTable>,
) -> Result<u32, EvalError> {
    use IntrinsicOp::*;
    let s = |i: usize| args[i] as i32;
    let u = |i: usize| args[i];
    let f = |i: usize| f32::from_bits(args[i]);
    Ok(match op {
        Add => u(0).wrapping_add(u(1)),
        Sub => u(0).wrapping_sub(u(1)),
        Mul => u(0).wrapping_mul(u(1)),
        DivS => {
            let d = s(1);
            if d == 0 {
                return Err(EvalError::new("division by zero"));
            }
            s(0).wrapping_div(d) as u32
        }
        DivU => {
            let d = u(1);
            if d == 0 {
                return Err(EvalError::new("division by zero"));
            }
            u(0) / d
        }
        ModS => {
            let d = s(1);
            if d == 0 {
                return Err(EvalError::new("remainder by zero"));
            }
            s(0).wrapping_rem(d) as u32
        }
        ModU => {
            let d = u(1);
            if d == 0 {
                return Err(EvalError::new("remainder by zero"));
            }
            u(0) % d
        }
        PowS => s(0).wrapping_pow(u(1)) as u32,
        PowU => u(0).wrapping_pow(u(1)),
        Neg => (s(0).wrapping_neg()) as u32,
        AddF => (f(0) + f(1)).to_bits(),
        SubF => (f(0) - f(1)).to_bits(),
        MulF => (f(0) * f(1)).to_bits(),
        DivF => (f(0) / f(1)).to_bits(),
        PowF => f(0).powf(f(1)).to_bits(),
        NegF => (-f(0)).to_bits(),
        BAnd => u(0) & u(1),
        BOr => u(0) | u(1),
        BXor => u(0) ^ u(1),
        BNot => !u(0),
        BShl => u(0).wrapping_shl(u(1)),
        BShrU => u(0).wrapping_shr(u(1)),
        BShrS => (s(0).wrapping_shr(u(1))) as u32,
        LAnd => u32::from(u(0) != 0 && u(1) != 0),
        LOr => u32::from(u(0) != 0 || u(1) != 0),
        LNot => u32::from(u(0) == 0),
        MinS => s(0).min(s(1)) as u32,
        MinU => u(0).min(u(1)),
        MinF => f(0).min(f(1)).to_bits(),
        MaxS => s(0).max(s(1)) as u32,
        MaxU => u(0).max(u(1)),
        MaxF => f(0).max(f(1)).to_bits(),
        Ord => u(0),
        Cat => {
            let mut table = symbols
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let joined = format!("{}{}", table.resolve(u(0)), table.resolve(u(1)));
            table.intern(&joined)
        }
        Strlen => {
            let table = symbols
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            table.resolve(u(0)).chars().count() as u32
        }
        Substr => {
            let mut table = symbols
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let text: String = table.resolve(u(0)).to_owned();
            let from = s(1).max(0) as usize;
            let len = s(2).max(0) as usize;
            let sub: String = text.chars().skip(from).take(len).collect();
            table.intern(&sub)
        }
        ToNumber => {
            let table = symbols
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let text = table.resolve(u(0));
            text.trim()
                .parse::<i32>()
                .map(|v| v as u32)
                .map_err(|_| EvalError::new(format!("to_number: `{text}` is not a number")))?
        }
        ToString => {
            let mut table = symbols
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let rendered = (u(0) as i32).to_string();
            table.intern(&rendered)
        }
    })
}

/// Evaluates a pre-typed comparison on two bit patterns.
#[inline]
pub fn eval_cmp(kind: CmpKind, a: u32, b: u32) -> bool {
    use CmpKind::*;
    match kind {
        Eq => a == b,
        Ne => a != b,
        LtS => (a as i32) < (b as i32),
        LeS => (a as i32) <= (b as i32),
        GtS => (a as i32) > (b as i32),
        GeS => (a as i32) >= (b as i32),
        LtU => a < b,
        LeU => a <= b,
        GtU => a > b,
        GeU => a >= b,
        LtF => f32::from_bits(a) < f32::from_bits(b),
        LeF => f32::from_bits(a) <= f32::from_bits(b),
        GtF => f32::from_bits(a) > f32::from_bits(b),
        GeF => f32::from_bits(a) >= f32::from_bits(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> RwLock<SymbolTable> {
        RwLock::new(SymbolTable::new())
    }

    fn ev(op: IntrinsicOp, args: &[u32]) -> u32 {
        eval_intrinsic(op, args, &syms()).expect("evaluates")
    }

    #[test]
    fn integer_arithmetic_wraps_and_signs() {
        assert_eq!(ev(IntrinsicOp::Add, &[3, 4]), 7);
        assert_eq!(ev(IntrinsicOp::Sub, &[3, 4]) as i32, -1);
        assert_eq!(ev(IntrinsicOp::DivS, &[(-6i32) as u32, 3]) as i32, -2);
        assert_eq!(ev(IntrinsicOp::DivU, &[6, 3]), 2);
        assert_eq!(ev(IntrinsicOp::ModS, &[(-7i32) as u32, 3]) as i32, -1);
        assert_eq!(ev(IntrinsicOp::PowS, &[2, 10]), 1024);
        assert_eq!(ev(IntrinsicOp::Neg, &[5]) as i32, -5);
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(eval_intrinsic(IntrinsicOp::DivS, &[1, 0], &syms()).is_err());
        assert!(eval_intrinsic(IntrinsicOp::ModU, &[1, 0], &syms()).is_err());
    }

    #[test]
    fn float_arithmetic_via_bits() {
        let a = 1.5f32.to_bits();
        let b = 2.0f32.to_bits();
        assert_eq!(f32::from_bits(ev(IntrinsicOp::AddF, &[a, b])), 3.5);
        assert_eq!(f32::from_bits(ev(IntrinsicOp::MulF, &[a, b])), 3.0);
        assert_eq!(f32::from_bits(ev(IntrinsicOp::NegF, &[a])), -1.5);
    }

    #[test]
    fn bitwise_and_logical() {
        assert_eq!(ev(IntrinsicOp::BAnd, &[0b1100, 0b1010]), 0b1000);
        assert_eq!(ev(IntrinsicOp::BShl, &[1, 4]), 16);
        assert_eq!(ev(IntrinsicOp::BShrS, &[(-8i32) as u32, 1]) as i32, -4);
        assert_eq!(ev(IntrinsicOp::BShrU, &[(-8i32) as u32, 1]), 0x7FFF_FFFC);
        assert_eq!(ev(IntrinsicOp::LAnd, &[2, 0]), 0);
        assert_eq!(ev(IntrinsicOp::LOr, &[2, 0]), 1);
        assert_eq!(ev(IntrinsicOp::LNot, &[0]), 1);
    }

    #[test]
    fn string_functors() {
        let table = syms();
        let a = table.write().unwrap().intern("foo");
        let b = table.write().unwrap().intern("bar");
        let cat = eval_intrinsic(IntrinsicOp::Cat, &[a, b], &table).unwrap();
        assert_eq!(table.read().unwrap().resolve(cat), "foobar");
        let len = eval_intrinsic(IntrinsicOp::Strlen, &[cat], &table).unwrap();
        assert_eq!(len, 6);
        let sub = eval_intrinsic(IntrinsicOp::Substr, &[cat, 1, 3], &table).unwrap();
        assert_eq!(table.read().unwrap().resolve(sub), "oob");
        let n = table.write().unwrap().intern("42");
        assert_eq!(
            eval_intrinsic(IntrinsicOp::ToNumber, &[n], &table).unwrap(),
            42
        );
        assert!(eval_intrinsic(IntrinsicOp::ToNumber, &[a], &table).is_err());
        let rendered = eval_intrinsic(IntrinsicOp::ToString, &[(-3i32) as u32], &table).unwrap();
        assert_eq!(table.read().unwrap().resolve(rendered), "-3");
    }

    #[test]
    fn comparisons_respect_types() {
        use CmpKind::*;
        let minus_one = (-1i32) as u32;
        assert!(eval_cmp(LtS, minus_one, 0));
        assert!(!eval_cmp(LtU, minus_one, 0)); // -1 is u32::MAX unsigned
        assert!(eval_cmp(GtU, minus_one, 0));
        assert!(eval_cmp(LtF, 1.0f32.to_bits(), 2.0f32.to_bits()));
        assert!(eval_cmp(Eq, 7, 7));
        assert!(eval_cmp(Ne, 7, 8));
        assert!(eval_cmp(GeS, 5, 5));
    }
}
