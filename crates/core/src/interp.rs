//! The Soufflé-style Tree Interpreter (STI): recursive execution of the
//! interpreter tree.
//!
//! Dispatch is a `match` on the [`INode`] variant — the Rust rendering of
//! the paper's `switch (node->type)` (Fig. 5). The statically-dispatched
//! relational instructions downcast the relation's index to its concrete
//! `(representation, arity)` type once per instruction execution and then
//! run fully monomorphized loops (§4.1); the `with_static_set!` /
//! `with_static_adapter!` macros below play the role of the paper's
//! `FOR_EACH` C-macro family (Figs. 8–11), stamping out one `match` arm
//! per pre-instantiated index type.
//!
//! The `OUT` const-generic parameter realizes the §4.3 ablation: with
//! `OUT = true`, heavy instruction handlers are forced out of line behind
//! the `#[inline(never)]` `outline` trampoline, keeping the recursive
//! dispatcher's stack frame minimal; with `OUT = false` they are inlined
//! into the dispatcher, inflating its prologue the way the paper
//! describes.

use crate::config::InterpreterConfig;
use crate::database::Database;
use crate::error::EvalError;
use crate::functors::{eval_cmp, eval_intrinsic};
use crate::itree::{Bounds, CopySpec, INode, ITree, Slot};
use crate::morsel::{MorselQueue, ParallelReport, WorkerStats};
use crate::profile::{ProfileReport, ProfileState};
use crate::sink::InsertSink;
use crate::static_set::{StaticAdapter, StaticSet};
use crate::telemetry::{LogLevel, Telemetry};
use std::cell::RefCell;
use stir_der::adapter::EqRelIndex;
use stir_der::iter::{BufferedTupleIter, TupleIter};
use stir_der::tuple::MAX_ARITY;
use stir_ram::program::{RamProgram, RelId, ReprKind};
use stir_ram::stmt::AggFunc;

/// Control flow of statement evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    /// Continue normally.
    Ok,
    /// An `Exit` fired; unwind to the innermost loop.
    Exit,
}

/// Forces its argument out of line (the §4.3 trampoline).
#[inline(never)]
fn outline<R>(f: impl FnOnce() -> R) -> R {
    f()
}

/// Dispatches a read-only operation to the monomorphized set behind an
/// index adapter. `$method` must be generic as
/// `fn m<const OUT: bool, const PROF: bool, const N: usize, S: StaticSet<N>>(&self, set: &S, ...)`.
macro_rules! with_static_set {
    ($self:ident, $out:ident, $prof:ident, $repr:expr, $arity:expr, $idx:expr, $method:ident, ($($arg:expr),*)) => {{
        use stir_der::adapter::{BTreeIndex as B, BrieIndex as R};
        match ($repr, $arity) {
            (ReprKind::BTree, 1) => $self.$method::<$out, $prof, 1, _>($idx.as_any().downcast_ref::<B<1>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 2) => $self.$method::<$out, $prof, 2, _>($idx.as_any().downcast_ref::<B<2>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 3) => $self.$method::<$out, $prof, 3, _>($idx.as_any().downcast_ref::<B<3>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 4) => $self.$method::<$out, $prof, 4, _>($idx.as_any().downcast_ref::<B<4>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 5) => $self.$method::<$out, $prof, 5, _>($idx.as_any().downcast_ref::<B<5>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 6) => $self.$method::<$out, $prof, 6, _>($idx.as_any().downcast_ref::<B<6>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 7) => $self.$method::<$out, $prof, 7, _>($idx.as_any().downcast_ref::<B<7>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 8) => $self.$method::<$out, $prof, 8, _>($idx.as_any().downcast_ref::<B<8>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 9) => $self.$method::<$out, $prof, 9, _>($idx.as_any().downcast_ref::<B<9>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 10) => $self.$method::<$out, $prof, 10, _>($idx.as_any().downcast_ref::<B<10>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 11) => $self.$method::<$out, $prof, 11, _>($idx.as_any().downcast_ref::<B<11>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 12) => $self.$method::<$out, $prof, 12, _>($idx.as_any().downcast_ref::<B<12>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 13) => $self.$method::<$out, $prof, 13, _>($idx.as_any().downcast_ref::<B<13>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 14) => $self.$method::<$out, $prof, 14, _>($idx.as_any().downcast_ref::<B<14>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 15) => $self.$method::<$out, $prof, 15, _>($idx.as_any().downcast_ref::<B<15>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::BTree, 16) => $self.$method::<$out, $prof, 16, _>($idx.as_any().downcast_ref::<B<16>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 1) => $self.$method::<$out, $prof, 1, _>($idx.as_any().downcast_ref::<R<1>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 2) => $self.$method::<$out, $prof, 2, _>($idx.as_any().downcast_ref::<R<2>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 3) => $self.$method::<$out, $prof, 3, _>($idx.as_any().downcast_ref::<R<3>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 4) => $self.$method::<$out, $prof, 4, _>($idx.as_any().downcast_ref::<R<4>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 5) => $self.$method::<$out, $prof, 5, _>($idx.as_any().downcast_ref::<R<5>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 6) => $self.$method::<$out, $prof, 6, _>($idx.as_any().downcast_ref::<R<6>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 7) => $self.$method::<$out, $prof, 7, _>($idx.as_any().downcast_ref::<R<7>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 8) => $self.$method::<$out, $prof, 8, _>($idx.as_any().downcast_ref::<R<8>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 9) => $self.$method::<$out, $prof, 9, _>($idx.as_any().downcast_ref::<R<9>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 10) => $self.$method::<$out, $prof, 10, _>($idx.as_any().downcast_ref::<R<10>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 11) => $self.$method::<$out, $prof, 11, _>($idx.as_any().downcast_ref::<R<11>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 12) => $self.$method::<$out, $prof, 12, _>($idx.as_any().downcast_ref::<R<12>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 13) => $self.$method::<$out, $prof, 13, _>($idx.as_any().downcast_ref::<R<13>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 14) => $self.$method::<$out, $prof, 14, _>($idx.as_any().downcast_ref::<R<14>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 15) => $self.$method::<$out, $prof, 15, _>($idx.as_any().downcast_ref::<R<15>>().expect("index matches its spec").raw(), $($arg),*),
            (ReprKind::Brie, 16) => $self.$method::<$out, $prof, 16, _>($idx.as_any().downcast_ref::<R<16>>().expect("index matches its spec").raw(), $($arg),*),
            (repr, arity) => unreachable!("no pre-instantiated index for {repr:?}/{arity}"),
        }
    }};
}

/// Dispatches a mutating insert to the monomorphized adapter.
macro_rules! with_static_adapter {
    ($repr:expr, $arity:expr, $idx:expr, $tuple:expr) => {{
        use stir_der::adapter::{BTreeIndex as B, BrieIndex as R};
        match ($repr, $arity) {
            (ReprKind::BTree, 1) => insert_one::<1, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<1>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 2) => insert_one::<2, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<2>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 3) => insert_one::<3, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<3>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 4) => insert_one::<4, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<4>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 5) => insert_one::<5, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<5>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 6) => insert_one::<6, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<6>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 7) => insert_one::<7, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<7>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 8) => insert_one::<8, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<8>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 9) => insert_one::<9, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<9>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 10) => insert_one::<10, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<10>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 11) => insert_one::<11, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<11>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 12) => insert_one::<12, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<12>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 13) => insert_one::<13, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<13>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 14) => insert_one::<14, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<14>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 15) => insert_one::<15, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<15>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::BTree, 16) => insert_one::<16, _>(
                $idx.as_any_mut()
                    .downcast_mut::<B<16>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 1) => insert_one::<1, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<1>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 2) => insert_one::<2, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<2>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 3) => insert_one::<3, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<3>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 4) => insert_one::<4, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<4>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 5) => insert_one::<5, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<5>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 6) => insert_one::<6, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<6>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 7) => insert_one::<7, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<7>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 8) => insert_one::<8, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<8>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 9) => insert_one::<9, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<9>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 10) => insert_one::<10, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<10>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 11) => insert_one::<11, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<11>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 12) => insert_one::<12, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<12>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 13) => insert_one::<13, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<13>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 14) => insert_one::<14, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<14>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 15) => insert_one::<15, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<15>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (ReprKind::Brie, 16) => insert_one::<16, _>(
                $idx.as_any_mut()
                    .downcast_mut::<R<16>>()
                    .expect("index matches its spec"),
                $tuple,
            ),
            (repr, arity) => unreachable!("no pre-instantiated index for {repr:?}/{arity}"),
        }
    }};
}

/// Monomorphized single-index insert (the paper's `evalInsert<RelType>`,
/// Fig. 11c): the tuple is encoded and inserted with no virtual calls.
#[inline(always)]
fn insert_one<const N: usize, A: StaticAdapter<N>>(adapter: &mut A, tuple: &[u32]) -> bool {
    let enc = adapter.encode_tuple(tuple);
    adapter.insert_encoded(enc)
}

/// The immutable shared view of an evaluation: everything worker threads
/// of a parallel scan may read concurrently. The program and interpreter
/// tree are plain data, the database is `Sync` (relations and symbols sit
/// behind `RwLock`s), and the configuration is `Copy` — so the view itself
/// is `Copy` and crosses thread boundaries freely.
#[derive(Debug, Clone, Copy)]
struct EvalCx<'p, 'd> {
    ram: &'p RamProgram,
    db: &'d Database,
    config: InterpreterConfig,
}

/// The tree interpreter: the shared evaluation view plus one frame of
/// mutable per-thread state (profiling counters, the optional insert
/// sink). The coordinator's instance drives statements; parallel scans
/// spawn additional worker instances over the same [`EvalCx`].
#[derive(Debug)]
pub struct Interpreter<'p, 'd> {
    cx: EvalCx<'p, 'd>,
    prof: Option<ProfileState>,
    tel: Option<&'d Telemetry>,
    /// `Some` on worker instances: projections are buffered here instead
    /// of written to the database (see [`InsertSink`]).
    sink: Option<RefCell<InsertSink>>,
    /// Coordinator-side accumulator of parallel-scan scheduling
    /// statistics (morsels claimed, stolen, per-worker tuples). Worker
    /// frames never touch it — they cannot fan out.
    par: RefCell<ParallelReport>,
}

impl<'p, 'd> Interpreter<'p, 'd> {
    /// Creates an interpreter over a database.
    pub fn new(ram: &'p RamProgram, db: &'d Database, config: InterpreterConfig) -> Self {
        Interpreter {
            cx: EvalCx { ram, db, config },
            prof: None,
            tel: None,
            sink: None,
            par: RefCell::new(ParallelReport::default()),
        }
    }

    /// Creates a worker frame over the shared view: a private profile
    /// state (so the `Cell`-based counters never cross threads) and a
    /// fresh insert sink. Workers only evaluate operations — statements,
    /// spans, and frontier samples stay on the coordinator — so no
    /// telemetry is attached.
    fn worker(cx: EvalCx<'p, 'd>, with_prof: bool) -> Self {
        Interpreter {
            cx,
            prof: with_prof.then(|| ProfileState::new(&[], cx.ram.relations.len())),
            tel: None,
            sink: Some(RefCell::new(InsertSink::new_with(
                cx.ram,
                cx.db.provenance(),
            ))),
            par: RefCell::new(ParallelReport::default()),
        }
    }

    /// Attaches a telemetry bundle: the tracer receives per-statement
    /// spans (when [`InterpreterConfig::trace`] is on), the logger the
    /// per-iteration heartbeats. Counters derived from the profiling
    /// state are published by the engine after the run.
    pub fn attach_telemetry(&mut self, tel: &'d Telemetry) {
        self.tel = Some(tel);
    }

    /// Executes a built interpreter tree to completion.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (division by zero, ...).
    pub fn run(&mut self, tree: &ITree<'p>) -> Result<(), EvalError> {
        if self.cx.config.profile {
            self.prof = Some(ProfileState::new(&tree.labels, self.cx.ram.relations.len()));
        }
        // `PROF = true` selects the instrumented instantiation; tracing
        // rides on it so the common pair stays completely counter-free.
        let prof = self.cx.config.profile || self.cx.config.trace;
        let flow = match (self.cx.config.outlined_handlers, prof) {
            (false, false) => self.eval_stmt::<false, false>(&tree.root)?,
            (false, true) => self.eval_stmt::<false, true>(&tree.root)?,
            (true, false) => self.eval_stmt::<true, false>(&tree.root)?,
            (true, true) => self.eval_stmt::<true, true>(&tree.root)?,
        };
        debug_assert_eq!(flow, Flow::Ok, "Exit escaped all loops");
        Ok(())
    }

    /// The profiling report of the last run, if profiling was enabled.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.prof.as_ref().map(ProfileState::report)
    }

    /// Parallel-execution statistics accumulated across every scan that
    /// was marked parallel and eligible to fan out: `None` when no such
    /// scan ran (sequential configuration, or nothing marked).
    pub fn parallel_report(&self) -> Option<ParallelReport> {
        let par = self.par.borrow();
        (par.scans > 0 || par.small_scans > 0).then(|| par.clone())
    }

    #[inline]
    fn tick<const PROF: bool>(&self) {
        if PROF {
            if let Some(p) = &self.prof {
                p.count_dispatch();
            }
        }
    }

    #[inline]
    fn tick_iter<const PROF: bool>(&self) {
        if PROF {
            if let Some(p) = &self.prof {
                p.count_iterations(1);
            }
        }
    }

    /// Runs `f` against the profiling state on the instrumented
    /// instantiation; compiles to nothing on the plain one.
    #[inline]
    fn tick_prof<const PROF: bool>(&self, f: impl FnOnce(&ProfileState)) {
        if PROF {
            if let Some(p) = &self.prof {
                f(p);
            }
        }
    }

    // ---- statements ---------------------------------------------------

    fn eval_stmt<const OUT: bool, const PROF: bool>(
        &self,
        node: &INode<'p>,
    ) -> Result<Flow, EvalError> {
        self.tick::<PROF>();
        if PROF && self.cx.config.trace {
            if let Some(tel) = self.tel {
                if tel.tracer.enabled() {
                    if let Some(name) = Self::span_name(self.cx.ram, node) {
                        let _guard = tel.tracer.span(&name);
                        return self.eval_stmt_inner::<OUT, PROF>(node);
                    }
                }
            }
        }
        self.eval_stmt_inner::<OUT, PROF>(node)
    }

    /// The span name of a statement node, or `None` for transparent
    /// sequencing nodes that would only add noise to the folded stacks.
    fn span_name(ram: &RamProgram, node: &INode<'_>) -> Option<String> {
        match node {
            INode::Loop { id, .. } => Some(format!("loop#{id}")),
            INode::Query { label, .. } => Some(format!("query:{label}")),
            INode::Clear(rel) => Some(format!("clear:{}", ram.name_of(*rel))),
            INode::Merge { into, from } => Some(format!(
                "merge:{}->{}",
                ram.name_of(*from),
                ram.name_of(*into)
            )),
            INode::Swap(a, b) => Some(format!("swap:{},{}", ram.name_of(*a), ram.name_of(*b))),
            _ => None,
        }
    }

    /// Records the semi-naive frontier — the sizes of every `delta_R`
    /// relation — after a completed fixpoint iteration, and emits the
    /// per-iteration heartbeat. Only reachable on the instrumented
    /// instantiation.
    #[cold]
    fn sample_frontier(&self, loop_id: usize, iteration: u64) {
        let deltas: Vec<(usize, u64)> = self
            .cx
            .ram
            .deltas()
            .map(|r| (r.id.0, self.cx.db.rd(r.id).len() as u64))
            .collect();
        if let Some(tel) = self.tel {
            if tel.logger.enabled(LogLevel::Info) {
                let parts: Vec<String> = deltas
                    .iter()
                    .map(|&(rel, n)| format!("{}={n}", self.cx.ram.relations[rel].name))
                    .collect();
                tel.logger.log(
                    LogLevel::Info,
                    &format!(
                        "loop#{loop_id} iteration {iteration}: frontier {}",
                        parts.join(" ")
                    ),
                );
            }
        }
        if let Some(p) = &self.prof {
            p.record_frontier(loop_id, iteration, deltas);
        }
    }

    fn eval_stmt_inner<const OUT: bool, const PROF: bool>(
        &self,
        node: &INode<'p>,
    ) -> Result<Flow, EvalError> {
        match node {
            INode::Seq(stmts) => {
                for s in stmts {
                    if self.eval_stmt::<OUT, PROF>(s)? == Flow::Exit {
                        return Ok(Flow::Exit);
                    }
                }
                Ok(Flow::Ok)
            }
            INode::Loop { id, body } => {
                let mut iteration: u64 = 0;
                loop {
                    if self.eval_stmt::<OUT, PROF>(body)? == Flow::Exit {
                        break;
                    }
                    if PROF {
                        self.sample_frontier(*id, iteration);
                    }
                    iteration += 1;
                }
                Ok(Flow::Ok)
            }
            INode::Exit(cond) => {
                if self.eval_cond::<OUT, PROF>(cond, &[])? {
                    Ok(Flow::Exit)
                } else {
                    Ok(Flow::Ok)
                }
            }
            INode::Query {
                label,
                arena_size,
                body,
                ..
            } => {
                if self.cx.db.provenance() {
                    // Annotated evaluation: each executed query opens a
                    // new derivation epoch, so everything it derives is
                    // strictly higher than all of its premises (a query
                    // never scans its own projection target). Statements
                    // run on the coordinator only, so the bump is
                    // job-count-invariant.
                    self.cx
                        .db
                        .epoch
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                let mut regs = vec![0u32; *arena_size];
                if let Some(p) = &self.prof {
                    let started = p.begin_query();
                    self.eval_op::<OUT, PROF>(body, &mut regs)?;
                    p.end_query(*label, started);
                } else {
                    self.eval_op::<OUT, PROF>(body, &mut regs)?;
                }
                Ok(Flow::Ok)
            }
            INode::Clear(rel) => {
                self.cx.db.wr(*rel).clear();
                Ok(Flow::Ok)
            }
            INode::Merge { into, from } => {
                let from = self.cx.db.rd(*from);
                self.cx.db.wr(*into).merge_from(&from);
                Ok(Flow::Ok)
            }
            INode::Swap(a, b) => {
                let mut ra = self.cx.db.wr(*a);
                let mut rb = self.cx.db.wr(*b);
                ra.swap_data(&mut rb);
                Ok(Flow::Ok)
            }
            other => unreachable!("not a statement node: {other:?}"),
        }
    }

    // ---- operations ---------------------------------------------------

    fn eval_op<const OUT: bool, const PROF: bool>(
        &self,
        node: &INode<'p>,
        regs: &mut [u32],
    ) -> Result<(), EvalError> {
        self.tick::<PROF>();
        match node {
            INode::Filter { cond, body } => {
                if self.eval_cond::<OUT, PROF>(cond, regs)? {
                    self.eval_op::<OUT, PROF>(body, regs)?;
                }
                Ok(())
            }
            INode::FilterNative { func, body } => {
                self.tick_prof::<PROF>(ProfileState::count_super);
                if func(regs) {
                    self.eval_op::<OUT, PROF>(body, regs)?;
                }
                Ok(())
            }
            INode::ScanStatic {
                rel,
                index,
                dst,
                copy,
                parallel,
                body,
            } => {
                self.tick_prof::<PROF>(|p| p.count_scan(rel.0));
                if self.go_parallel(*parallel, dst) {
                    return self.parallel_scan::<OUT, PROF>(
                        *rel, *index, dst, copy, false, None, body, regs,
                    );
                }
                if OUT {
                    outline(|| self.scan_static::<OUT, PROF>(*rel, *index, dst, copy, body, regs))
                } else {
                    self.scan_static::<OUT, PROF>(*rel, *index, dst, copy, body, regs)
                }
            }
            INode::ScanDynamic {
                rel,
                index,
                dst,
                copy,
                buffered,
                parallel,
                body,
            } => {
                self.tick_prof::<PROF>(|p| p.count_scan(rel.0));
                if self.go_parallel(*parallel, dst) {
                    return self.parallel_scan::<OUT, PROF>(
                        *rel, *index, dst, copy, *buffered, None, body, regs,
                    );
                }
                if OUT {
                    outline(|| {
                        self.scan_dynamic::<OUT, PROF>(
                            *rel, *index, dst, copy, *buffered, body, regs,
                        )
                    })
                } else {
                    self.scan_dynamic::<OUT, PROF>(*rel, *index, dst, copy, *buffered, body, regs)
                }
            }
            INode::IndexScanStatic {
                rel,
                index,
                dst,
                copy,
                bounds,
                parallel,
                body,
            } => {
                self.tick_prof::<PROF>(|p| p.count_range(rel.0));
                if self.go_parallel(*parallel, dst) {
                    return self.parallel_scan::<OUT, PROF>(
                        *rel,
                        *index,
                        dst,
                        copy,
                        false,
                        Some(bounds),
                        body,
                        regs,
                    );
                }
                if OUT {
                    outline(|| {
                        self.index_scan_static::<OUT, PROF>(
                            *rel, *index, dst, copy, bounds, body, regs,
                        )
                    })
                } else {
                    self.index_scan_static::<OUT, PROF>(*rel, *index, dst, copy, bounds, body, regs)
                }
            }
            INode::IndexScanDynamic {
                rel,
                index,
                dst,
                copy,
                buffered,
                bounds,
                parallel,
                body,
            } => {
                self.tick_prof::<PROF>(|p| p.count_range(rel.0));
                if self.go_parallel(*parallel, dst) {
                    return self.parallel_scan::<OUT, PROF>(
                        *rel,
                        *index,
                        dst,
                        copy,
                        *buffered,
                        Some(bounds),
                        body,
                        regs,
                    );
                }
                if OUT {
                    outline(|| {
                        self.index_scan_dynamic::<OUT, PROF>(
                            *rel, *index, dst, copy, *buffered, bounds, body, regs,
                        )
                    })
                } else {
                    self.index_scan_dynamic::<OUT, PROF>(
                        *rel, *index, dst, copy, *buffered, bounds, body, regs,
                    )
                }
            }
            INode::ProjectSuper {
                rel,
                static_dispatch,
                rule,
                template,
                elems,
                generic,
            } => {
                self.tick_prof::<PROF>(ProfileState::count_super);
                let mut tuple = [0u32; MAX_ARITY];
                let n = template.len();
                tuple[..n].copy_from_slice(template);
                for &(c, ofs) in elems {
                    tuple[c] = regs[ofs];
                }
                for (c, e) in generic {
                    tuple[*c] = self.eval_expr::<OUT, PROF>(e, regs)?;
                }
                self.insert::<PROF>(*rel, *static_dispatch, &tuple[..n], *rule);
                Ok(())
            }
            INode::ProjectPlain {
                rel,
                static_dispatch,
                rule,
                values,
            } => {
                let mut tuple = [0u32; MAX_ARITY];
                for (c, v) in values.iter().enumerate() {
                    tuple[c] = self.eval_expr::<OUT, PROF>(v, regs)?;
                }
                self.insert::<PROF>(*rel, *static_dispatch, &tuple[..values.len()], *rule);
                Ok(())
            }
            INode::Aggregate {
                static_dispatch,
                rel,
                index,
                func,
                dst,
                copy,
                bounds,
                value,
                body,
            } => {
                self.tick_prof::<PROF>(|p| p.count_range(rel.0));
                if OUT {
                    outline(|| {
                        self.aggregate::<OUT, PROF>(
                            *static_dispatch,
                            *rel,
                            *index,
                            *func,
                            dst,
                            copy,
                            bounds,
                            value.as_deref(),
                            body,
                            regs,
                        )
                    })
                } else {
                    self.aggregate::<OUT, PROF>(
                        *static_dispatch,
                        *rel,
                        *index,
                        *func,
                        dst,
                        copy,
                        bounds,
                        value.as_deref(),
                        body,
                        regs,
                    )
                }
            }
            other => unreachable!("not an operation node: {other:?}"),
        }
    }

    // ---- scan handlers --------------------------------------------------

    #[inline(always)]
    fn scan_static<const OUT: bool, const PROF: bool>(
        &self,
        rel: RelId,
        index: usize,
        dst: &Slot,
        copy: &CopySpec,
        body: &INode<'p>,
        regs: &mut [u32],
    ) -> Result<(), EvalError> {
        let meta = &self.cx.ram.relations[rel.0];
        let r = self.cx.db.rd(rel);
        if meta.repr == ReprKind::EqRel {
            let eq = r
                .index(index)
                .as_any()
                .downcast_ref::<EqRelIndex>()
                .expect("eqrel index");
            for pair in eq.raw().iter_pairs() {
                self.tick_iter::<PROF>();
                self.copy_out(dst, copy, &pair, regs);
                self.eval_op::<OUT, PROF>(body, regs)?;
            }
            return Ok(());
        }
        with_static_set!(
            self,
            OUT,
            PROF,
            meta.repr,
            meta.arity,
            r.index(index),
            scan_set,
            (dst, copy, body, regs)
        )
    }

    #[inline(always)]
    fn copy_out(&self, dst: &Slot, copy: &CopySpec, t: &[u32], regs: &mut [u32]) {
        match copy {
            CopySpec::Direct => regs[dst.ofs..dst.ofs + t.len()].copy_from_slice(t),
            CopySpec::Permuted(ord) => {
                for (i, &c) in ord.iter().enumerate() {
                    regs[dst.ofs + c] = t[i];
                }
            }
        }
    }

    #[inline(always)]
    fn scan_set<const OUT: bool, const PROF: bool, const N: usize, S: StaticSet<N>>(
        &self,
        set: &S,
        dst: &Slot,
        copy: &CopySpec,
        body: &INode<'p>,
        regs: &mut [u32],
    ) -> Result<(), EvalError> {
        match copy {
            CopySpec::Direct => {
                for t in set.iter_tuples() {
                    self.tick_iter::<PROF>();
                    regs[dst.ofs..dst.ofs + N].copy_from_slice(&t);
                    self.eval_op::<OUT, PROF>(body, regs)?;
                }
            }
            CopySpec::Permuted(ord) => {
                for t in set.iter_tuples() {
                    self.tick_iter::<PROF>();
                    for i in 0..N {
                        regs[dst.ofs + ord[i]] = t[i];
                    }
                    self.eval_op::<OUT, PROF>(body, regs)?;
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn index_scan_static<const OUT: bool, const PROF: bool>(
        &self,
        rel: RelId,
        index: usize,
        dst: &Slot,
        copy: &CopySpec,
        bounds: &Bounds<'p>,
        body: &INode<'p>,
        regs: &mut [u32],
    ) -> Result<(), EvalError> {
        let mut lo = [0u32; MAX_ARITY];
        let mut hi = [u32::MAX; MAX_ARITY];
        self.fill_bounds::<OUT, PROF>(bounds, regs, &mut lo, &mut hi)?;
        let meta = &self.cx.ram.relations[rel.0];
        let r = self.cx.db.rd(rel);
        if meta.repr == ReprKind::EqRel {
            let eq = r
                .index(index)
                .as_any()
                .downcast_ref::<EqRelIndex>()
                .expect("eqrel index");
            for pair in eq.raw().range_pairs([lo[0], lo[1]], [hi[0], hi[1]]) {
                self.tick_iter::<PROF>();
                self.copy_out(dst, copy, &pair, regs);
                self.eval_op::<OUT, PROF>(body, regs)?;
            }
            return Ok(());
        }
        with_static_set!(
            self,
            OUT,
            PROF,
            meta.repr,
            meta.arity,
            r.index(index),
            range_set,
            (&lo, &hi, dst, copy, body, regs)
        )
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn range_set<const OUT: bool, const PROF: bool, const N: usize, S: StaticSet<N>>(
        &self,
        set: &S,
        lo: &[u32; MAX_ARITY],
        hi: &[u32; MAX_ARITY],
        dst: &Slot,
        copy: &CopySpec,
        body: &INode<'p>,
        regs: &mut [u32],
    ) -> Result<(), EvalError> {
        let lo: [u32; N] = lo[..N].try_into().expect("arity");
        let hi: [u32; N] = hi[..N].try_into().expect("arity");
        match copy {
            CopySpec::Direct => {
                for t in set.range_tuples(&lo, &hi) {
                    self.tick_iter::<PROF>();
                    regs[dst.ofs..dst.ofs + N].copy_from_slice(&t);
                    self.eval_op::<OUT, PROF>(body, regs)?;
                }
            }
            CopySpec::Permuted(ord) => {
                for t in set.range_tuples(&lo, &hi) {
                    self.tick_iter::<PROF>();
                    for i in 0..N {
                        regs[dst.ofs + ord[i]] = t[i];
                    }
                    self.eval_op::<OUT, PROF>(body, regs)?;
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn scan_dynamic<const OUT: bool, const PROF: bool>(
        &self,
        rel: RelId,
        index: usize,
        dst: &Slot,
        copy: &CopySpec,
        buffered: bool,
        body: &INode<'p>,
        regs: &mut [u32],
    ) -> Result<(), EvalError> {
        let r = self.cx.db.rd(rel);
        let mut it: Box<dyn TupleIter + '_> = if buffered {
            Box::new(BufferedTupleIter::new(r.index(index).scan()))
        } else {
            r.index(index).scan()
        };
        self.drive_dynamic::<OUT, PROF>(&mut *it, dst, copy, body, regs)
    }

    /// The shared virtual-iterator loop of the dynamic scan paths.
    #[inline(always)]
    fn drive_dynamic<const OUT: bool, const PROF: bool>(
        &self,
        it: &mut dyn TupleIter,
        dst: &Slot,
        copy: &CopySpec,
        body: &INode<'p>,
        regs: &mut [u32],
    ) -> Result<(), EvalError> {
        let mut scratch = [0u32; MAX_ARITY];
        let n = dst.arity;
        while let Some(t) = it.next_tuple() {
            scratch[..n].copy_from_slice(t);
            self.tick_iter::<PROF>();
            self.copy_out(dst, copy, &scratch[..n], regs);
            self.eval_op::<OUT, PROF>(body, regs)?;
        }
        Ok(())
    }

    /// Whether a scan marked `parallel` should actually fan out: only with
    /// more than one configured job, never from inside a worker (every
    /// scan level carries the mark, so the outermost one that fans out
    /// claims the whole subtree), and never for nullary relations (there
    /// is nothing to chunk).
    #[inline]
    fn go_parallel(&self, parallel: bool, dst: &Slot) -> bool {
        parallel && self.cx.config.jobs > 1 && self.sink.is_none() && dst.arity > 0
    }

    /// Evaluates a scan marked parallel by splitting its source index
    /// into morsels drained by the configured number of worker threads
    /// from a shared work-stealing [`MorselQueue`].
    ///
    /// The coordinator resolves the search bounds once, takes a read guard
    /// on the scanned relation, and asks the index for many small disjoint
    /// chunks via [`stir_der::IndexAdapter::morsels`] (structural B-tree /
    /// brie splits, or a size-bounded stream for representations that
    /// cannot chunk). An index no larger than one morsel is not worth a
    /// fan-out and runs the ordinary sequential loop on the coordinator
    /// instead — identical profile counts by construction.
    ///
    /// Each worker owns a fresh frame — a cloned register arena, a private
    /// profile state, and an [`InsertSink`] absorbing every projection —
    /// and pulls tuple *batches* off the queue: one virtual `fill` per
    /// batch replaces per-tuple virtual dispatch, and the batch loop runs
    /// the rule body unchanged (including statically dispatched inner
    /// scans and probes), ticking the same per-tuple counters as the
    /// sequential path. After the join the coordinator folds worker
    /// counters and scheduling stats into the main profile and merges the
    /// sinks into the real relations, counting fresh inserts exactly as
    /// sequential evaluation would.
    ///
    /// Semi-naive translation guarantees a query never reads the relation
    /// it projects into, so deferring inserts to the end of the scan is
    /// invisible to the rule itself, and deduplicating at merge time makes
    /// results and profiles independent of the job count, the morsel
    /// size, and the steal schedule. If a worker fails it poisons the
    /// queue so the others stop early; the first error in worker-id order
    /// wins and no partial results are merged.
    #[allow(clippy::too_many_arguments)]
    fn parallel_scan<const OUT: bool, const PROF: bool>(
        &self,
        rel: RelId,
        index: usize,
        dst: &Slot,
        copy: &CopySpec,
        buffered: bool,
        bounds: Option<&Bounds<'p>>,
        body: &INode<'p>,
        regs: &mut [u32],
    ) -> Result<(), EvalError> {
        let mut lo = [0u32; MAX_ARITY];
        let mut hi = [u32::MAX; MAX_ARITY];
        if let Some(b) = bounds {
            self.fill_bounds::<OUT, PROF>(b, regs, &mut lo, &mut hi)?;
        }
        let cx = self.cx;
        let with_prof = self.prof.is_some();
        let jobs = cx.config.jobs;
        let target = cx.config.morsel_size.max(1);
        type Outcome = (
            Option<ProfileState>,
            InsertSink,
            WorkerStats,
            Option<EvalError>,
        );
        let outcomes: Vec<Outcome> = {
            let r = cx.db.rd(rel);
            let idx = r.index(index);
            if idx.len() <= target {
                // A single morsel: fan-out overhead would dominate. The
                // `buffered` flag still applies — this is the ordinary
                // dynamic loop, just reached through the parallel gate.
                self.par.borrow_mut().small_scans += 1;
                let inner = match bounds {
                    Some(b) => idx.range(&lo[..b.arity], &hi[..b.arity]),
                    None => idx.scan(),
                };
                let mut it: Box<dyn TupleIter + '_> = if buffered {
                    Box::new(BufferedTupleIter::new(inner))
                } else {
                    inner
                };
                return self.drive_dynamic::<OUT, PROF>(&mut *it, dst, copy, body, regs);
            }
            let morsels = match bounds {
                Some(b) => idx.morsels_range(&lo[..b.arity], &hi[..b.arity], target),
                None => idx.morsels(target),
            };
            let queue = MorselQueue::new(morsels, jobs, target);
            let queue = &queue;
            let seed: Vec<u32> = regs.to_vec();
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..jobs)
                    .map(|w| {
                        let seed = seed.clone();
                        s.spawn(move || {
                            let worker = Interpreter::worker(cx, with_prof);
                            let mut regs = seed;
                            let mut handle = queue.worker(w);
                            let mut batch: Vec<u32> = Vec::new();
                            let mut err = None;
                            'outer: while handle.next_batch(&mut batch) > 0 {
                                for t in batch.chunks_exact(dst.arity) {
                                    worker.tick_iter::<PROF>();
                                    worker.copy_out(dst, copy, t, &mut regs);
                                    if let Err(e) = worker.eval_op::<OUT, PROF>(body, &mut regs) {
                                        queue.poison();
                                        err = Some(e);
                                        break 'outer;
                                    }
                                }
                            }
                            let stats = handle.stats();
                            let sink = worker.sink.expect("worker has a sink").into_inner();
                            (worker.prof, sink, stats, err)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                    .collect()
            })
        };
        let mut sinks = Vec::with_capacity(outcomes.len());
        let mut first_err = None;
        {
            let mut par = self.par.borrow_mut();
            par.scans += 1;
            if par.workers.len() < jobs {
                par.workers.resize(jobs, WorkerStats::default());
            }
            for (w, (wprof, sink, mut stats, err)) in outcomes.into_iter().enumerate() {
                if let Some(wp) = &wprof {
                    // Whole-frame iterations (outer tuples plus inner
                    // joins/probes): the balance metric.
                    stats.work = wp.iterations.get();
                    if let Some(p) = &self.prof {
                        p.absorb(wp);
                    }
                }
                par.workers[w].absorb(&stats);
                if first_err.is_none() {
                    first_err = err;
                }
                sinks.push(sink);
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let prov = cx.db.provenance();
        let height = if prov {
            cx.db.epoch.load(std::sync::atomic::Ordering::Relaxed)
        } else {
            0
        };
        for sink in sinks {
            for (target, buffer) in sink.into_buffers() {
                let arity = cx.ram.relations[target.0].arity;
                let mut t = cx.db.wr(target);
                for tuple in buffer.tuples() {
                    if prov {
                        // Annotated sinks widen tuples by a trailing
                        // rule-id column; only the first worker to land a
                        // tuple annotates it, so heights stay minimal and
                        // independent of the job count.
                        let (bare, rule) = tuple.split_at(arity);
                        if t.insert(bare) {
                            t.record_annotation(bare, height, rule[0]);
                            self.tick_prof::<PROF>(|p| p.count_insert(target.0));
                        }
                    } else if t.insert(tuple) {
                        self.tick_prof::<PROF>(|p| p.count_insert(target.0));
                    }
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn index_scan_dynamic<const OUT: bool, const PROF: bool>(
        &self,
        rel: RelId,
        index: usize,
        dst: &Slot,
        copy: &CopySpec,
        buffered: bool,
        bounds: &Bounds<'p>,
        body: &INode<'p>,
        regs: &mut [u32],
    ) -> Result<(), EvalError> {
        let mut lo = [0u32; MAX_ARITY];
        let mut hi = [u32::MAX; MAX_ARITY];
        self.fill_bounds::<OUT, PROF>(bounds, regs, &mut lo, &mut hi)?;
        let n = bounds.arity;
        let r = self.cx.db.rd(rel);
        let mut it: Box<dyn TupleIter + '_> = if buffered {
            Box::new(BufferedTupleIter::new(
                r.index(index).range(&lo[..n], &hi[..n]),
            ))
        } else {
            r.index(index).range(&lo[..n], &hi[..n])
        };
        self.drive_dynamic::<OUT, PROF>(&mut *it, dst, copy, body, regs)
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn aggregate<const OUT: bool, const PROF: bool>(
        &self,
        static_dispatch: bool,
        rel: RelId,
        index: usize,
        func: AggFunc,
        dst: &Slot,
        copy: &CopySpec,
        bounds: &Bounds<'p>,
        value: Option<&INode<'p>>,
        body: &INode<'p>,
        regs: &mut [u32],
    ) -> Result<(), EvalError> {
        let mut lo = [0u32; MAX_ARITY];
        let mut hi = [u32::MAX; MAX_ARITY];
        self.fill_bounds::<OUT, PROF>(bounds, regs, &mut lo, &mut hi)?;
        let meta = &self.cx.ram.relations[rel.0];
        let mut acc = AggAcc::new(func);

        if meta.arity == 0 {
            // Aggregating a nullary relation: one empty match if present.
            if !self.cx.db.rd(rel).is_empty() {
                acc.add(0);
            }
        } else {
            let r = self.cx.db.rd(rel);
            let n = meta.arity;
            if static_dispatch && meta.repr != ReprKind::EqRel {
                with_static_set!(
                    self,
                    OUT,
                    PROF,
                    meta.repr,
                    meta.arity,
                    r.index(index),
                    agg_set,
                    (&lo, &hi, dst, copy, value, &mut acc, regs)
                )?;
            } else {
                let mut it = BufferedTupleIter::new(r.index(index).range(&lo[..n], &hi[..n]));
                let mut scratch = [0u32; MAX_ARITY];
                while let Some(t) = it.next_tuple() {
                    scratch[..n].copy_from_slice(t);
                    self.tick_iter::<PROF>();
                    self.copy_out(dst, copy, &scratch[..n], regs);
                    let v = match value {
                        Some(e) => self.eval_expr::<OUT, PROF>(e, regs)?,
                        None => 0,
                    };
                    acc.add(v);
                }
            }
        }

        match acc.finish() {
            Some(result) => {
                regs[dst.ofs] = result;
                self.eval_op::<OUT, PROF>(body, regs)
            }
            // min/max over an empty match set: the aggregate fails and the
            // body never runs (Soufflé semantics).
            None => Ok(()),
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn agg_set<const OUT: bool, const PROF: bool, const N: usize, S: StaticSet<N>>(
        &self,
        set: &S,
        lo: &[u32; MAX_ARITY],
        hi: &[u32; MAX_ARITY],
        dst: &Slot,
        copy: &CopySpec,
        value: Option<&INode<'p>>,
        acc: &mut AggAcc,
        regs: &mut [u32],
    ) -> Result<(), EvalError> {
        let lo: [u32; N] = lo[..N].try_into().expect("arity");
        let hi: [u32; N] = hi[..N].try_into().expect("arity");
        for t in set.range_tuples(&lo, &hi) {
            self.tick_iter::<PROF>();
            self.copy_out(dst, copy, &t, regs);
            let v = match value {
                Some(e) => self.eval_expr::<OUT, PROF>(e, regs)?,
                None => 0,
            };
            acc.add(v);
        }
        Ok(())
    }

    /// Inserts one source-order tuple into all indexes of a relation —
    /// or, on a worker frame, buffers it in the insert sink for the
    /// coordinator to merge after the join.
    fn insert<const PROF: bool>(
        &self,
        rel: RelId,
        static_dispatch: bool,
        tuple: &[u32],
        rule: u32,
    ) {
        if let Some(sink) = &self.sink {
            let mut sink = sink.borrow_mut();
            if sink.prov() {
                sink.push_annotated(rel, tuple, rule);
            } else {
                sink.push(rel, tuple);
            }
            return;
        }
        let meta = &self.cx.ram.relations[rel.0];
        let mut r = self.cx.db.wr(rel);
        let inserted = if !static_dispatch || meta.arity == 0 || meta.repr == ReprKind::EqRel {
            r.insert(tuple)
        } else {
            let mut fresh = true;
            for k in 0..r.index_count() {
                let ins = with_static_adapter!(meta.repr, meta.arity, r.index_mut(k), tuple);
                if k == 0 && !ins {
                    fresh = false;
                    break;
                }
            }
            fresh
        };
        if inserted {
            if self.cx.db.provenance() {
                let height = self.cx.db.epoch.load(std::sync::atomic::Ordering::Relaxed);
                r.record_annotation(tuple, height, rule);
            }
            self.tick_prof::<PROF>(|p| p.count_insert(rel.0));
        }
    }

    // ---- conditions ---------------------------------------------------

    fn eval_cond<const OUT: bool, const PROF: bool>(
        &self,
        node: &INode<'p>,
        regs: &[u32],
    ) -> Result<bool, EvalError> {
        self.tick::<PROF>();
        match node {
            INode::True => Ok(true),
            INode::Conj(cs) => {
                for c in cs {
                    if !self.eval_cond::<OUT, PROF>(c, regs)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            INode::Not(inner) => Ok(!self.eval_cond::<OUT, PROF>(inner, regs)?),
            INode::Cmp { kind, lhs, rhs } => {
                let a = self.eval_expr::<OUT, PROF>(lhs, regs)?;
                let b = self.eval_expr::<OUT, PROF>(rhs, regs)?;
                Ok(eval_cmp(*kind, a, b))
            }
            INode::Empty(rel) => Ok(self.cx.db.rd(*rel).is_empty()),
            INode::ExistsStatic { rel, index, bounds } => {
                self.tick_prof::<PROF>(|p| p.count_exists(rel.0));
                let mut lo = [0u32; MAX_ARITY];
                let mut hi = [u32::MAX; MAX_ARITY];
                self.fill_bounds::<OUT, PROF>(bounds, regs, &mut lo, &mut hi)?;
                let meta = &self.cx.ram.relations[rel.0];
                let r = self.cx.db.rd(*rel);
                if meta.arity == 0 {
                    return Ok(!r.is_empty());
                }
                if meta.repr == ReprKind::EqRel {
                    let eq = r
                        .index(*index)
                        .as_any()
                        .downcast_ref::<EqRelIndex>()
                        .expect("eqrel index");
                    return Ok(if bounds.full {
                        eq.raw().contains(lo[0], lo[1])
                    } else {
                        !eq.raw()
                            .range_pairs([lo[0], lo[1]], [hi[0], hi[1]])
                            .is_empty()
                    });
                }
                if bounds.full {
                    with_static_set!(
                        self,
                        OUT,
                        PROF,
                        meta.repr,
                        meta.arity,
                        r.index(*index),
                        contains_set,
                        (&lo)
                    )
                } else {
                    with_static_set!(
                        self,
                        OUT,
                        PROF,
                        meta.repr,
                        meta.arity,
                        r.index(*index),
                        nonempty_set,
                        (&lo, &hi)
                    )
                }
            }
            INode::ExistsDynamic { rel, index, bounds } => {
                self.tick_prof::<PROF>(|p| p.count_exists(rel.0));
                let mut lo = [0u32; MAX_ARITY];
                let mut hi = [u32::MAX; MAX_ARITY];
                self.fill_bounds::<OUT, PROF>(bounds, regs, &mut lo, &mut hi)?;
                let meta = &self.cx.ram.relations[rel.0];
                let r = self.cx.db.rd(*rel);
                if meta.arity == 0 {
                    return Ok(!r.is_empty());
                }
                let n = bounds.arity;
                if bounds.full {
                    Ok(r.index(*index).contains_stored(&lo[..n]))
                } else {
                    let mut it = r.index(*index).range(&lo[..n], &hi[..n]);
                    Ok(it.next_tuple().is_some())
                }
            }
            other => unreachable!("not a condition node: {other:?}"),
        }
    }

    #[allow(clippy::extra_unused_type_parameters)]
    #[inline(always)]
    fn contains_set<const OUT: bool, const PROF: bool, const N: usize, S: StaticSet<N>>(
        &self,
        set: &S,
        lo: &[u32; MAX_ARITY],
    ) -> Result<bool, EvalError> {
        let key: [u32; N] = lo[..N].try_into().expect("arity");
        Ok(set.contains_tuple(&key))
    }

    #[allow(clippy::extra_unused_type_parameters)]
    #[inline(always)]
    fn nonempty_set<const OUT: bool, const PROF: bool, const N: usize, S: StaticSet<N>>(
        &self,
        set: &S,
        lo: &[u32; MAX_ARITY],
        hi: &[u32; MAX_ARITY],
    ) -> Result<bool, EvalError> {
        let lo: [u32; N] = lo[..N].try_into().expect("arity");
        let hi: [u32; N] = hi[..N].try_into().expect("arity");
        Ok(set.range_nonempty(&lo, &hi))
    }

    #[inline]
    fn fill_bounds<const OUT: bool, const PROF: bool>(
        &self,
        b: &Bounds<'p>,
        regs: &[u32],
        lo: &mut [u32; MAX_ARITY],
        hi: &mut [u32; MAX_ARITY],
    ) -> Result<(), EvalError> {
        lo[..b.arity].copy_from_slice(&b.lo);
        hi[..b.arity].copy_from_slice(&b.hi);
        for &(pos, ofs) in &b.elems {
            let v = regs[ofs];
            lo[pos] = v;
            hi[pos] = v;
        }
        for (pos, e) in &b.dynamic {
            let v = self.eval_expr::<OUT, PROF>(e, regs)?;
            lo[*pos] = v;
            hi[*pos] = v;
        }
        Ok(())
    }

    // ---- expressions ----------------------------------------------------

    fn eval_expr<const OUT: bool, const PROF: bool>(
        &self,
        node: &INode<'p>,
        regs: &[u32],
    ) -> Result<u32, EvalError> {
        self.tick::<PROF>();
        match node {
            INode::Constant(k) => Ok(*k),
            INode::TupleElement { ofs } => Ok(regs[*ofs]),
            INode::AutoInc => Ok(self
                .cx
                .db
                .counter
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)),
            INode::Intrinsic { op, args } => {
                let mut vals = [0u32; 3];
                for (i, a) in args.iter().enumerate() {
                    vals[i] = self.eval_expr::<OUT, PROF>(a, regs)?;
                }
                eval_intrinsic(*op, &vals[..args.len()], &self.cx.db.symbols)
            }
            other => unreachable!("not an expression node: {other:?}"),
        }
    }
}

/// Aggregate accumulator (shared with the provenance matcher).
#[derive(Debug)]
pub(crate) struct AggAcc {
    func: AggFunc,
    count: u64,
    bits: u32,
    seen: bool,
}

impl AggAcc {
    pub(crate) fn new(func: AggFunc) -> Self {
        let bits = match func {
            AggFunc::SumF => 0.0f32.to_bits(),
            _ => 0,
        };
        AggAcc {
            func,
            count: 0,
            bits,
            seen: false,
        }
    }

    #[inline]
    pub(crate) fn add(&mut self, v: u32) {
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::SumS => self.bits = (self.bits as i32).wrapping_add(v as i32) as u32,
            AggFunc::SumU => self.bits = self.bits.wrapping_add(v),
            AggFunc::SumF => self.bits = (f32::from_bits(self.bits) + f32::from_bits(v)).to_bits(),
            AggFunc::MinS => {
                if !self.seen || (v as i32) < (self.bits as i32) {
                    self.bits = v;
                }
            }
            AggFunc::MinU => {
                if !self.seen || v < self.bits {
                    self.bits = v;
                }
            }
            AggFunc::MinF => {
                if !self.seen || f32::from_bits(v) < f32::from_bits(self.bits) {
                    self.bits = v;
                }
            }
            AggFunc::MaxS => {
                if !self.seen || (v as i32) > (self.bits as i32) {
                    self.bits = v;
                }
            }
            AggFunc::MaxU => {
                if !self.seen || v > self.bits {
                    self.bits = v;
                }
            }
            AggFunc::MaxF => {
                if !self.seen || f32::from_bits(v) > f32::from_bits(self.bits) {
                    self.bits = v;
                }
            }
        }
        self.seen = true;
    }

    /// `None` means "aggregate failed" (min/max over nothing).
    pub(crate) fn finish(&self) -> Option<u32> {
        match self.func {
            AggFunc::Count => Some(self.count as u32),
            AggFunc::SumS | AggFunc::SumU | AggFunc::SumF => Some(self.bits),
            _ => self.seen.then_some(self.bits),
        }
    }
}
