//! Runtime errors.

use std::fmt;

/// An evaluation-time failure (division by zero, malformed input data,
/// functor domain errors, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable description.
    pub msg: String,
}

impl EvalError {
    /// Creates an error.
    pub fn new(msg: impl Into<String>) -> Self {
        EvalError { msg: msg.into() }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.msg)
    }
}

impl std::error::Error for EvalError {}

/// Any failure across the whole pipeline (parse → translate → evaluate).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The frontend rejected the program.
    Frontend(stir_frontend::FrontendError),
    /// RAM translation failed.
    Translate(stir_ram::translate::TranslateError),
    /// Evaluation failed.
    Eval(EvalError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Frontend(e) => e.fmt(f),
            EngineError::Translate(e) => e.fmt(f),
            EngineError::Eval(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<stir_frontend::FrontendError> for EngineError {
    fn from(e: stir_frontend::FrontendError) -> Self {
        EngineError::Frontend(e)
    }
}

impl From<stir_ram::translate::TranslateError> for EngineError {
    fn from(e: stir_ram::translate::TranslateError) -> Self {
        EngineError::Translate(e)
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = EvalError::new("division by zero");
        assert_eq!(e.to_string(), "evaluation error: division by zero");
        let ee: EngineError = e.into();
        assert!(ee.to_string().contains("division"));
    }
}
