//! Runtime errors.

use std::fmt;

/// An evaluation-time failure (division by zero, malformed input data,
/// functor domain errors, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable description.
    pub msg: String,
}

impl EvalError {
    /// Creates an error.
    pub fn new(msg: impl Into<String>) -> Self {
        EvalError { msg: msg.into() }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.msg)
    }
}

impl std::error::Error for EvalError {}

/// A durability-layer failure (WAL append/fsync, snapshot write, data-dir
/// recovery). Carries a rendered message instead of the underlying
/// [`std::io::Error`] so [`EngineError`] stays `Clone + PartialEq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError {
    /// Human-readable description, including the failed operation.
    pub msg: String,
}

impl StorageError {
    /// Creates an error.
    pub fn new(msg: impl Into<String>) -> Self {
        StorageError { msg: msg.into() }
    }

    /// Wraps an I/O error with the operation that failed.
    pub fn io(op: &str, e: &std::io::Error) -> Self {
        StorageError {
            msg: format!("{op}: {e}"),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "storage error: {}", self.msg)
    }
}

impl std::error::Error for StorageError {}

/// Any failure across the whole pipeline (parse → translate → evaluate →
/// persist).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The frontend rejected the program.
    Frontend(stir_frontend::FrontendError),
    /// RAM translation failed.
    Translate(stir_ram::translate::TranslateError),
    /// Evaluation failed.
    Eval(EvalError),
    /// The durability layer failed (the batch is *not* acknowledged).
    Storage(StorageError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Frontend(e) => e.fmt(f),
            EngineError::Translate(e) => e.fmt(f),
            EngineError::Eval(e) => e.fmt(f),
            EngineError::Storage(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<stir_frontend::FrontendError> for EngineError {
    fn from(e: stir_frontend::FrontendError) -> Self {
        EngineError::Frontend(e)
    }
}

impl From<stir_ram::translate::TranslateError> for EngineError {
    fn from(e: stir_ram::translate::TranslateError) -> Self {
        EngineError::Translate(e)
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = EvalError::new("division by zero");
        assert_eq!(e.to_string(), "evaluation error: division by zero");
        let ee: EngineError = e.into();
        assert!(ee.to_string().contains("division"));
    }
}
