//! Snapshot format v2: a disk-servable immutable database image.
//!
//! The v1 snapshot (`STIRSNP1`, see [`crate::wal`]) stores every
//! relation as source-order tuples; loading one rebuilds every B-tree
//! index from scratch, so cold start costs a full re-index even though
//! the fixpoint is skipped. Format v2 (`STIRSNP2`) instead persists each
//! index of each disk-backed relation as a *run*: its tuples in sorted
//! stored order, packed little-endian, preceded by a `u64` count. A run
//! is exactly what [`stir_der::disk::BaseRun`] serves pages off, so a
//! restart under `--storage disk` maps the file and is ready to answer
//! queries after reading only the fixed header and the directory — no
//! tuple is touched until a query faults its page in.
//!
//! # Layout
//!
//! ```text
//! offset  0  b"STIRSNP2"
//! offset  8  [u32 version = 2]
//! offset 12  [u64 program fingerprint]
//! offset 20  [u64 dir_offset] [u64 dir_len]
//! offset 36  run region: per run  [u64 count]  count × arity × [u32]
//! dir_offset directory:
//!            [u32 counter]
//!            [u32 symbol_count] × ([u32 len] bytes)
//!            [u32 relation_count] × (
//!                [u32 name_len] name  [u32 arity]  [u32 run_count]
//!                run_count == 0 → inline tuple section (stir_der::dump)
//!                else run_count × (
//!                    [u32 order_len] × [u32 column]
//!                    [u64 tuple_count] [u64 run_offset] [u64 run_len]
//!                    [u32 page_tuples]
//!                    [u32 fence_words] × [u32]   (first tuple per page)
//!                ))
//!            [u64 extra_fact_count] × ([u32 rel_id] [u32 arity] × [u32])
//! len - 4    [u32 crc32 of everything before]
//! ```
//!
//! Relations that are not disk-eligible (nullary, eqrel closures, see
//! [`crate::database::disk_backed`]) keep the v1 inline representation
//! inside the directory (`run_count == 0`). The CRC trailer covers the
//! whole file and is verified *streaming* at open — a bitflip anywhere,
//! including deep inside a multi-gigabyte run region, fails recovery
//! before any tuple is served. Every structural rejection names the byte
//! offset it tripped over. Runs are stored in *stored* (index) order;
//! the writer re-encodes source-layout adapters through
//! [`stir_der::disk::write_run`], so the bytes are identical no matter
//! which engine mode produced them, and the fingerprint guarantees the
//! reader derives the same index orders from the same RAM program.
//!
//! Like v1, the file is written to a same-directory temp file, fsynced,
//! renamed into place, and the directory fsynced — a crash mid-write
//! never damages the previous snapshot. The periodic snapshot path arms
//! the `snapshot_write` fault point; `.compact` arms `compact_write`.

use crate::database::{disk_backed, Database};
use crate::error::StorageError;
use crate::fault::{self, FaultPoint};
use crate::wal::{crc32_feed, put_str, put_u32, put_u64, ByteReader, SnapshotData, SnapshotStats};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use stir_der::disk::{self, BaseRun, DiskIndex, RunFile};
use stir_der::order::Order;
use stir_der::{IndexAdapter, RamDomain};
use stir_ram::program::{RamProgram, RelId, Role};

/// Snapshot v2 file magic.
pub const SNAP2_MAGIC: &[u8; 8] = b"STIRSNP2";

/// Current v2 format version (the `u32` after the magic).
pub const SNAP2_VERSION: u32 = 2;

/// Fixed header length: magic + version + fingerprint + dir offset/len.
pub const SNAP2_HEADER: u64 = 8 + 4 + 8 + 8 + 8;

/// One persisted index run of a disk-backed relation.
#[derive(Debug)]
pub struct Snap2Run {
    /// The index order's column permutation (source column per stored
    /// position).
    pub order: Vec<usize>,
    /// Tuples in the run.
    pub count: usize,
    /// Absolute byte offset of the first tuple word (past the `u64`
    /// count prefix) — what [`BaseRun::new`] wants.
    pub tuple_offset: u64,
    /// Tuples per sparse-index page.
    pub page_tuples: usize,
    /// First stored tuple of every page, flattened.
    pub fence: Vec<RamDomain>,
}

/// One relation's entry in the directory.
#[derive(Debug)]
pub struct Snap2Relation {
    /// Relation name (names, not ids, key the snapshot — same as v1).
    pub name: String,
    /// Column count.
    pub arity: usize,
    /// One run per index, in index order. Empty for inline relations.
    pub runs: Vec<Snap2Run>,
    /// Source-order tuples for non-disk-eligible relations.
    pub inline: Option<Vec<Vec<RamDomain>>>,
}

/// A validated, opened v2 snapshot: the directory plus the shared paged
/// reader over the run region.
pub struct Snap2 {
    /// The `$` auto-increment counter at snapshot time.
    pub counter: u32,
    /// The full symbol table, in id order.
    pub symbols: Vec<String>,
    /// Every `Role::Standard` relation.
    pub relations: Vec<Snap2Relation>,
    /// The externally-inserted fact replay list.
    pub extra_facts: Vec<(RelId, Vec<RamDomain>)>,
    /// The paged file every [`BaseRun`] of this snapshot reads through.
    pub file: Arc<RunFile>,
}

impl Snap2 {
    /// Builds the [`BaseRun`] for relation `rel`'s run `k`, sharing this
    /// snapshot's page cache.
    pub fn base_run(&self, rel: &Snap2Relation, k: usize) -> BaseRun {
        let run = &rel.runs[k];
        BaseRun::new(
            Arc::clone(&self.file),
            run.tuple_offset,
            run.count,
            rel.arity,
            run.page_tuples,
            run.fence.clone(),
        )
    }

    /// Materializes the snapshot into the v1 [`SnapshotData`] shape —
    /// source-order tuples per relation — for engines running with
    /// in-memory storage. Reads every primary run once, sequentially.
    pub fn into_snapshot_data(self) -> SnapshotData {
        let mut relations = Vec::with_capacity(self.relations.len());
        for rel in &self.relations {
            let tuples = match &rel.inline {
                Some(t) => t.clone(),
                None => {
                    // Serve the primary run through a source-layout
                    // DiskIndex: its scan decodes stored order back to
                    // source tuples.
                    let order = Order::new(rel.runs[0].order.clone());
                    let idx = DiskIndex::with_base(order, true, self.base_run(rel, 0));
                    let mut out = Vec::with_capacity(rel.runs[0].count);
                    let mut it = idx.scan();
                    while let Some(t) = it.next_tuple() {
                        out.push(t.to_vec());
                    }
                    out
                }
            };
            relations.push((rel.name.clone(), tuples));
        }
        SnapshotData {
            counter: self.counter,
            symbols: self.symbols,
            relations,
            extra_facts: self.extra_facts,
        }
    }
}

/// Returns true when the file at `path` starts with the v2 magic.
/// Missing or short files are simply "not v2" — the caller falls back
/// to the v1 probe, which produces the proper Missing/Invalid verdict.
pub fn is_v2(path: &Path) -> bool {
    let mut head = [0u8; 8];
    match File::open(path) {
        Ok(mut f) => f.read_exact(&mut head).is_ok() && &head == SNAP2_MAGIC,
        Err(_) => false,
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Serializes the database as a v2 snapshot, atomically (same-directory
/// temp file + fsync + rename + directory fsync).
///
/// `fault_point` is the injection point armed before the temp-file
/// write: [`FaultPoint::SnapshotWrite`] for the periodic snapshot path,
/// [`FaultPoint::CompactWrite`] for `.compact`.
///
/// # Errors
///
/// I/O failures and injected faults; on error the previous snapshot (if
/// any) is untouched.
pub fn write_snapshot_v2(
    path: &Path,
    fp: u64,
    ram: &RamProgram,
    db: &Database,
    extra_facts: &[(RelId, Vec<RamDomain>)],
    fault_point: FaultPoint,
) -> Result<SnapshotStats, StorageError> {
    struct RunMeta {
        order: Vec<usize>,
        count: u64,
        offset: u64,
        len: u64,
        page_tuples: u32,
        fence: Vec<RamDomain>,
    }
    enum RelMeta {
        Runs(Vec<RunMeta>),
        Inline(Vec<u8>),
    }

    let mut buf = Vec::new();
    buf.extend_from_slice(SNAP2_MAGIC);
    put_u32(&mut buf, SNAP2_VERSION);
    put_u64(&mut buf, fp);
    let patch_at = buf.len();
    put_u64(&mut buf, 0); // dir_offset, patched below
    put_u64(&mut buf, 0); // dir_len, patched below

    let standard: Vec<_> = ram
        .relations
        .iter()
        .filter(|r| r.role == Role::Standard)
        .collect();
    let mut tuples = 0u64;
    let mut entries: Vec<(String, u32, RelMeta)> = Vec::with_capacity(standard.len());
    for meta in standard {
        let rel = db.rd(meta.id);
        if disk_backed(meta) {
            let mut runs = Vec::with_capacity(rel.index_count());
            for k in 0..rel.index_count() {
                let idx = rel.index(k);
                let order = idx.order();
                let count = idx.len() as u64;
                let page_tuples = disk::page_tuples(meta.arity);
                let offset = buf.len() as u64;
                let encode = if idx.stores_source_order() && !order.is_natural() {
                    Some(order)
                } else {
                    None
                };
                let mut it = idx.scan();
                let fence =
                    disk::write_run(&mut buf, &mut *it, count, meta.arity, page_tuples, encode)
                        .map_err(|e| StorageError::io("serialize snapshot run", &e))?;
                drop(it);
                let len = buf.len() as u64 - offset;
                runs.push(RunMeta {
                    order: order.columns().to_vec(),
                    count,
                    offset,
                    len,
                    page_tuples: page_tuples as u32,
                    fence,
                });
                if k == 0 {
                    tuples += count;
                }
            }
            entries.push((meta.name.clone(), meta.arity as u32, RelMeta::Runs(runs)));
        } else {
            let mut section = Vec::new();
            tuples += stir_der::dump::write_tuples(&mut section, &rel)
                .expect("Vec<u8> writes are infallible");
            entries.push((
                meta.name.clone(),
                meta.arity as u32,
                RelMeta::Inline(section),
            ));
        }
    }

    let dir_offset = buf.len() as u64;
    put_u32(
        &mut buf,
        db.counter.load(std::sync::atomic::Ordering::Relaxed),
    );
    {
        let symbols = db.symbols_rd();
        let strings = symbols.strings();
        put_u32(&mut buf, strings.len() as u32);
        for s in strings {
            put_str(&mut buf, s);
        }
    }
    put_u32(&mut buf, entries.len() as u32);
    for (name, arity, entry) in &entries {
        put_str(&mut buf, name);
        put_u32(&mut buf, *arity);
        match entry {
            RelMeta::Runs(runs) => {
                put_u32(&mut buf, runs.len() as u32);
                for run in runs {
                    put_u32(&mut buf, run.order.len() as u32);
                    for &c in &run.order {
                        put_u32(&mut buf, c as u32);
                    }
                    put_u64(&mut buf, run.count);
                    put_u64(&mut buf, run.offset);
                    put_u64(&mut buf, run.len);
                    put_u32(&mut buf, run.page_tuples);
                    put_u32(&mut buf, run.fence.len() as u32);
                    for &v in &run.fence {
                        put_u32(&mut buf, v);
                    }
                }
            }
            RelMeta::Inline(section) => {
                put_u32(&mut buf, 0);
                buf.extend_from_slice(section);
            }
        }
    }
    put_u64(&mut buf, extra_facts.len() as u64);
    for (rid, t) in extra_facts {
        put_u32(&mut buf, rid.0 as u32);
        put_u32(&mut buf, t.len() as u32);
        for &v in t {
            put_u32(&mut buf, v);
        }
    }
    let dir_len = buf.len() as u64 - dir_offset;
    buf[patch_at..patch_at + 8].copy_from_slice(&dir_offset.to_le_bytes());
    buf[patch_at + 8..patch_at + 16].copy_from_slice(&dir_len.to_le_bytes());
    let crc = !crc32_feed(!0u32, &buf);
    put_u32(&mut buf, crc);

    let err = |op: &'static str| move |e: io::Error| StorageError::io(op, &e);
    let tmp: PathBuf = path.with_extension("tmp");
    fault::check(fault_point).map_err(err("write snapshot"))?;
    {
        let mut f = File::create(&tmp).map_err(err("create snapshot temp"))?;
        f.write_all(&buf).map_err(err("write snapshot"))?;
        f.sync_all().map_err(err("fsync snapshot"))?;
    }
    fault::check(FaultPoint::SnapshotRename).map_err(err("publish snapshot"))?;
    std::fs::rename(&tmp, path).map_err(err("publish snapshot"))?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(SnapshotStats {
        tuples,
        bytes: buf.len() as u64,
    })
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Opens and validates a v2 snapshot: header checks, a streaming CRC
/// pass over the whole file, directory decode, and per-run geometry
/// validation. Tuples themselves stay on disk behind `cache_budget`
/// bytes of page cache.
///
/// # Errors
///
/// Every rejection — bad magic, wrong version, foreign fingerprint,
/// truncation, checksum mismatch, out-of-bounds or malformed run — is a
/// [`StorageError`] naming the byte offset that tripped it. Injected
/// `disk_map` faults surface here too.
pub fn open_snapshot_v2(path: &Path, fp: u64, cache_budget: usize) -> Result<Snap2, StorageError> {
    fault::check(FaultPoint::DiskMap).map_err(|e| StorageError::io("map snapshot", &e))?;
    let mut f = File::open(path).map_err(|e| StorageError::io("open snapshot", &e))?;
    let file_len = f
        .metadata()
        .map_err(|e| StorageError::io("stat snapshot", &e))?
        .len();
    if file_len < SNAP2_HEADER + 4 {
        return Err(StorageError::new(format!(
            "truncated snapshot: {file_len} bytes at byte offset {file_len}, \
             need at least {} for header and checksum",
            SNAP2_HEADER + 4
        )));
    }

    let mut header = [0u8; SNAP2_HEADER as usize];
    f.read_exact(&mut header)
        .map_err(|e| StorageError::io("read snapshot header", &e))?;
    if &header[..8] != SNAP2_MAGIC {
        return Err(StorageError::new(
            "bad snapshot magic at byte offset 0 (expected STIRSNP2)",
        ));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != SNAP2_VERSION {
        return Err(StorageError::new(format!(
            "unsupported snapshot version {version} at byte offset 8 (expected {SNAP2_VERSION})"
        )));
    }
    let file_fp = u64::from_le_bytes(header[12..20].try_into().unwrap());
    if file_fp != fp {
        return Err(StorageError::new(
            "snapshot belongs to a different program (fingerprint mismatch)",
        ));
    }
    let dir_offset = u64::from_le_bytes(header[20..28].try_into().unwrap());
    let dir_len = u64::from_le_bytes(header[28..36].try_into().unwrap());
    let body_len = file_len - 4;
    if dir_offset < SNAP2_HEADER
        || dir_offset
            .checked_add(dir_len)
            .is_none_or(|end| end != body_len)
    {
        return Err(StorageError::new(format!(
            "snapshot directory out of bounds at byte offset 20: \
             directory [{dir_offset}, {dir_offset}+{dir_len}) must end at byte offset {body_len}"
        )));
    }

    // Streaming CRC over everything before the trailer, capturing the
    // directory bytes on the way past.
    f.seek(SeekFrom::Start(0))
        .map_err(|e| StorageError::io("read snapshot", &e))?;
    let mut crc = !0u32;
    let mut dir = vec![0u8; dir_len as usize];
    let mut chunk = vec![0u8; 64 * 1024];
    let mut pos = 0u64;
    while pos < body_len {
        let want = chunk.len().min((body_len - pos) as usize);
        f.read_exact(&mut chunk[..want]).map_err(|e| {
            StorageError::new(format!("truncated snapshot: {e} at byte offset {pos}"))
        })?;
        crc = crc32_feed(crc, &chunk[..want]);
        // Copy the slice of this chunk that overlaps the directory.
        let (c0, c1) = (pos, pos + want as u64);
        let (d0, d1) = (dir_offset, dir_offset + dir_len);
        if c1 > d0 && c0 < d1 {
            let lo = d0.max(c0);
            let hi = d1.min(c1);
            dir[(lo - d0) as usize..(hi - d0) as usize]
                .copy_from_slice(&chunk[(lo - c0) as usize..(hi - c0) as usize]);
        }
        pos += want as u64;
    }
    let mut trailer = [0u8; 4];
    f.read_exact(&mut trailer).map_err(|e| {
        StorageError::new(format!("truncated snapshot: {e} at byte offset {body_len}"))
    })?;
    if !crc != u32::from_le_bytes(trailer) {
        return Err(StorageError::new(format!(
            "snapshot checksum mismatch at byte offset {body_len} (trailer)"
        )));
    }
    drop(f);

    // Decode the directory.
    let dir_err = |r: &ByteReader<'_>, what: &str| {
        StorageError::new(format!(
            "corrupt snapshot directory: {what} at byte offset {}",
            dir_offset + r.pos() as u64
        ))
    };
    let mut r = ByteReader::new(&dir);
    let counter = r.u32().map_err(|_| dir_err(&r, "counter"))?;
    let symbol_count = r.u32().map_err(|_| dir_err(&r, "symbol count"))? as usize;
    let mut symbols = Vec::with_capacity(symbol_count);
    for _ in 0..symbol_count {
        symbols.push(r.str().map_err(|_| dir_err(&r, "symbol"))?);
    }
    let rel_count = r.u32().map_err(|_| dir_err(&r, "relation count"))? as usize;
    let mut relations = Vec::with_capacity(rel_count);
    for _ in 0..rel_count {
        let name = r.str().map_err(|_| dir_err(&r, "relation name"))?;
        let arity = r.u32().map_err(|_| dir_err(&r, "relation arity"))? as usize;
        let run_count = r.u32().map_err(|_| dir_err(&r, "run count"))? as usize;
        if run_count == 0 {
            let mut section = r.rest();
            let before = section.len();
            let tuples = stir_der::dump::read_tuples(&mut section, arity).map_err(|e| {
                StorageError::new(format!(
                    "corrupt snapshot directory: {e} (section starts at byte offset {})",
                    dir_offset + r.pos() as u64
                ))
            })?;
            r.skip(before - section.len());
            relations.push(Snap2Relation {
                name,
                arity,
                runs: Vec::new(),
                inline: Some(tuples),
            });
            continue;
        }
        let mut runs = Vec::with_capacity(run_count);
        for _ in 0..run_count {
            let order_len = r.u32().map_err(|_| dir_err(&r, "order length"))? as usize;
            let mut order = Vec::with_capacity(order_len);
            for _ in 0..order_len {
                order.push(r.u32().map_err(|_| dir_err(&r, "order column"))? as usize);
            }
            let count = r.u64().map_err(|_| dir_err(&r, "run tuple count"))? as usize;
            let offset = r.u64().map_err(|_| dir_err(&r, "run offset"))?;
            let len = r.u64().map_err(|_| dir_err(&r, "run length"))?;
            let page_tuples = r.u32().map_err(|_| dir_err(&r, "run page size"))? as usize;
            let fence_words = r.u32().map_err(|_| dir_err(&r, "fence length"))? as usize;
            let mut fence = Vec::with_capacity(fence_words);
            for _ in 0..fence_words {
                fence.push(r.u32().map_err(|_| dir_err(&r, "fence word"))?);
            }
            // Geometry: the run must lie inside the run region and its
            // byte length, tuple count, and fence must agree.
            let expect_len = 8 + (count as u64) * (arity as u64) * 4;
            let pages = if page_tuples == 0 {
                usize::MAX
            } else {
                count.div_ceil(page_tuples)
            };
            if order_len != arity
                || arity == 0
                || page_tuples == 0
                || len != expect_len
                || offset < SNAP2_HEADER
                || offset.checked_add(len).is_none_or(|end| end > dir_offset)
                || fence_words != pages * arity
            {
                return Err(StorageError::new(format!(
                    "corrupt snapshot directory: malformed run for relation `{name}` \
                     at byte offset {} (run [{offset}, {offset}+{len}), {count} tuples, \
                     arity {arity}, {page_tuples} tuples/page, {fence_words} fence words)",
                    dir_offset + r.pos() as u64
                )));
            }
            runs.push(Snap2Run {
                order,
                count,
                tuple_offset: offset + 8,
                page_tuples,
                fence,
            });
        }
        relations.push(Snap2Relation {
            name,
            arity,
            runs,
            inline: None,
        });
    }
    let extra_count = r.u64().map_err(|_| dir_err(&r, "extra fact count"))? as usize;
    let mut extra_facts = Vec::with_capacity(extra_count);
    for _ in 0..extra_count {
        let rid = RelId(r.u32().map_err(|_| dir_err(&r, "extra fact relation"))? as usize);
        let arity = r.u32().map_err(|_| dir_err(&r, "extra fact arity"))? as usize;
        let mut t = Vec::with_capacity(arity);
        for _ in 0..arity {
            t.push(r.u32().map_err(|_| dir_err(&r, "extra fact value"))?);
        }
        extra_facts.push((rid, t));
    }
    if !r.done() {
        return Err(dir_err(&r, "trailing bytes"));
    }

    let file =
        RunFile::open(path, cache_budget).map_err(|e| StorageError::io("map snapshot", &e))?;
    Ok(Snap2 {
        counter,
        symbols,
        relations,
        extra_facts,
        file,
    })
}
