//! The per-rule profiler (paper §5.2).
//!
//! When [`crate::config::InterpreterConfig::profile`] is on, the
//! interpreter records, per query (rule version): cumulative wall time,
//! execution count, and tuples inserted — plus global dispatch,
//! loop-iteration, and super-instruction counters, per-relation
//! operation counts, and the semi-naive frontier (delta-relation sizes
//! per fixpoint iteration). This drives the Fig. 16 per-rule slowdown
//! histogram, the Fig. 19 dispatch-reduction measurement, and the
//! machine-readable profile of `telemetry::profile_json`.

use std::cell::{Cell, RefCell};
use std::time::Duration;

/// Mutable profiling state, updated with `Cell`s so the hot path never
/// takes a `RefCell` borrow.
#[derive(Debug, Default)]
pub struct ProfileState {
    /// Total interpreter dispatches (node evaluations).
    pub dispatches: Cell<u64>,
    /// Total scan-loop iterations.
    pub iterations: Cell<u64>,
    /// Super-instruction executions (`ProjectSuper` + `FilterNative`).
    pub super_hits: Cell<u64>,
    /// Total tuples inserted across all queries.
    pub total_inserts: Cell<u64>,
    /// Tuples inserted by the currently running query.
    current_inserts: Cell<u64>,
    per_query: RefCell<Vec<QueryStats>>,
    rel_ops: Vec<RelOpCells>,
    frontier: RefCell<Vec<FrontierSample>>,
}

/// Accumulated statistics for one query (rule version).
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// The rule text.
    pub label: String,
    /// Cumulative wall time.
    pub time: Duration,
    /// How many times the query ran (loop iterations re-run queries).
    pub executions: u64,
    /// Tuples inserted by this query.
    pub tuples: u64,
}

/// Hot-path per-relation counters (`Cell`-based; see [`RelOps`] for the
/// report form).
#[derive(Debug, Default)]
struct RelOpCells {
    inserts: Cell<u64>,
    exists_checks: Cell<u64>,
    range_queries: Cell<u64>,
    scans: Cell<u64>,
}

/// Per-relation operation counts of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelOps {
    /// Fresh tuples inserted into the relation.
    pub inserts: u64,
    /// Existence probes against the relation.
    pub exists_checks: u64,
    /// Range (index) scans opened on the relation.
    pub range_queries: u64,
    /// Full scans opened on the relation.
    pub scans: u64,
}

/// The semi-naive frontier at the end of one fixpoint iteration: the
/// sizes of all delta relations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrontierSample {
    /// Which `Loop` statement (in tree order) the sample belongs to.
    pub loop_id: usize,
    /// The 0-based iteration of that loop.
    pub iteration: u64,
    /// `(relation index, tuple count)` per delta relation.
    pub deltas: Vec<(usize, u64)>,
}

impl ProfileState {
    /// Creates state with one slot per query label and per relation.
    pub fn new(labels: &[String], relation_count: usize) -> Self {
        ProfileState {
            per_query: RefCell::new(
                labels
                    .iter()
                    .map(|l| QueryStats {
                        label: l.clone(),
                        ..QueryStats::default()
                    })
                    .collect(),
            ),
            rel_ops: (0..relation_count).map(|_| RelOpCells::default()).collect(),
            ..ProfileState::default()
        }
    }

    /// Marks the start of a query execution.
    pub fn begin_query(&self) -> std::time::Instant {
        self.current_inserts.set(0);
        std::time::Instant::now()
    }

    /// Records a completed query execution.
    pub fn end_query(&self, label: usize, started: std::time::Instant) {
        let mut q = self.per_query.borrow_mut();
        let s = &mut q[label];
        s.time += started.elapsed();
        s.executions += 1;
        s.tuples += self.current_inserts.get();
    }

    /// Counts one interpreter dispatch.
    #[inline]
    pub fn count_dispatch(&self) {
        self.dispatches.set(self.dispatches.get() + 1);
    }

    /// Counts `n` scan iterations.
    #[inline]
    pub fn count_iterations(&self, n: u64) {
        self.iterations.set(self.iterations.get() + n);
    }

    /// Counts one super-instruction execution.
    #[inline]
    pub fn count_super(&self) {
        self.super_hits.set(self.super_hits.get() + 1);
    }

    /// Counts one inserted tuple (running query + relation + total).
    #[inline]
    pub fn count_insert(&self, rel: usize) {
        self.current_inserts.set(self.current_inserts.get() + 1);
        self.total_inserts.set(self.total_inserts.get() + 1);
        let c = &self.rel_ops[rel].inserts;
        c.set(c.get() + 1);
    }

    /// Counts one existence probe against a relation.
    #[inline]
    pub fn count_exists(&self, rel: usize) {
        let c = &self.rel_ops[rel].exists_checks;
        c.set(c.get() + 1);
    }

    /// Counts one range query opened on a relation.
    #[inline]
    pub fn count_range(&self, rel: usize) {
        let c = &self.rel_ops[rel].range_queries;
        c.set(c.get() + 1);
    }

    /// Counts one full scan opened on a relation.
    #[inline]
    pub fn count_scan(&self, rel: usize) {
        let c = &self.rel_ops[rel].scans;
        c.set(c.get() + 1);
    }

    /// Folds another state's counters into this one. Worker threads of a
    /// parallel scan each accumulate into a private `ProfileState` (the
    /// `Cell`-based counters are not `Sync`); the coordinator absorbs them
    /// after the join, so totals are independent of the worker count.
    /// Only the flat counters are merged — per-query timings and frontier
    /// samples belong to the coordinator, and workers never record them.
    pub fn absorb(&self, other: &ProfileState) {
        self.dispatches
            .set(self.dispatches.get() + other.dispatches.get());
        self.iterations
            .set(self.iterations.get() + other.iterations.get());
        self.super_hits
            .set(self.super_hits.get() + other.super_hits.get());
        self.total_inserts
            .set(self.total_inserts.get() + other.total_inserts.get());
        self.current_inserts
            .set(self.current_inserts.get() + other.current_inserts.get());
        for (mine, theirs) in self.rel_ops.iter().zip(&other.rel_ops) {
            mine.inserts.set(mine.inserts.get() + theirs.inserts.get());
            mine.exists_checks
                .set(mine.exists_checks.get() + theirs.exists_checks.get());
            mine.range_queries
                .set(mine.range_queries.get() + theirs.range_queries.get());
            mine.scans.set(mine.scans.get() + theirs.scans.get());
        }
    }

    /// Records the delta sizes at the end of one fixpoint iteration.
    pub fn record_frontier(&self, loop_id: usize, iteration: u64, deltas: Vec<(usize, u64)>) {
        self.frontier.borrow_mut().push(FrontierSample {
            loop_id,
            iteration,
            deltas,
        });
    }

    /// Snapshots the final report.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            dispatches: self.dispatches.get(),
            iterations: self.iterations.get(),
            super_hits: self.super_hits.get(),
            total_inserts: self.total_inserts.get(),
            queries: self.per_query.borrow().clone(),
            relations: self
                .rel_ops
                .iter()
                .map(|c| RelOps {
                    inserts: c.inserts.get(),
                    exists_checks: c.exists_checks.get(),
                    range_queries: c.range_queries.get(),
                    scans: c.scans.get(),
                })
                .collect(),
            frontier: self.frontier.borrow().clone(),
        }
    }
}

/// An immutable profiling report.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Total interpreter dispatches.
    pub dispatches: u64,
    /// Total scan iterations.
    pub iterations: u64,
    /// Super-instruction executions.
    pub super_hits: u64,
    /// Total tuples inserted.
    pub total_inserts: u64,
    /// Per-query statistics.
    pub queries: Vec<QueryStats>,
    /// Per-relation operation counts, indexed like the RAM relations.
    pub relations: Vec<RelOps>,
    /// Semi-naive frontier sizes, one sample per fixpoint iteration.
    pub frontier: Vec<FrontierSample>,
}

impl ProfileReport {
    /// Aggregates per *rule* (summing the delta versions of one rule),
    /// keyed by the rule text without the `[delta #k]` suffix.
    pub fn by_rule(&self) -> Vec<QueryStats> {
        let mut out: Vec<QueryStats> = Vec::new();
        for q in &self.queries {
            let base = match q.label.find(" [delta #") {
                Some(i) => &q.label[..i],
                None => &q.label[..],
            };
            match out.iter_mut().find(|s| s.label == base) {
                Some(s) => {
                    s.time += q.time;
                    s.executions += q.executions;
                    s.tuples += q.tuples;
                }
                None => out.push(QueryStats {
                    label: base.to_owned(),
                    time: q.time,
                    executions: q.executions,
                    tuples: q.tuples,
                }),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_query() {
        let p = ProfileState::new(&["a".into(), "b".into()], 2);
        let t = p.begin_query();
        p.count_insert(1);
        p.count_insert(1);
        p.end_query(0, t);
        p.count_dispatch();
        p.count_iterations(5);
        let r = p.report();
        assert_eq!(r.queries[0].tuples, 2);
        assert_eq!(r.queries[0].executions, 1);
        assert_eq!(r.queries[1].executions, 0);
        assert_eq!(r.dispatches, 1);
        assert_eq!(r.iterations, 5);
        assert_eq!(r.total_inserts, 2);
        assert_eq!(r.relations[1].inserts, 2);
        assert_eq!(r.relations[0].inserts, 0);
    }

    #[test]
    fn absorb_merges_flat_counters() {
        let main = ProfileState::new(&["q".into()], 2);
        let t = main.begin_query();
        main.count_dispatch();

        let worker = ProfileState::new(&[], 2);
        worker.count_dispatch();
        worker.count_iterations(7);
        worker.count_super();
        worker.count_exists(0);
        worker.count_scan(1);
        worker.count_insert(1);

        main.absorb(&worker);
        main.end_query(0, t);
        let r = main.report();
        assert_eq!(r.dispatches, 2);
        assert_eq!(r.iterations, 7);
        assert_eq!(r.super_hits, 1);
        assert_eq!(r.total_inserts, 1);
        assert_eq!(r.relations[0].exists_checks, 1);
        assert_eq!(r.relations[1].scans, 1);
        assert_eq!(r.relations[1].inserts, 1);
        // Absorbed inserts land in the query running at absorb time.
        assert_eq!(r.queries[0].tuples, 1);
    }

    #[test]
    fn by_rule_merges_delta_versions() {
        let p = ProfileState::new(
            &[
                "p(x) :- q(x). [delta #0]".into(),
                "p(x) :- q(x). [delta #1]".into(),
                "r(x) :- s(x).".into(),
            ],
            1,
        );
        for label in 0..3 {
            let t = p.begin_query();
            p.count_insert(0);
            p.end_query(label, t);
        }
        let rules = p.report().by_rule();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].label, "p(x) :- q(x).");
        assert_eq!(rules[0].executions, 2);
        assert_eq!(rules[0].tuples, 2);
    }

    #[test]
    fn relation_ops_and_frontier_accumulate() {
        let p = ProfileState::new(&["a".into()], 3);
        p.count_exists(0);
        p.count_exists(0);
        p.count_range(1);
        p.count_scan(2);
        p.count_super();
        p.record_frontier(0, 0, vec![(1, 4)]);
        p.record_frontier(0, 1, vec![(1, 0)]);
        let r = p.report();
        assert_eq!(r.relations[0].exists_checks, 2);
        assert_eq!(r.relations[1].range_queries, 1);
        assert_eq!(r.relations[2].scans, 1);
        assert_eq!(r.super_hits, 1);
        assert_eq!(r.frontier.len(), 2);
        assert_eq!(r.frontier[0].deltas, vec![(1, 4)]);
        assert_eq!(r.frontier[1].iteration, 1);
    }
}
