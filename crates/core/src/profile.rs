//! The per-rule profiler (paper §5.2).
//!
//! When [`crate::config::InterpreterConfig::profile`] is on, the
//! interpreter records, per query (rule version): cumulative wall time,
//! execution count, and tuples inserted — plus global dispatch and
//! loop-iteration counters. This is what drives the Fig. 16 per-rule
//! slowdown histogram and the Fig. 19 dispatch-reduction measurement.

use std::cell::{Cell, RefCell};
use std::time::Duration;

/// Mutable profiling state, updated with `Cell`s so the hot path never
/// takes a `RefCell` borrow.
#[derive(Debug, Default)]
pub struct ProfileState {
    /// Total interpreter dispatches (node evaluations).
    pub dispatches: Cell<u64>,
    /// Total scan-loop iterations.
    pub iterations: Cell<u64>,
    /// Tuples inserted by the currently running query.
    current_inserts: Cell<u64>,
    per_query: RefCell<Vec<QueryStats>>,
}

/// Accumulated statistics for one query (rule version).
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// The rule text.
    pub label: String,
    /// Cumulative wall time.
    pub time: Duration,
    /// How many times the query ran (loop iterations re-run queries).
    pub executions: u64,
    /// Tuples inserted by this query.
    pub tuples: u64,
}

impl ProfileState {
    /// Creates state with one slot per query label.
    pub fn new(labels: &[String]) -> Self {
        ProfileState {
            dispatches: Cell::new(0),
            iterations: Cell::new(0),
            current_inserts: Cell::new(0),
            per_query: RefCell::new(
                labels
                    .iter()
                    .map(|l| QueryStats {
                        label: l.clone(),
                        ..QueryStats::default()
                    })
                    .collect(),
            ),
        }
    }

    /// Marks the start of a query execution.
    pub fn begin_query(&self) -> std::time::Instant {
        self.current_inserts.set(0);
        std::time::Instant::now()
    }

    /// Records a completed query execution.
    pub fn end_query(&self, label: usize, started: std::time::Instant) {
        let mut q = self.per_query.borrow_mut();
        let s = &mut q[label];
        s.time += started.elapsed();
        s.executions += 1;
        s.tuples += self.current_inserts.get();
    }

    /// Counts one interpreter dispatch.
    #[inline]
    pub fn count_dispatch(&self) {
        self.dispatches.set(self.dispatches.get() + 1);
    }

    /// Counts `n` scan iterations.
    #[inline]
    pub fn count_iterations(&self, n: u64) {
        self.iterations.set(self.iterations.get() + n);
    }

    /// Counts one inserted tuple for the running query.
    #[inline]
    pub fn count_insert(&self) {
        self.current_inserts.set(self.current_inserts.get() + 1);
    }

    /// Snapshots the final report.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            dispatches: self.dispatches.get(),
            iterations: self.iterations.get(),
            queries: self.per_query.borrow().clone(),
        }
    }
}

/// An immutable profiling report.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Total interpreter dispatches.
    pub dispatches: u64,
    /// Total scan iterations.
    pub iterations: u64,
    /// Per-query statistics.
    pub queries: Vec<QueryStats>,
}

impl ProfileReport {
    /// Aggregates per *rule* (summing the delta versions of one rule),
    /// keyed by the rule text without the `[delta #k]` suffix.
    pub fn by_rule(&self) -> Vec<QueryStats> {
        let mut out: Vec<QueryStats> = Vec::new();
        for q in &self.queries {
            let base = match q.label.find(" [delta #") {
                Some(i) => &q.label[..i],
                None => &q.label[..],
            };
            match out.iter_mut().find(|s| s.label == base) {
                Some(s) => {
                    s.time += q.time;
                    s.executions += q.executions;
                    s.tuples += q.tuples;
                }
                None => out.push(QueryStats {
                    label: base.to_owned(),
                    time: q.time,
                    executions: q.executions,
                    tuples: q.tuples,
                }),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_query() {
        let p = ProfileState::new(&["a".into(), "b".into()]);
        let t = p.begin_query();
        p.count_insert();
        p.count_insert();
        p.end_query(0, t);
        p.count_dispatch();
        p.count_iterations(5);
        let r = p.report();
        assert_eq!(r.queries[0].tuples, 2);
        assert_eq!(r.queries[0].executions, 1);
        assert_eq!(r.queries[1].executions, 0);
        assert_eq!(r.dispatches, 1);
        assert_eq!(r.iterations, 5);
    }

    #[test]
    fn by_rule_merges_delta_versions() {
        let p = ProfileState::new(&[
            "p(x) :- q(x). [delta #0]".into(),
            "p(x) :- q(x). [delta #1]".into(),
            "r(x) :- s(x).".into(),
        ]);
        for label in 0..3 {
            let t = p.begin_query();
            p.count_insert();
            p.end_query(label, t);
        }
        let rules = p.report().by_rule();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].label, "p(x) :- q(x).");
        assert_eq!(rules[0].executions, 2);
        assert_eq!(rules[0].tuples, 2);
    }
}
