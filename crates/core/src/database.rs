//! The runtime database: one [`Relation`] per RAM relation.
//!
//! Relations sit behind `RwLock`s because a query reads some relations
//! while inserting into another. The RAM translation guarantees that the
//! projection target of a query is never scanned or probed by the same
//! query (semi-naive evaluation separates `R`, `delta_R`, and `new_R`), so
//! batch evaluation never contends on a lock; the locks are a safety net
//! there, not a semantic device. The serving subsystem is what actually
//! exercises them: a resident engine shares one `Database` between
//! concurrent query readers while updates hold an exclusive engine-level
//! lock, so `Database` (unlike the old `RefCell`-based version) is `Sync`.

use crate::config::StorageBackend;
use crate::error::EvalError;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::atomic::AtomicU32;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use stir_der::disk::DiskIndex;
use stir_der::dynindex::DynBTreeIndex;
use stir_der::factory::{IndexSpec, Representation};
use stir_der::order::Order;
use stir_der::relation::Relation;
use stir_der::IndexAdapter;
use stir_frontend::SymbolTable;
use stir_ram::program::{RamProgram, RamRelation, RelId, ReprKind, Role};

/// How relations are represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    /// De-specialized DER structures from the factory (the STI's mode).
    Specialized,
    /// Fully dynamic B-trees with runtime comparators (the legacy
    /// interpreter's mode, §5.1).
    LegacyDynamic,
}

/// External input facts: relation name → tuples of typed values.
pub type InputData = HashMap<String, Vec<Vec<Value>>>;

/// Unwraps a poisoned lock: relation and symbol state stays usable after
/// a panicking request thread (the panic cannot leave a half-inserted
/// tuple behind — `Relation::insert` completes per index before
/// returning).
fn unpoison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The rule-id annotation of input tuples and source-text facts (no rule
/// fired; the tuple is an axiom). Re-exported from the RAM layer's
/// provenance module.
pub const RULE_INPUT: u32 = stir_ram::prov::RULE_INPUT;

/// Whether a relation is *eligible* for disk-backed storage. Auxiliary
/// relations (`delta_`/`new_`/`upd_`) are working sets of a single
/// fixpoint — small, cleared constantly, never snapshotted — so they stay
/// in memory. Equivalence relations are semantic (the union-find closes
/// pairs); serving them off a materialized run would silently drop that
/// behavior. Nullary relations are a single presence bit. Everything else
/// — every standard B-tree or Brie relation — can live on disk. The
/// interpreter-tree builder consults the same predicate to route these
/// relations through the dynamic (adapter-based) instruction variants.
pub fn disk_backed(rel: &RamRelation) -> bool {
    rel.role == Role::Standard && rel.repr != ReprKind::EqRel && rel.arity > 0
}

/// The relations, symbol table, and counter of one evaluation.
#[derive(Debug)]
pub struct Database {
    relations: Vec<RwLock<Relation>>,
    /// The symbol table grows at runtime (`cat`, `to_string`).
    pub symbols: RwLock<SymbolTable>,
    /// The `$` auto-increment counter.
    pub counter: AtomicU32,
    /// Derivation-height clock for annotated evaluation: bumped once per
    /// executed RAM query, so every tuple a query derives is annotated
    /// with a height strictly greater than all of its premises'
    /// (semi-naive evaluation never scans a query's own projection
    /// target). `0` is reserved for input facts. Stays at `0` when
    /// provenance is off.
    pub epoch: AtomicU32,
    provenance: bool,
}

impl Database {
    /// Builds the database for a RAM program: creates every relation with
    /// the orders chosen by index selection and loads the source-text
    /// facts. Equivalent to [`Database::new_with`] without provenance.
    pub fn new(ram: &RamProgram, mode: DataMode) -> Database {
        Self::new_with(ram, mode, false)
    }

    /// Builds the database, optionally with annotation stores enabled on
    /// every relation (annotated evaluation). Source-text facts are
    /// annotated `(0, RULE_INPUT)`.
    pub fn new_with(ram: &RamProgram, mode: DataMode, provenance: bool) -> Database {
        Self::new_with_storage(ram, mode, provenance, StorageBackend::Mem)
    }

    /// Builds the database on the selected storage backend: under
    /// [`StorageBackend::Disk`] every [`disk_backed`]-eligible relation
    /// gets [`DiskIndex`] adapters (initially overlay-only; the resident
    /// engine attaches snapshot base runs on cold start). Everything else
    /// is identical to [`Database::new_with`].
    pub fn new_with_storage(
        ram: &RamProgram,
        mode: DataMode,
        provenance: bool,
        storage: StorageBackend,
    ) -> Database {
        let relations = ram
            .relations
            .iter()
            .map(|r| {
                let rel = if r.arity == 0 {
                    Relation::new(r.name.clone(), 0, vec![])
                } else if storage == StorageBackend::Disk && disk_backed(r) {
                    // Source-layout mode keeps the legacy layer's
                    // source-order calling convention while the bytes stay
                    // layout-canonical.
                    let source_layout = mode == DataMode::LegacyDynamic;
                    let indexes: Vec<Box<dyn IndexAdapter>> = r
                        .orders
                        .iter()
                        .map(|o| {
                            Box::new(DiskIndex::new(Order::new(o.clone()), source_layout))
                                as Box<dyn IndexAdapter>
                        })
                        .collect();
                    Relation::from_adapters(r.name.clone(), r.arity, indexes)
                } else {
                    match mode {
                        DataMode::Specialized => {
                            let repr = match r.repr {
                                ReprKind::BTree => Representation::BTree,
                                ReprKind::Brie => Representation::Brie,
                                ReprKind::EqRel => Representation::EqRel,
                            };
                            let specs: Vec<IndexSpec> = r
                                .orders
                                .iter()
                                .map(|o| IndexSpec::new(repr, Order::new(o.clone())))
                                .collect();
                            Relation::new(r.name.clone(), r.arity, specs)
                        }
                        DataMode::LegacyDynamic => {
                            if r.repr == ReprKind::EqRel {
                                // The equivalence-relation representation is
                                // semantic (it closes pairs), so even the
                                // legacy layer keeps it.
                                let specs =
                                    vec![IndexSpec::new(Representation::EqRel, Order::natural(2))];
                                Relation::new(r.name.clone(), r.arity, specs)
                            } else {
                                let indexes: Vec<Box<dyn IndexAdapter>> = r
                                    .orders
                                    .iter()
                                    .map(|o| {
                                        Box::new(DynBTreeIndex::new(Order::new(o.clone())))
                                            as Box<dyn IndexAdapter>
                                    })
                                    .collect();
                                Relation::from_adapters(r.name.clone(), r.arity, indexes)
                            }
                        }
                    }
                };
                let mut rel = rel;
                if provenance {
                    rel.enable_annotations();
                }
                RwLock::new(rel)
            })
            .collect();
        let db = Database {
            relations,
            symbols: RwLock::new(ram.symbols.clone()),
            counter: AtomicU32::new(0),
            epoch: AtomicU32::new(0),
            provenance,
        };
        for (rel, tuple) in &ram.facts {
            let mut target = db.wr(*rel);
            if target.insert(tuple) && provenance {
                target.record_annotation(tuple, 0, RULE_INPUT);
            }
        }
        db
    }

    /// Whether annotated evaluation is enabled.
    pub fn provenance(&self) -> bool {
        self.provenance
    }

    /// The relation lock for `id`.
    pub fn relation(&self, id: RelId) -> &RwLock<Relation> {
        &self.relations[id.0]
    }

    /// Shared (read) access to relation `id`.
    pub fn rd(&self, id: RelId) -> RwLockReadGuard<'_, Relation> {
        unpoison(self.relations[id.0].read())
    }

    /// Exclusive (write) access to relation `id`.
    pub fn wr(&self, id: RelId) -> RwLockWriteGuard<'_, Relation> {
        unpoison(self.relations[id.0].write())
    }

    /// Shared access to the symbol table.
    pub fn symbols_rd(&self) -> RwLockReadGuard<'_, SymbolTable> {
        unpoison(self.symbols.read())
    }

    /// Exclusive access to the symbol table.
    pub fn symbols_wr(&self) -> RwLockWriteGuard<'_, SymbolTable> {
        unpoison(self.symbols.write())
    }

    /// Loads external facts into the `.input` relations.
    ///
    /// # Errors
    ///
    /// Rejects unknown relation names, non-input relations, and tuples of
    /// the wrong arity.
    pub fn load_inputs(&self, ram: &RamProgram, inputs: &InputData) -> Result<(), EvalError> {
        for (name, tuples) in inputs {
            let Some(rel) = ram.relation_by_name(name) else {
                return Err(EvalError::new(format!(
                    "input data for undeclared relation `{name}`"
                )));
            };
            if !rel.is_input {
                return Err(EvalError::new(format!(
                    "relation `{name}` is not declared `.input`"
                )));
            }
            let mut target = self.wr(rel.id);
            let mut symbols = self.symbols_wr();
            let mut encoded = Vec::with_capacity(rel.arity);
            for tuple in tuples {
                if tuple.len() != rel.arity {
                    return Err(EvalError::new(format!(
                        "input tuple for `{name}` has {} values, expected {}",
                        tuple.len(),
                        rel.arity
                    )));
                }
                encoded.clear();
                for v in tuple {
                    encoded.push(v.encode(&mut symbols));
                }
                if target.insert(&encoded) && self.provenance {
                    target.record_annotation(&encoded, 0, RULE_INPUT);
                }
            }
        }
        Ok(())
    }

    /// Extracts a relation's tuples as typed values, sorted.
    pub fn extract(&self, ram: &RamProgram, id: RelId) -> Vec<Vec<Value>> {
        let meta = ram.relation(id);
        let rel = self.rd(id);
        let symbols = self.symbols_rd();
        rel.to_sorted_tuples()
            .into_iter()
            .map(|t| {
                t.iter()
                    .zip(&meta.attr_types)
                    .map(|(&bits, &ty)| Value::decode(bits, ty, &symbols))
                    .collect()
            })
            .collect()
    }

    /// Extracts every `.output` relation, keyed by name.
    pub fn extract_outputs(&self, ram: &RamProgram) -> HashMap<String, Vec<Vec<Value>>> {
        ram.outputs()
            .map(|r| (r.name.clone(), self.extract(ram, r.id)))
            .collect()
    }

    /// Samples the structure of every relation into a metrics registry:
    /// `relation.<name>.tuples` plus, per index `k`,
    /// `relation.<name>.index.<k>.{tuples,nodes,bytes}`, and the
    /// database-wide totals `db.relations`, `db.tuples`, `db.indexes`,
    /// and `db.bytes`. A no-op when the registry is disabled.
    pub fn sample_metrics(&self, ram: &RamProgram, metrics: &crate::telemetry::MetricsRegistry) {
        if !metrics.enabled() {
            return;
        }
        let (mut tuples, mut indexes, mut bytes) = (0u64, 0u64, 0u64);
        for meta in &ram.relations {
            let rel = self.rd(meta.id);
            let len = rel.len() as u64;
            tuples += len;
            metrics.set(&format!("relation.{}.tuples", meta.name), len);
            for (k, stats) in rel.index_stats().iter().enumerate() {
                indexes += 1;
                bytes += stats.bytes as u64;
                let prefix = format!("relation.{}.index.{k}", meta.name);
                metrics.set(&format!("{prefix}.tuples"), stats.tuples as u64);
                metrics.set(&format!("{prefix}.nodes"), stats.nodes as u64);
                metrics.set(&format!("{prefix}.bytes"), stats.bytes as u64);
            }
        }
        metrics.set("db.relations", ram.relations.len() as u64);
        metrics.set("db.tuples", tuples);
        metrics.set("db.indexes", indexes);
        metrics.set("db.bytes", bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_frontend::parse_and_check;
    use stir_ram::translate::translate;

    fn ram(src: &str) -> RamProgram {
        translate(&parse_and_check(src).expect("checks")).expect("translates")
    }

    #[test]
    fn builds_relations_and_loads_facts() {
        let ram = ram(
            ".decl e(x: number, y: number)\n.decl p(x: number, y: number)\n\
             e(1, 2). e(2, 3).\np(x, y) :- e(x, y).",
        );
        let db = Database::new(&ram, DataMode::Specialized);
        let e = ram.relation_by_name("e").unwrap().id;
        assert_eq!(db.rd(e).len(), 2);
        assert!(db.rd(e).contains(&[1, 2]));
    }

    #[test]
    fn database_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Database>();
    }

    #[test]
    fn legacy_mode_uses_dynamic_indexes() {
        let ram = ram(".decl e(x: number, y: number)\ne(5, 6).");
        let db = Database::new(&ram, DataMode::LegacyDynamic);
        let e = ram.relation_by_name("e").unwrap().id;
        let rel = db.rd(e);
        assert!(rel
            .index(0)
            .as_any()
            .downcast_ref::<DynBTreeIndex>()
            .is_some());
        assert!(rel.contains(&[5, 6]));
    }

    #[test]
    fn disk_storage_installs_disk_indexes_for_standard_relations_only() {
        let ram = ram(
            ".decl e(x: number, y: number)\n.decl p(x: number, y: number)\n\
             e(1, 2). e(2, 3).\np(x, y) :- e(x, y), e(y, _).\np(x, y) :- p(x, z), e(z, y).",
        );
        for mode in [DataMode::Specialized, DataMode::LegacyDynamic] {
            let db = Database::new_with_storage(&ram, mode, false, StorageBackend::Disk);
            for meta in &ram.relations {
                if meta.arity == 0 {
                    continue;
                }
                let rel = db.rd(meta.id);
                let is_disk = rel.index(0).as_any().downcast_ref::<DiskIndex>().is_some();
                assert_eq!(
                    is_disk,
                    disk_backed(meta),
                    "{} ({:?}) backend mismatch",
                    meta.name,
                    meta.role
                );
                if is_disk {
                    assert_eq!(
                        rel.index(0).stores_source_order(),
                        mode == DataMode::LegacyDynamic,
                        "{} layout mismatch",
                        meta.name
                    );
                }
            }
            // Facts loaded through the normal path land in the overlay.
            let e = ram.relation_by_name("e").unwrap().id;
            assert!(db.rd(e).contains(&[1, 2]));
            assert_eq!(db.rd(e).len(), 2);
        }
    }

    #[test]
    fn input_loading_checks_shape() {
        let ram = ram(".decl e(x: number, s: symbol)\n.input e\n.decl q(x: number)\nq(1).");
        let db = Database::new(&ram, DataMode::Specialized);

        let mut good = InputData::new();
        good.insert(
            "e".into(),
            vec![vec![Value::Number(1), Value::Symbol("a".into())]],
        );
        db.load_inputs(&ram, &good).expect("loads");
        let e = ram.relation_by_name("e").unwrap().id;
        assert_eq!(db.rd(e).len(), 1);

        let mut wrong_arity = InputData::new();
        wrong_arity.insert("e".into(), vec![vec![Value::Number(1)]]);
        assert!(db.load_inputs(&ram, &wrong_arity).is_err());

        let mut not_input = InputData::new();
        not_input.insert("q".into(), vec![vec![Value::Number(1)]]);
        assert!(db.load_inputs(&ram, &not_input).is_err());

        let mut unknown = InputData::new();
        unknown.insert("ghost".into(), vec![]);
        assert!(db.load_inputs(&ram, &unknown).is_err());
    }

    #[test]
    fn extract_decodes_types() {
        let ram = ram(".decl m(a: number, s: symbol)\n.output m\nm(-4, \"x\").");
        let db = Database::new(&ram, DataMode::Specialized);
        let out = db.extract_outputs(&ram);
        assert_eq!(
            out["m"],
            vec![vec![Value::Number(-4), Value::Symbol("x".into())]]
        );
    }
}
