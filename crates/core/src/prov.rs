//! Proof-tree reconstruction over annotated databases (`.explain`).
//!
//! Annotated evaluation ([`crate::config::InterpreterConfig::provenance`])
//! records a `(height, rule)` pair for every tuple: the derivation epoch
//! that first produced it and the source rule that fired. This module
//! turns those annotations back into *minimal-height proof trees* by
//! height-constrained re-querying, following the approach of provenance
//! in Soufflé: to explain a tuple `t` of height `h` derived by rule `R`,
//! re-run `R`'s body over the full database restricted to premises of
//! height `< h`, pick the binding that minimizes the maximum premise
//! height, and recurse.
//!
//! The re-querying runs over the [`stir_ram::prov::ProvInfo`] plans — each
//! source rule re-lowered over the full base relations, outside the reach
//! of the optimizer and index selection. The matcher therefore ignores
//! index numbers entirely (prov plans keep the `usize::MAX` placeholder)
//! and matches search patterns against source-order scans.
//!
//! Heights make the search sound and terminating: every internal node's
//! premises have strictly smaller heights, so recursion bottoms out at
//! height-0 input facts. Minimality makes proofs canonical: among all
//! derivations the one whose tallest premise is shortest is reported,
//! independent of rule order and worker count.

use crate::database::{Database, RULE_INPUT};
use crate::error::EvalError;
use crate::functors::{eval_cmp, eval_intrinsic};
use crate::interp::AggAcc;
use crate::value::Value;
use stir_der::iter::TupleIter;
use stir_ram::expr::RamExpr;
use stir_ram::program::{RamProgram, RelId};
use stir_ram::stmt::{RamCond, RamOp, RamStmt};

/// One node of a proof tree: a fact, how it was derived, and the premise
/// sub-proofs.
#[derive(Debug, Clone, PartialEq)]
pub struct ProofNode {
    /// The fact's relation.
    pub rel: RelId,
    /// The fact, as source-order bit patterns.
    pub tuple: Vec<u32>,
    /// Annotated derivation height (`0` for input facts).
    pub height: u32,
    /// Annotated rule id (`RULE_INPUT` for input facts and facts without
    /// an annotation, e.g. equivalence-closure pairs).
    pub rule: u32,
    /// Source text of the firing rule (derived nodes only).
    pub label: Option<String>,
    /// The rule could not be re-matched (it draws auto-increment values,
    /// or the match budget ran out); premises are omitted.
    pub opaque: bool,
    /// The depth or node limit cut the tree here; premises are omitted.
    pub truncated: bool,
    /// Sub-proofs of the rule's positive body atoms, in body order.
    pub premises: Vec<ProofNode>,
}

impl ProofNode {
    /// Whether this node is an axiom leaf (input fact / ground fact).
    pub fn is_input(&self) -> bool {
        self.rule == RULE_INPUT
    }

    /// Total number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self.premises.iter().map(ProofNode::size).sum::<usize>()
    }
}

/// Budget limits for proof-tree reconstruction.
#[derive(Debug, Clone, Copy)]
pub struct ExplainLimits {
    /// Maximum proof-tree depth; deeper premises are reported truncated.
    pub max_depth: usize,
    /// Maximum total proof-tree nodes.
    pub max_nodes: usize,
    /// Maximum candidate tuples examined per rule re-match; exhaustion
    /// renders the node opaque instead of looping on huge joins.
    pub max_candidates: usize,
}

impl Default for ExplainLimits {
    fn default() -> Self {
        ExplainLimits {
            max_depth: 64,
            max_nodes: 10_000,
            max_candidates: 100_000,
        }
    }
}

/// Reconstructs the minimal-height proof tree of `tuple` in `rel`.
///
/// # Errors
///
/// Fails when the database was not built with provenance enabled, when
/// `rel`'s tuple is not in the database (not derivable), or when the
/// recorded rule id is out of range (corrupt annotations).
pub fn explain(
    ram: &RamProgram,
    db: &Database,
    rel: RelId,
    tuple: &[u32],
    limits: &ExplainLimits,
) -> Result<ProofNode, EvalError> {
    if !db.provenance() {
        return Err(EvalError::new(
            "provenance is off: restart with --provenance to enable .explain",
        ));
    }
    if !db.rd(rel).contains(tuple) {
        let fact = format_fact(ram, db, rel, tuple);
        return Err(EvalError::new(format!("`{fact}` is not derivable")));
    }
    let mut nodes = limits.max_nodes;
    build(ram, db, rel, tuple, limits.max_depth, limits, &mut nodes)
}

/// Renders a tuple as `name(v1, v2, ...)` using the relation's declared
/// attribute types.
pub fn format_fact(ram: &RamProgram, db: &Database, rel: RelId, tuple: &[u32]) -> String {
    let meta = ram.relation(rel);
    let symbols = db.symbols_rd();
    let args: Vec<String> = tuple
        .iter()
        .zip(&meta.attr_types)
        .map(|(&bits, &ty)| Value::decode(bits, ty, &symbols).to_string())
        .collect();
    format!("{}({})", meta.name, args.join(", "))
}

/// Renders a proof tree as an indented listing, one fact per line: the
/// root first, each premise two spaces deeper, with the firing rule (or
/// `input`) in brackets.
pub fn render_proof(ram: &RamProgram, db: &Database, node: &ProofNode) -> String {
    let mut out = String::new();
    render_into(ram, db, node, 0, &mut out);
    out
}

fn render_into(ram: &RamProgram, db: &Database, node: &ProofNode, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&format_fact(ram, db, node.rel, &node.tuple));
    if node.is_input() {
        out.push_str("  [input]");
    } else {
        let rule = node.label.as_deref().unwrap_or("?");
        out.push_str(&format!("  [height {}] {}", node.height, rule));
        if node.opaque {
            out.push_str("  (opaque)");
        } else if node.truncated {
            out.push_str("  (depth limit)");
        }
    }
    out.push('\n');
    for p in &node.premises {
        render_into(ram, db, p, depth + 1, out);
    }
}

fn build(
    ram: &RamProgram,
    db: &Database,
    rel: RelId,
    tuple: &[u32],
    depth: usize,
    limits: &ExplainLimits,
    nodes: &mut usize,
) -> Result<ProofNode, EvalError> {
    *nodes = nodes.saturating_sub(1);
    // Tuples without an annotation (equivalence-closure pairs implied by
    // the union-find representation) read as height-0 axioms.
    let (height, rule) = db.rd(rel).annotation(tuple).unwrap_or((0, RULE_INPUT));
    let mut node = ProofNode {
        rel,
        tuple: tuple.to_vec(),
        height,
        rule,
        label: None,
        opaque: false,
        truncated: false,
        premises: Vec::new(),
    };
    if rule == RULE_INPUT {
        return Ok(node);
    }
    let prov_rule = ram
        .prov
        .rules
        .get(rule as usize)
        .ok_or_else(|| EvalError::new(format!("annotation names unknown rule #{rule}")))?;
    node.label = Some(prov_rule.label.clone());
    if prov_rule.opaque {
        node.opaque = true;
        return Ok(node);
    }
    if depth == 0 || *nodes == 0 {
        node.truncated = true;
        return Ok(node);
    }
    let Some(RamStmt::Query { levels, op, .. }) = &prov_rule.stmt else {
        node.opaque = true;
        return Ok(node);
    };
    let mut m = Matcher {
        db,
        target: tuple,
        target_h: height,
        levels: vec![Vec::new(); *levels],
        premises: Vec::new(),
        cur_max: 0,
        best: None,
        candidates: limits.max_candidates,
    };
    m.search(op);
    match m.best {
        Some((_, premises)) => {
            for (prel, pt) in premises {
                node.premises
                    .push(build(ram, db, prel, &pt, depth - 1, limits, nodes)?);
            }
        }
        // Budget exhausted before a binding was found (or, defensively,
        // no binding re-matched): report the rule without premises.
        None => node.opaque = true,
    }
    Ok(node)
}

/// A premise bound during matching: relation, source-order tuple, height.
type Premise = (RelId, Vec<u32>, u32);

/// A fact in a completed binding: relation and source-order tuple.
type BoundFact = (RelId, Vec<u32>);

/// Depth-first search over a provenance plan's operation tree for the
/// binding that derives the target tuple while minimizing the maximum
/// premise height (all premise heights strictly below the target's).
struct Matcher<'a> {
    db: &'a Database,
    target: &'a [u32],
    target_h: u32,
    /// Bound tuple per binding level (empty = unbound).
    levels: Vec<Vec<u32>>,
    /// Premises bound so far, outermost first.
    premises: Vec<Premise>,
    /// Maximum premise height bound so far.
    cur_max: u32,
    /// Best complete binding: (max premise height, premises).
    best: Option<(u32, Vec<BoundFact>)>,
    /// Remaining candidate-tuple budget.
    candidates: usize,
}

impl Matcher<'_> {
    fn search(&mut self, op: &RamOp) {
        if self.candidates == 0 {
            return;
        }
        match op {
            RamOp::Scan {
                rel, level, body, ..
            } => {
                self.scan_candidates(*rel, *level, &[], body);
            }
            RamOp::IndexScan {
                rel,
                level,
                pattern,
                eqrel_swap,
                body,
                ..
            } => {
                // Eqrel symmetry probes carry the pattern flipped into the
                // probing order; swap it back so constraints line up with
                // source columns (an eqrel scan yields every ordered pair
                // of each class, so matching in source order is complete).
                let source_pattern: Vec<Option<RamExpr>> = if *eqrel_swap {
                    vec![pattern[1].clone(), pattern[0].clone()]
                } else {
                    pattern.clone()
                };
                let mut constraints = Vec::new();
                for (col, p) in source_pattern.iter().enumerate() {
                    if let Some(e) = p {
                        match self.eval_expr(e) {
                            Ok(v) => constraints.push((col, v)),
                            Err(_) => return, // dead end, not a failure
                        }
                    }
                }
                self.scan_candidates(*rel, *level, &constraints, body);
            }
            RamOp::Filter { cond, body } => {
                if matches!(self.eval_cond(cond), Ok(true)) {
                    self.search(body);
                }
            }
            RamOp::Project { values, .. } => {
                for (c, v) in values.iter().enumerate() {
                    match self.eval_expr(v) {
                        Ok(x) if x == self.target[c] => {}
                        _ => return,
                    }
                }
                let better = match &self.best {
                    Some((best_max, _)) => self.cur_max < *best_max,
                    None => true,
                };
                if better {
                    self.best = Some((
                        self.cur_max,
                        self.premises
                            .iter()
                            .map(|(r, t, _)| (*r, t.clone()))
                            .collect(),
                    ));
                }
            }
            RamOp::Aggregate {
                level,
                func,
                rel,
                pattern,
                value,
                body,
                ..
            } => {
                let mut constraints = Vec::new();
                for (col, p) in pattern.iter().enumerate() {
                    if let Some(e) = p {
                        match self.eval_expr(e) {
                            Ok(v) => constraints.push((col, v)),
                            Err(_) => return,
                        }
                    }
                }
                // Aggregates are recomputed over the current database (they
                // read relations of strictly lower strata, complete before
                // the target's rule fired); scanned tuples are not premises.
                let tuples = collect_source(&self.db.rd(*rel));
                let mut acc = AggAcc::new(*func);
                for t in &tuples {
                    if !constraints.iter().all(|&(c, v)| t[c] == v) {
                        continue;
                    }
                    let folded = match value {
                        Some(e) => {
                            self.levels[*level] = t.clone();
                            let r = self.eval_expr(e);
                            self.levels[*level] = Vec::new();
                            match r {
                                Ok(v) => v,
                                Err(_) => return,
                            }
                        }
                        None => 0,
                    };
                    acc.add(folded);
                }
                if let Some(result) = acc.finish() {
                    self.levels[*level] = vec![result];
                    self.search(body);
                    self.levels[*level] = Vec::new();
                }
            }
        }
    }

    /// Binds, one by one, every tuple of `rel` matching `constraints`
    /// whose height admits a better proof, and recurses into `body`.
    fn scan_candidates(
        &mut self,
        rel: RelId,
        level: usize,
        constraints: &[(usize, u32)],
        body: &RamOp,
    ) {
        let tuples = collect_source(&self.db.rd(rel));
        for t in tuples {
            if self.candidates == 0 {
                return;
            }
            self.candidates -= 1;
            if !constraints.iter().all(|&(c, v)| t[c] == v) {
                continue;
            }
            let h = self.db.rd(rel).annotation(&t).map_or(0, |(h, _)| h);
            // Premises must sit strictly below the target; and once a
            // proof is known, only strictly lower maxima can improve it.
            if h >= self.target_h {
                continue;
            }
            if let Some((best_max, _)) = &self.best {
                if h.max(self.cur_max) >= *best_max {
                    continue;
                }
            }
            let saved_max = self.cur_max;
            self.cur_max = self.cur_max.max(h);
            self.levels[level] = t.clone();
            self.premises.push((rel, t, h));
            self.search(body);
            self.premises.pop();
            self.levels[level] = Vec::new();
            self.cur_max = saved_max;
        }
    }

    fn eval_expr(&self, e: &RamExpr) -> Result<u32, EvalError> {
        match e {
            RamExpr::Constant(k) => Ok(*k),
            RamExpr::TupleElement { level, column } => {
                // An unbound level is an internal invariant violation;
                // treated as a dead end rather than panicking on it.
                self.levels[*level]
                    .get(*column)
                    .copied()
                    .ok_or_else(|| EvalError::new("unbound tuple element"))
            }
            RamExpr::Intrinsic { op, args } => {
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval_expr(a)?);
                }
                eval_intrinsic(*op, &vs, &self.db.symbols)
            }
            RamExpr::AutoIncrement => {
                Err(EvalError::new("auto-increment rules cannot be re-matched"))
            }
        }
    }

    fn eval_cond(&self, c: &RamCond) -> Result<bool, EvalError> {
        match c {
            RamCond::True => Ok(true),
            RamCond::Conjunction(cs) => {
                for c in cs {
                    if !self.eval_cond(c)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            RamCond::Negation(inner) => Ok(!self.eval_cond(inner)?),
            RamCond::Comparison { kind, lhs, rhs } => {
                Ok(eval_cmp(*kind, self.eval_expr(lhs)?, self.eval_expr(rhs)?))
            }
            RamCond::EmptinessCheck { rel } => Ok(self.db.rd(*rel).is_empty()),
            RamCond::ExistenceCheck { rel, pattern, .. } => {
                let mut constraints = Vec::new();
                for (col, p) in pattern.iter().enumerate() {
                    if let Some(e) = p {
                        constraints.push((col, self.eval_expr(e)?));
                    }
                }
                let r = self.db.rd(*rel);
                if constraints.len() == r.arity() {
                    let mut t = vec![0u32; r.arity()];
                    for &(c, v) in &constraints {
                        t[c] = v;
                    }
                    return Ok(r.contains(&t));
                }
                let mut it = r.scan_source();
                while let Some(t) = it.next_tuple() {
                    if constraints.iter().all(|&(c, v)| t[c] == v) {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }
}

/// Collects a relation's tuples in source order (eqrel relations yield
/// every ordered pair of each equivalence class).
fn collect_source(r: &stir_der::relation::Relation) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut it = r.scan_source();
    while let Some(t) = it.next_tuple() {
        out.push(t.to_vec());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InterpreterConfig;
    use crate::database::DataMode;
    use crate::interp::Interpreter;
    use crate::itree;
    use stir_frontend::parse_and_check;
    use stir_ram::translate::translate;

    fn annotated_db(src: &str, config: InterpreterConfig) -> (RamProgram, Database) {
        let ram = translate(&parse_and_check(src).expect("checks")).expect("translates");
        let db = Database::new_with(&ram, DataMode::Specialized, true);
        let tree = itree::build(&ram, &config);
        Interpreter::new(&ram, &db, config)
            .run(&tree)
            .expect("runs");
        (ram, db)
    }

    const TC: &str = "\
        .decl e(x: number, y: number)\n\
        .decl p(x: number, y: number)\n\
        .output p\n\
        e(1, 2). e(2, 3). e(3, 4).\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";

    fn check_heights(n: &ProofNode) {
        for p in &n.premises {
            assert!(p.height < n.height, "premise height must drop: {n:?}");
            check_heights(p);
        }
    }

    #[test]
    fn explains_transitive_closure_with_decreasing_heights() {
        let config = InterpreterConfig::optimized().with_provenance();
        let (ram, db) = annotated_db(TC, config);
        let p = ram.relation_by_name("p").unwrap().id;
        let proof = explain(&ram, &db, p, &[1, 4], &ExplainLimits::default()).expect("explains");
        assert_eq!(proof.tuple, vec![1, 4]);
        assert!(!proof.is_input());
        assert_eq!(proof.premises.len(), 2, "{proof:?}");
        check_heights(&proof);
        let rendered = render_proof(&ram, &db, &proof);
        assert!(rendered.contains("p(1, 4)"), "{rendered}");
        assert!(rendered.contains("[input]"), "{rendered}");
        assert!(rendered.contains(":-"), "{rendered}");
    }

    #[test]
    fn direct_facts_are_input_leaves() {
        let config = InterpreterConfig::optimized().with_provenance();
        let (ram, db) = annotated_db(TC, config);
        let e = ram.relation_by_name("e").unwrap().id;
        let proof = explain(&ram, &db, e, &[1, 2], &ExplainLimits::default()).expect("explains");
        assert!(proof.is_input());
        assert!(proof.premises.is_empty());
    }

    #[test]
    fn underivable_facts_and_provenance_off_error() {
        let config = InterpreterConfig::optimized().with_provenance();
        let (ram, db) = annotated_db(TC, config);
        let p = ram.relation_by_name("p").unwrap().id;
        let err = explain(&ram, &db, p, &[4, 1], &ExplainLimits::default()).unwrap_err();
        assert!(err.to_string().contains("not derivable"), "{err}");

        let plain = InterpreterConfig::optimized();
        let ram2 = translate(&parse_and_check(TC).expect("checks")).expect("translates");
        let db2 = Database::new_with(&ram2, DataMode::Specialized, false);
        let tree = itree::build(&ram2, &plain);
        Interpreter::new(&ram2, &db2, plain)
            .run(&tree)
            .expect("runs");
        let p2 = ram2.relation_by_name("p").unwrap().id;
        let err = explain(&ram2, &db2, p2, &[1, 2], &ExplainLimits::default()).unwrap_err();
        assert!(err.to_string().contains("provenance is off"), "{err}");
    }

    #[test]
    fn depth_limit_truncates() {
        let config = InterpreterConfig::optimized().with_provenance();
        let (ram, db) = annotated_db(TC, config);
        let p = ram.relation_by_name("p").unwrap().id;
        let limits = ExplainLimits {
            max_depth: 1,
            ..ExplainLimits::default()
        };
        let proof = explain(&ram, &db, p, &[1, 4], &limits).expect("explains");
        assert!(
            proof
                .premises
                .iter()
                .any(|n| n.truncated && n.premises.is_empty()),
            "{proof:?}"
        );
    }

    #[test]
    fn negation_and_arithmetic_rules_rematch() {
        let src = "\
            .decl a(x: number)\n.decl b(x: number)\n.decl r(x: number, y: number)\n\
            .output r\n\
            a(1). a(2). b(2).\n\
            r(x, y) :- a(x), !b(x), y = x * 10 + 1.\n";
        let config = InterpreterConfig::optimized().with_provenance();
        let (ram, db) = annotated_db(src, config);
        let r = ram.relation_by_name("r").unwrap().id;
        let proof = explain(&ram, &db, r, &[1, 11], &ExplainLimits::default()).expect("explains");
        assert_eq!(proof.premises.len(), 1);
        assert_eq!(proof.premises[0].tuple, vec![1]);
        check_heights(&proof);
    }

    #[test]
    fn aggregate_rules_rematch_via_recomputation() {
        let src = "\
            .decl e(x: number, y: number)\n.decl t(n: number)\n\
            .output t\n\
            e(1, 2). e(1, 3).\n\
            t(n) :- n = count : { e(1, _) }.\n";
        let config = InterpreterConfig::optimized().with_provenance();
        let (ram, db) = annotated_db(src, config);
        let t = ram.relation_by_name("t").unwrap().id;
        let proof = explain(&ram, &db, t, &[2], &ExplainLimits::default()).expect("explains");
        assert!(!proof.opaque, "{proof:?}");
        check_heights(&proof);
    }

    #[test]
    fn autoincrement_rules_are_opaque() {
        let src = "\
            .decl s(x: number)\n.decl tagged(x: number, id: number)\n\
            .output tagged\n\
            s(10).\n\
            tagged(x, $) :- s(x).\n";
        let config = InterpreterConfig::optimized().with_provenance();
        let (ram, db) = annotated_db(src, config);
        let tagged = ram.relation_by_name("tagged").unwrap().id;
        let rows = db.rd(tagged).to_sorted_tuples();
        let proof = explain(&ram, &db, tagged, &rows[0], &ExplainLimits::default()).expect("ok");
        assert!(proof.opaque);
        assert!(proof.premises.is_empty());
    }
}
