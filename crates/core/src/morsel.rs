//! The shared morsel queue behind work-stealing parallel scans.
//!
//! A parallel scan splits its source index into many small disjoint
//! chunks ("morsels", HyPer-style) via [`stir_der::IndexAdapter::morsels`]
//! and hands them to a [`MorselQueue`]. Each worker thread holds a
//! [`WorkerHandle`] and repeatedly pulls tuple batches: it first drains
//! the contiguous slot range it was seeded with (preserving locality and,
//! on uniform data, matching the old static partitioning), then *steals*
//! unclaimed morsels from other workers' ranges. The queue is lightly
//! locked — claiming is an atomic cursor bump per worker range, and each
//! slot's chunk iterator sits behind its own (uncontended) mutex that is
//! taken exactly once, by the claimant.
//!
//! Representations that cannot chunk structurally yield a single
//! [`Morsels::Stream`]; the queue then serves size-bounded batches out of
//! one shared iterator, so those scans still parallelize (the body work
//! dominates the serialized `fill`) without materializing per-partition
//! copies.
//!
//! Determinism: morsels are disjoint and cover the scanned range exactly,
//! so the multiset of tuples delivered across all workers is independent
//! of the schedule. Everything order-sensitive (dedup, insert counting,
//! provenance annotation) happens coordinator-side after the join, which
//! is what keeps results and profiles invariant under the job count and
//! the morsel size.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use stir_der::iter::TupleIter;
use stir_der::Morsels;

/// Per-worker scheduling statistics for one parallel scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Morsels (chunks, or stream batches) this worker claimed.
    pub morsels: u64,
    /// Morsels claimed outside the worker's own slot range.
    pub steals: u64,
    /// Outer tuples this worker pulled from the queue.
    pub tuples: u64,
    /// Loop iterations the worker's whole frame performed (outer tuples
    /// plus inner joins/probes), when profiling was on; `0` otherwise.
    /// This is the balance metric EXPERIMENTS E12 reports — outer-tuple
    /// counts alone miss join-work skew.
    pub work: u64,
}

impl WorkerStats {
    /// Folds another stats record into this one.
    pub fn absorb(&mut self, other: &WorkerStats) {
        self.morsels += other.morsels;
        self.steals += other.steals;
        self.tuples += other.tuples;
        self.work += other.work;
    }
}

/// Aggregated parallel-execution telemetry for a whole evaluation,
/// accumulated across every parallel scan the interpreter ran.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelReport {
    /// Number of scans that actually fanned out to workers.
    pub scans: u64,
    /// Scans that were marked parallel but stayed sequential because the
    /// source index fit in a single morsel.
    pub small_scans: u64,
    /// Per-worker statistics, indexed by worker id (`len == jobs`).
    pub workers: Vec<WorkerStats>,
}

impl ParallelReport {
    /// Total morsels claimed across all workers.
    pub fn morsels(&self) -> u64 {
        self.workers.iter().map(|w| w.morsels).sum()
    }

    /// Total stolen morsels across all workers.
    pub fn steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total tuples pulled from morsel queues across all workers.
    pub fn tuples(&self) -> u64 {
        self.workers.iter().map(|w| w.tuples).sum()
    }
}

/// One morsel slot: the chunk iterator, taken exactly once by whichever
/// worker claims the slot.
type Slot<'a> = Mutex<Option<Box<dyn TupleIter + Send + 'a>>>;

enum Source<'a> {
    /// Structurally chunked index: slots are pre-assigned to contiguous
    /// per-worker ranges; claiming bumps an atomic cursor.
    Chunks {
        slots: Vec<Slot<'a>>,
        /// `cursors[w]` is the next unclaimed slot of worker `w`'s range.
        cursors: Vec<AtomicUsize>,
        /// `ranges[w] = (start, end)` of worker `w`'s slots.
        ranges: Vec<(usize, usize)>,
    },
    /// Unchunkable index: one shared iterator; batches are cut off it
    /// under a mutex.
    Stream(Mutex<Box<dyn TupleIter + Send + 'a>>),
}

/// The shared queue workers drain and steal from until empty.
pub struct MorselQueue<'a> {
    source: Source<'a>,
    workers: usize,
    /// Target tuples per batch handed to a worker.
    target: usize,
    /// Set when any worker hits an evaluation error; everyone else stops
    /// at their next batch request.
    poisoned: AtomicBool,
}

impl std::fmt::Debug for MorselQueue<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.source {
            Source::Chunks { slots, .. } => format!("Chunks({})", slots.len()),
            Source::Stream(_) => "Stream".to_string(),
        };
        f.debug_struct("MorselQueue")
            .field("source", &kind)
            .field("workers", &self.workers)
            .field("target", &self.target)
            .finish()
    }
}

impl<'a> MorselQueue<'a> {
    /// Builds a queue over an index's morsels for `workers` threads with
    /// `target` tuples per batch.
    pub fn new(morsels: Morsels<'a>, workers: usize, target: usize) -> Self {
        let workers = workers.max(1);
        let target = target.max(1);
        let source = match morsels {
            Morsels::Chunks(chunks) => {
                let n = chunks.len();
                let slots: Vec<Slot<'a>> =
                    chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
                // Contiguous ranges, remainder spread over the first
                // workers — the same split the old static partitioner
                // used, so the no-steal schedule preserves locality.
                let base = n / workers;
                let extra = n % workers;
                let mut ranges = Vec::with_capacity(workers);
                let mut start = 0;
                for w in 0..workers {
                    let len = base + usize::from(w < extra);
                    ranges.push((start, start + len));
                    start += len;
                }
                let cursors = ranges.iter().map(|&(s, _)| AtomicUsize::new(s)).collect();
                Source::Chunks {
                    slots,
                    cursors,
                    ranges,
                }
            }
            Morsels::Stream(it) => Source::Stream(Mutex::new(it)),
        };
        MorselQueue {
            source,
            workers,
            target,
            poisoned: AtomicBool::new(false),
        }
    }

    /// A handle for worker `id` (`0 <= id < workers`).
    pub fn worker(&self, id: usize) -> WorkerHandle<'_, 'a> {
        debug_assert!(id < self.workers);
        WorkerHandle {
            queue: self,
            id,
            current: None,
            stats: WorkerStats::default(),
        }
    }

    /// Marks the queue dead; subsequent `next_batch` calls return `0`.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }

    /// Claims an unclaimed chunk for `worker`, preferring its own range,
    /// then scanning victims round-robin. Returns the chunk and whether
    /// it was stolen.
    fn claim(&self, worker: usize) -> Option<(Box<dyn TupleIter + Send + 'a>, bool)> {
        let Source::Chunks {
            slots,
            cursors,
            ranges,
        } = &self.source
        else {
            return None;
        };
        for k in 0..self.workers {
            let v = (worker + k) % self.workers;
            let end = ranges[v].1;
            // The cursor only moves forward; a stale read just means a
            // wasted fetch_add past `end`, which is harmless (bounded by
            // one per drained victim per `next_batch` call).
            let i = cursors[v].fetch_add(1, Ordering::Relaxed);
            if i < end {
                let chunk = slots[i]
                    .lock()
                    .expect("morsel slot lock")
                    .take()
                    .expect("slot claimed exactly once");
                return Some((chunk, k != 0));
            }
        }
        None
    }
}

/// One worker's view of the queue: the chunk it is currently draining
/// plus its scheduling statistics.
pub struct WorkerHandle<'q, 'a> {
    queue: &'q MorselQueue<'a>,
    id: usize,
    current: Option<Box<dyn TupleIter + Send + 'a>>,
    stats: WorkerStats,
}

impl std::fmt::Debug for WorkerHandle<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerHandle")
            .field("id", &self.id)
            .field("stats", &self.stats)
            .finish()
    }
}

impl WorkerHandle<'_, '_> {
    /// Fills `out` (cleared first) with up to the queue's target number
    /// of tuples, flattened. Returns the tuple count; `0` means the queue
    /// is drained (or poisoned) and the worker should stop.
    pub fn next_batch(&mut self, out: &mut Vec<u32>) -> usize {
        out.clear();
        let target = self.queue.target;
        loop {
            if self.queue.poisoned.load(Ordering::Relaxed) {
                return 0;
            }
            match &self.queue.source {
                Source::Stream(shared) => {
                    let n = shared.lock().expect("stream lock").fill(out, target);
                    if n > 0 {
                        self.stats.morsels += 1;
                        self.stats.tuples += n as u64;
                    }
                    return n;
                }
                Source::Chunks { .. } => {
                    if self.current.is_none() {
                        match self.queue.claim(self.id) {
                            Some((chunk, stolen)) => {
                                self.stats.morsels += 1;
                                self.stats.steals += u64::from(stolen);
                                self.current = Some(chunk);
                            }
                            None => return 0,
                        }
                    }
                    let it = self.current.as_mut().expect("chunk present");
                    let n = it.fill(out, target);
                    if n < target {
                        self.current = None;
                    }
                    if n > 0 {
                        self.stats.tuples += n as u64;
                        return n;
                    }
                    // Empty chunk: claim the next one.
                }
            }
        }
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> WorkerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_der::iter::VecTupleIter;

    fn chunked(chunks: &[&[u32]]) -> Morsels<'static> {
        Morsels::Chunks(
            chunks
                .iter()
                .map(|c| Box::new(VecTupleIter::new(c.to_vec(), 1)) as Box<dyn TupleIter + Send>)
                .collect(),
        )
    }

    fn drain_all(queue: &MorselQueue<'_>, workers: usize) -> (Vec<u32>, Vec<WorkerStats>) {
        let mut seen = Vec::new();
        let mut stats = Vec::new();
        let mut handles: Vec<_> = (0..workers).map(|w| queue.worker(w)).collect();
        let mut batch = Vec::new();
        let mut live = true;
        while live {
            live = false;
            for h in &mut handles {
                if h.next_batch(&mut batch) > 0 {
                    seen.extend_from_slice(&batch);
                    live = true;
                }
            }
        }
        for h in handles {
            stats.push(h.stats());
        }
        (seen, stats)
    }

    #[test]
    fn chunked_queue_delivers_every_tuple_once() {
        let m = chunked(&[&[1, 2, 3], &[4, 5], &[], &[6], &[7, 8, 9, 10]]);
        let queue = MorselQueue::new(m, 3, 2);
        let (mut seen, stats) = drain_all(&queue, 3);
        seen.sort_unstable();
        assert_eq!(seen, (1..=10).collect::<Vec<_>>());
        let total: u64 = stats.iter().map(|s| s.tuples).sum();
        assert_eq!(total, 10);
        let morsels: u64 = stats.iter().map(|s| s.morsels).sum();
        assert_eq!(morsels, 5);
    }

    #[test]
    fn lone_survivor_steals_everything() {
        // Worker 1 never shows up; worker 0 must steal worker 1's range.
        let m = chunked(&[&[1], &[2], &[3], &[4]]);
        let queue = MorselQueue::new(m, 2, 8);
        let mut h = queue.worker(0);
        let mut batch = Vec::new();
        let mut seen = Vec::new();
        while h.next_batch(&mut batch) > 0 {
            seen.extend_from_slice(&batch);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(h.stats().morsels, 4);
        assert!(h.stats().steals >= 2, "stole the other range");
    }

    #[test]
    fn stream_queue_batches_without_stealing() {
        let m = Morsels::Stream(Box::new(VecTupleIter::new((0..20).collect(), 2)));
        let queue = MorselQueue::new(m, 4, 3);
        let (mut seen, stats) = drain_all(&queue, 4);
        // Pairs stay intact even though 3 does not divide the batch count.
        assert_eq!(seen.len(), 20);
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
        assert_eq!(stats.iter().map(|s| s.steals).sum::<u64>(), 0);
    }

    #[test]
    fn poisoned_queue_stops_serving() {
        let m = chunked(&[&[1], &[2], &[3]]);
        let queue = MorselQueue::new(m, 1, 1);
        let mut h = queue.worker(0);
        let mut batch = Vec::new();
        assert_eq!(h.next_batch(&mut batch), 1);
        queue.poison();
        assert_eq!(h.next_batch(&mut batch), 0);
    }

    #[test]
    fn more_workers_than_chunks_is_fine() {
        let m = chunked(&[&[42]]);
        let queue = MorselQueue::new(m, 8, 4);
        let (seen, stats) = drain_all(&queue, 8);
        assert_eq!(seen, vec![42]);
        assert_eq!(stats.iter().map(|s| s.tuples).sum::<u64>(), 1);
    }

    #[test]
    fn worker_stats_absorb_adds() {
        let mut a = WorkerStats {
            morsels: 1,
            steals: 2,
            tuples: 3,
            work: 4,
        };
        a.absorb(&WorkerStats {
            morsels: 10,
            steals: 20,
            tuples: 30,
            work: 40,
        });
        assert_eq!(
            a,
            WorkerStats {
                morsels: 11,
                steals: 22,
                tuples: 33,
                work: 44,
            }
        );
    }

    #[test]
    fn report_totals_sum_over_workers() {
        let mut r = ParallelReport::default();
        r.workers.push(WorkerStats {
            morsels: 2,
            steals: 1,
            tuples: 5,
            work: 9,
        });
        r.workers.push(WorkerStats {
            morsels: 3,
            steals: 0,
            tuples: 7,
            work: 11,
        });
        assert_eq!(r.morsels(), 5);
        assert_eq!(r.steals(), 1);
        assert_eq!(r.tuples(), 12);
    }
}
