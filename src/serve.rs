//! The serving line protocol shared by `stir repl` and `stird`.
//!
//! One request per line, one response per request:
//!
//! ```text
//! +rel(t1, t2, ...).     insert a fact        → `ok N inserted`
//! -rel(t1, t2, ...).     retract a fact       → `ok N retracted`
//! ?rel(p1, p2, ...)      query a pattern      → TSV rows, then `ok N rows`
//! .explain rel(c1, ...)  proof of a fact      → tree lines, then `ok N nodes`
//! .stats                 serving counters     → one `key=value` line
//! .stats json            the full metrics registry as one JSON object
//! .help                  command summary
//! .quit                  close this session   → `bye`
//! .stop                  shut the server down → `bye` (REPL: same as .quit)
//! ```
//!
//! Insert terms are constants: numbers parse per the column's declared
//! type and quoted strings are symbols (an unquoted word is also accepted
//! as a symbol on a symbol-typed column, matching the `.facts` format).
//! Query terms may additionally be `_` or a bare identifier, both meaning
//! "free"; symbol constants in queries must be quoted so they cannot be
//! mistaken for variables. Errors never kill the session — they come back
//! as a single `err <reason>` line.
//!
//! Retractions take the same constant terms as inserts. A retracted
//! fact disappears along with everything derived only from it; tuples
//! with surviving alternative derivations are restored incrementally
//! (see [`ResidentEngine::retract_facts`]), and on a durable engine the
//! delete record is WAL-appended (and fsynced per the durability mode)
//! before evaluation, so the acknowledged retraction survives a crash.
//!
//! The engine sits behind a [`std::sync::RwLock`]: inserts take the write
//! lock, queries the read lock, so a TCP server gets serialized writes
//! and concurrent reads for free and the REPL pays nothing (uncontended
//! locks). The paper-adjacent crates vendor no dependencies, so this is
//! the std stand-in for the `parking_lot` lock a production server would
//! use.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};
use stir_core::io::parse_field;
use stir_core::telemetry::{LogLevel, Logger, ServeMetrics};
use stir_core::{ResidentEngine, Telemetry, Value};
use stir_frontend::ast::AttrType;

/// `retry-after` hint (milliseconds) on `err overloaded` replies: shed
/// writes should come back after roughly one write-queue drain.
const OVERLOADED_RETRY_MS: u64 = 50;

/// What the session should do after a handled line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep reading requests.
    Continue,
    /// Close this session.
    Quit,
    /// Close this session and shut the whole server down.
    Stop,
}

/// Per-session limits.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Longest accepted request line; anything longer is answered with a
    /// protocol error (and the excess discarded) instead of buffered.
    pub max_line_bytes: usize,
    /// Per-request evaluation deadline. A query past it aborts with an
    /// error; an update or retraction past it still commits (see
    /// [`ResidentEngine::insert_facts_deadline`] and
    /// [`ResidentEngine::retract_facts_deadline`]) but is reported.
    pub request_timeout: Option<Duration>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_line_bytes: 1 << 20,
            request_timeout: None,
        }
    }
}

/// Per-connection serving context: the shared metrics registry, the
/// peer's identity for log lines, and the slow-request threshold.
///
/// The default context is inert (metrics off, logging off), so callers
/// that don't serve traffic — the REPL, tests — pay nothing.
#[derive(Debug, Clone)]
pub struct RequestCtx {
    /// Serving metrics shared across every connection (latency
    /// histograms, gauges, the request-id counter).
    pub metrics: Arc<ServeMetrics>,
    /// The peer's address label (`"local"` for an in-process session).
    pub client: String,
    /// Log any update/query/explain slower than this many milliseconds.
    pub slow_ms: Option<u64>,
    /// The serving log stream (slow-request and per-request lines).
    pub logger: Logger,
    /// Bounded write admission shared across connections; `None` (the
    /// default) admits every write. Reads are never shed.
    pub admission: Option<Arc<WriteAdmission>>,
}

impl Default for RequestCtx {
    fn default() -> Self {
        RequestCtx {
            metrics: Arc::new(ServeMetrics::off()),
            client: "local".to_string(),
            slow_ms: None,
            logger: Logger::default(),
            admission: None,
        }
    }
}

/// Bounded write admission: at most `max` write requests may be queued
/// on or holding the engine write lock at once; excess writers are shed
/// with `err overloaded retry-after <ms>` *before* they block, so a
/// storm of writers cannot starve readers of the lock or pile up
/// unbounded threads. Reads are admitted unconditionally — shedding is
/// per-class, which is what keeps queries serving while a write burst
/// (or a degraded write path) saturates the write side.
#[derive(Debug)]
pub struct WriteAdmission {
    inflight: AtomicUsize,
    max: usize,
    /// Writes shed because the bound was hit.
    pub shed: AtomicU64,
}

impl WriteAdmission {
    /// A bound of `max` concurrent (queued + executing) writes.
    pub fn new(max: usize) -> WriteAdmission {
        WriteAdmission {
            inflight: AtomicUsize::new(0),
            max: max.max(1),
            shed: AtomicU64::new(0),
        }
    }

    /// Claims a write slot; `None` means the write must be shed.
    fn try_acquire(self: &Arc<Self>) -> Option<WritePermit> {
        if self.inflight.fetch_add(1, Ordering::SeqCst) >= self.max {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(WritePermit(Arc::clone(self)))
    }
}

/// RAII write slot from [`WriteAdmission::try_acquire`].
#[derive(Debug)]
struct WritePermit(Arc<WriteAdmission>);

impl Drop for WritePermit {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Claims a write slot from the context's admission bound (if any).
///
/// # Errors
///
/// The protocol error reply (without the `err ` prefix) when shed.
fn admit_write(ctx: &RequestCtx) -> Result<Option<WritePermit>, String> {
    match &ctx.admission {
        None => Ok(None),
        Some(adm) => match adm.try_acquire() {
            Some(permit) => Ok(Some(permit)),
            None => Err(format!("overloaded retry-after {OVERLOADED_RETRY_MS}")),
        },
    }
}

/// The latency bucket a protocol line falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqKind {
    Update,
    Retract,
    Query,
    Explain,
}

impl ReqKind {
    fn name(self) -> &'static str {
        match self {
            ReqKind::Update => "update",
            ReqKind::Retract => "retract",
            ReqKind::Query => "query",
            ReqKind::Explain => "explain",
        }
    }
}

/// Telemetry-relevant facts about one handled line.
struct ReqInfo {
    /// `None` for control lines (`.stats`, `.help`, …) and parse noise.
    kind: Option<ReqKind>,
    /// Tuples the request touched: inserted, returned, or proof nodes.
    tuples: u64,
}

impl ReqInfo {
    fn none() -> ReqInfo {
        ReqInfo {
            kind: None,
            tuples: 0,
        }
    }

    fn new(kind: ReqKind, tuples: u64) -> ReqInfo {
        ReqInfo {
            kind: Some(kind),
            tuples,
        }
    }
}

const HELP: &str = "\
commands:
  +rel(1, \"a\", ...).    insert a fact into an .input relation
  -rel(1, \"a\", ...).    retract a fact (derived-only consequences go too)
  ?rel(1, _, x)          query: constants bind, `_`/identifiers are free
  .explain rel(1, 2)     show a minimal-height proof tree (needs --provenance)
  .stats                 show serving counters
  .stats json            the full metrics registry as one JSON object
  .snapshot              persist a snapshot and truncate the WAL
  .compact               rewrite the snapshot as a fresh v2 run file
                         (folds disk-index overlays into new base runs)
  .help                  this summary
  .quit                  close this session
  .stop                  shut the server down";

/// Handles one protocol line against a shared engine, writing the
/// response to `out`.
///
/// # Errors
///
/// Only I/O errors writing the response propagate; protocol and
/// evaluation errors are reported to the peer as `err` lines.
pub fn handle_line(
    engine: &RwLock<ResidentEngine>,
    line: &str,
    tel: Option<&Telemetry>,
    out: &mut dyn Write,
) -> std::io::Result<Control> {
    handle_line_cfg(engine, line, &SessionConfig::default(), tel, out)
}

/// [`handle_line`] with explicit session limits (request deadline).
///
/// # Errors
///
/// Only I/O errors writing the response propagate.
pub fn handle_line_cfg(
    engine: &RwLock<ResidentEngine>,
    line: &str,
    cfg: &SessionConfig,
    tel: Option<&Telemetry>,
    out: &mut dyn Write,
) -> std::io::Result<Control> {
    handle_line_inner(engine, line, cfg, &RequestCtx::default(), tel, out)
        .map(|(control, _)| control)
}

/// [`handle_line_cfg`] plus per-request tracing: assigns a request id,
/// records the request's latency into the context's histograms, and
/// logs requests that exceed the slow threshold (truncated line, id,
/// client address, latency, tuples touched).
///
/// # Errors
///
/// Only I/O errors writing the response propagate.
pub fn handle_request(
    engine: &RwLock<ResidentEngine>,
    line: &str,
    cfg: &SessionConfig,
    ctx: &RequestCtx,
    tel: Option<&Telemetry>,
    out: &mut dyn Write,
) -> std::io::Result<Control> {
    let rid = ctx.metrics.next_request_id();
    let timed =
        ctx.metrics.enabled() || ctx.slow_ms.is_some() || ctx.logger.enabled(LogLevel::Debug);
    let t0 = if timed { Some(Instant::now()) } else { None };
    let (control, info) = handle_line_inner(engine, line, cfg, ctx, tel, out)?;
    let (Some(t0), Some(kind)) = (t0, info.kind) else {
        return Ok(control);
    };
    let elapsed = t0.elapsed();
    if ctx.metrics.enabled() {
        let hist = match kind {
            ReqKind::Update => &ctx.metrics.serve_update,
            ReqKind::Retract => &ctx.metrics.serve_retract,
            ReqKind::Query => &ctx.metrics.serve_query,
            ReqKind::Explain => &ctx.metrics.serve_explain,
        };
        hist.record(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }
    let ms = elapsed.as_millis().min(u64::MAX as u128) as u64;
    if ctx.slow_ms.is_some_and(|threshold| ms >= threshold) {
        ctx.metrics.slow_requests.fetch_add(1, Ordering::Relaxed);
        ctx.logger.log(
            LogLevel::Warn,
            &format!(
                "slow request id={rid} client={} kind={} latency_ms={ms} tuples={} line={}",
                ctx.client,
                kind.name(),
                info.tuples,
                truncate_for_log(line.trim()),
            ),
        );
    } else if ctx.logger.enabled(LogLevel::Debug) {
        ctx.logger.log(
            LogLevel::Debug,
            &format!(
                "request id={rid} client={} kind={} latency_ms={ms} tuples={}",
                ctx.client,
                kind.name(),
                info.tuples,
            ),
        );
    }
    Ok(control)
}

/// The request line as it appears in a log message: `Debug`-escaped and
/// cut to at most 120 bytes (on a char boundary) so a pathological line
/// cannot flood the log.
fn truncate_for_log(line: &str) -> String {
    const MAX: usize = 120;
    if line.len() <= MAX {
        return format!("{line:?}");
    }
    let mut end = MAX;
    while !line.is_char_boundary(end) {
        end -= 1;
    }
    format!("{:?}.. ({} bytes)", &line[..end], line.len())
}

fn handle_line_inner(
    engine: &RwLock<ResidentEngine>,
    line: &str,
    cfg: &SessionConfig,
    ctx: &RequestCtx,
    tel: Option<&Telemetry>,
    out: &mut dyn Write,
) -> std::io::Result<(Control, ReqInfo)> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok((Control::Continue, ReqInfo::none()));
    }
    match line {
        ".quit" | ".exit" => {
            writeln!(out, "bye")?;
            return Ok((Control::Quit, ReqInfo::none()));
        }
        ".stop" => {
            writeln!(out, "bye")?;
            return Ok((Control::Stop, ReqInfo::none()));
        }
        ".help" => {
            writeln!(out, "{HELP}")?;
            return Ok((Control::Continue, ReqInfo::none()));
        }
        ".stats" => {
            let engine = rd(engine);
            let s = engine.stats();
            // The retract counters only appear once a retraction has
            // been served, the explain counters only when provenance is
            // on, and the durability fields only on durable engines, so
            // plain in-memory sessions keep the historical line
            // verbatim.
            let retract = if s.retracts > 0 {
                format!(
                    " retracts={} retract_tuples={} rederived={}",
                    s.retracts, s.retract_tuples, s.rederived
                )
            } else {
                String::new()
            };
            let explain = if engine.config().provenance {
                format!(
                    " explain_requests={} explain_nodes={}",
                    s.explain_requests, s.explain_nodes
                )
            } else {
                String::new()
            };
            let durable = match (
                engine.wal_stats(),
                engine.snapshot_stats(),
                engine.recovery_report(),
            ) {
                (Some(w), Some((snap_writes, snap_tuples)), Some(rec)) => format!(
                    " wal_appends={} wal_bytes={} wal_fsyncs={} wal_append_errors={} \
                     snapshot_writes={snap_writes} snapshot_tuples={snap_tuples} \
                     recovery_snapshot_loaded={} recovery_replayed_batches={} recovery_replay_ms={}",
                    w.appends,
                    w.bytes,
                    w.fsyncs,
                    w.append_errors,
                    u64::from(rec.snapshot_loaded),
                    rec.replayed_batches,
                    rec.replay_ms,
                ),
                _ => String::new(),
            };
            let group = match engine.group_commit_stats() {
                Some((fsyncs, commits)) => {
                    format!(" group_commit_fsyncs={fsyncs} group_commit_commits={commits}")
                }
                None => String::new(),
            };
            let health = {
                let h = engine.health();
                if h.state_code() != 0 || h.degraded_entered.load(Ordering::Relaxed) > 0 {
                    // Appears only once the engine has ever degraded, so
                    // the healthy-path line stays byte-identical.
                    format!(
                        " health={} degraded_entered={} degraded_healed={} probe_failures={} writes_refused={}",
                        h.snapshot().label(),
                        h.degraded_entered.load(Ordering::Relaxed),
                        h.degraded_healed.load(Ordering::Relaxed),
                        h.probe_failures.load(Ordering::Relaxed),
                        h.writes_refused.load(Ordering::Relaxed),
                    )
                } else {
                    String::new()
                }
            };
            writeln!(
                out,
                "requests={} update_tuples={} query_rows={} strata_rerun={} full_fallbacks={}{retract}{explain}{durable}{group}{health}",
                s.requests, s.update_tuples, s.query_rows, s.strata_rerun, s.full_fallbacks
            )?;
            return Ok((Control::Continue, ReqInfo::none()));
        }
        ".stats json" => {
            let engine = rd(engine);
            writeln!(out, "{}", crate::admin::registry_json(&engine).render())?;
            return Ok((Control::Continue, ReqInfo::none()));
        }
        ".snapshot" => {
            let result = {
                let mut engine = engine.write().unwrap_or_else(PoisonError::into_inner);
                engine.snapshot(tel)
            };
            match result {
                Ok(stats) => writeln!(
                    out,
                    "ok snapshot {} tuples {} bytes",
                    stats.tuples, stats.bytes
                )?,
                Err(e) => {
                    {
                        // A failed snapshot write is a storage failure:
                        // probe immediately, degrade if persistent.
                        let mut eng = engine.write().unwrap_or_else(PoisonError::into_inner);
                        eng.note_storage_failure(&e.to_string());
                    }
                    writeln!(out, "err {e}")?;
                }
            }
            return Ok((Control::Continue, ReqInfo::none()));
        }
        ".compact" => {
            let result = {
                let mut engine = engine.write().unwrap_or_else(PoisonError::into_inner);
                engine.compact(tel)
            };
            match result {
                Ok(stats) => writeln!(
                    out,
                    "ok compact {} tuples {} bytes",
                    stats.tuples, stats.bytes
                )?,
                Err(e) => {
                    {
                        // Same failure policy as `.snapshot`: probe
                        // immediately, degrade if persistent.
                        let mut eng = engine.write().unwrap_or_else(PoisonError::into_inner);
                        eng.note_storage_failure(&e.to_string());
                    }
                    writeln!(out, "err {e}")?;
                }
            }
            return Ok((Control::Continue, ReqInfo::none()));
        }
        _ => {}
    }
    if let Some(atom) = line.strip_prefix(".explain") {
        let info = match explain(engine, atom.trim(), tel) {
            Ok((tree, nodes)) => {
                write!(out, "{tree}")?;
                writeln!(out, "ok {nodes} nodes")?;
                ReqInfo::new(ReqKind::Explain, nodes as u64)
            }
            Err(e) => {
                writeln!(out, "err {e}")?;
                ReqInfo::new(ReqKind::Explain, 0)
            }
        };
        return Ok((Control::Continue, info));
    }
    let deadline = cfg.request_timeout.map(|t| Instant::now() + t);
    let info = match line.as_bytes()[0] {
        b'+' => match insert(engine, &line[1..], deadline, ctx, tel) {
            Ok(report) if report.deadline_exceeded => {
                // The WAL-then-evaluate ordering means the data is
                // already durable and applied; only the reply is late.
                writeln!(out, "err deadline exceeded (update committed)")?;
                ReqInfo::new(ReqKind::Update, report.inserted)
            }
            Ok(report) => {
                writeln!(out, "ok {} inserted", report.inserted)?;
                ReqInfo::new(ReqKind::Update, report.inserted)
            }
            Err(e) => {
                writeln!(out, "err {e}")?;
                ReqInfo::new(ReqKind::Update, 0)
            }
        },
        b'-' => match retract(engine, &line[1..], deadline, ctx, tel) {
            Ok(report) if report.deadline_exceeded => {
                // As with inserts, WAL-then-evaluate means the delete
                // record is durable and applied; only the reply is late.
                writeln!(out, "err deadline exceeded (retraction committed)")?;
                ReqInfo::new(ReqKind::Retract, report.retracted)
            }
            Ok(report) => {
                writeln!(out, "ok {} retracted", report.retracted)?;
                ReqInfo::new(ReqKind::Retract, report.retracted)
            }
            Err(e) => {
                writeln!(out, "err {e}")?;
                ReqInfo::new(ReqKind::Retract, 0)
            }
        },
        b'?' => match query(engine, &line[1..], deadline, tel) {
            Ok(rows) => {
                for row in &rows {
                    let rendered: Vec<String> = row.iter().map(ToString::to_string).collect();
                    writeln!(out, "{}", rendered.join("\t"))?;
                }
                writeln!(out, "ok {} rows", rows.len())?;
                ReqInfo::new(ReqKind::Query, rows.len() as u64)
            }
            Err(e) => {
                writeln!(out, "err {e}")?;
                ReqInfo::new(ReqKind::Query, 0)
            }
        },
        _ => {
            writeln!(out, "err unrecognized request (try .help)")?;
            ReqInfo::none()
        }
    };
    Ok((Control::Continue, info))
}

fn rd(engine: &RwLock<ResidentEngine>) -> std::sync::RwLockReadGuard<'_, ResidentEngine> {
    engine.read().unwrap_or_else(PoisonError::into_inner)
}

/// Refuses a write while the storage layer is Degraded or Failed.
///
/// # Errors
///
/// The protocol error reply (without the `err ` prefix), carrying the
/// suggested client backoff in milliseconds.
fn gate_write(engine: &ResidentEngine) -> Result<(), String> {
    match engine.health().gate_write() {
        Ok(()) => Ok(()),
        Err(ms) => Err(format!("degraded retry-after {ms}")),
    }
}

fn insert(
    engine: &RwLock<ResidentEngine>,
    atom: &str,
    deadline: Option<Instant>,
    ctx: &RequestCtx,
    tel: Option<&Telemetry>,
) -> Result<stir_core::UpdateReport, String> {
    let atom = atom.strip_suffix('.').unwrap_or(atom);
    let (rel, terms) = parse_atom(atom)?;
    // Shed before blocking on the write lock: bounding the queue is the
    // point, and reads never pass through here.
    let _permit = admit_write(ctx)?;
    let (report, ticket) = {
        let mut engine = engine.write().unwrap_or_else(PoisonError::into_inner);
        gate_write(&engine)?;
        let types = attr_types(&engine, &rel, terms.len())?;
        let mut row = Vec::with_capacity(terms.len());
        for (i, (term, ty)) in terms.iter().zip(&types).enumerate() {
            row.push(constant(term, *ty).map_err(|e| format!("term {}: {e}", i + 1))?);
        }
        let report = engine
            .insert_facts_deadline(&rel, &[row], deadline, tel)
            .map_err(|e| e.to_string())?;
        (report, engine.take_commit_ticket())
    };
    // Group commit: the engine write lock is released before waiting on
    // the fsync barrier, so concurrent writers coalesce their fsyncs
    // instead of serializing them under the lock.
    if let Some(ticket) = ticket {
        if let Err(e) = ticket.wait() {
            let mut eng = engine.write().unwrap_or_else(PoisonError::into_inner);
            eng.note_storage_failure(&e.to_string());
            return Err(format!("{e} (update committed)"));
        }
    }
    Ok(report)
}

fn retract(
    engine: &RwLock<ResidentEngine>,
    atom: &str,
    deadline: Option<Instant>,
    ctx: &RequestCtx,
    tel: Option<&Telemetry>,
) -> Result<stir_core::RetractReport, String> {
    let atom = atom.strip_suffix('.').unwrap_or(atom);
    let (rel, terms) = parse_atom(atom)?;
    let _permit = admit_write(ctx)?;
    let (report, ticket) = {
        let mut engine = engine.write().unwrap_or_else(PoisonError::into_inner);
        gate_write(&engine)?;
        let types = attr_types(&engine, &rel, terms.len())?;
        let mut row = Vec::with_capacity(terms.len());
        for (i, (term, ty)) in terms.iter().zip(&types).enumerate() {
            row.push(constant(term, *ty).map_err(|e| format!("term {}: {e}", i + 1))?);
        }
        let report = engine
            .retract_facts_deadline(&rel, &[row], deadline, tel)
            .map_err(|e| e.to_string())?;
        (report, engine.take_commit_ticket())
    };
    if let Some(ticket) = ticket {
        if let Err(e) = ticket.wait() {
            let mut eng = engine.write().unwrap_or_else(PoisonError::into_inner);
            eng.note_storage_failure(&e.to_string());
            return Err(format!("{e} (retraction committed)"));
        }
    }
    Ok(report)
}

fn query(
    engine: &RwLock<ResidentEngine>,
    atom: &str,
    deadline: Option<Instant>,
    tel: Option<&Telemetry>,
) -> Result<Vec<Vec<Value>>, String> {
    let atom = atom.strip_suffix('.').unwrap_or(atom);
    let (rel, terms) = parse_atom(atom)?;
    let engine = rd(engine);
    let types = attr_types(&engine, &rel, terms.len())?;
    let mut pattern = Vec::with_capacity(terms.len());
    for (i, (term, ty)) in terms.iter().zip(&types).enumerate() {
        pattern.push(match term {
            Term::Free => None,
            // An unquoted identifier is a (named) free variable; only
            // quoted strings and literals bind.
            Term::Word(w) if w.starts_with(|c: char| c.is_ascii_alphabetic()) && is_ident(w) => {
                None
            }
            _ => Some(constant(term, *ty).map_err(|e| format!("term {}: {e}", i + 1))?),
        });
    }
    engine
        .query_deadline(&rel, &pattern, deadline, tel)
        .map_err(|e| e.to_string())
}

/// Answers `.explain rel(c1, ...)`: all terms must be constants (a proof
/// is of one concrete fact), and the engine must run with provenance on.
/// Returns the rendered tree plus its node count for the `ok` trailer.
fn explain(
    engine: &RwLock<ResidentEngine>,
    atom: &str,
    tel: Option<&Telemetry>,
) -> Result<(String, usize), String> {
    let atom = atom.strip_suffix('.').unwrap_or(atom);
    if atom.is_empty() {
        return Err("usage: .explain rel(c1, c2, ...)".into());
    }
    let (rel, terms) = parse_atom(atom)?;
    let engine = rd(engine);
    let types = attr_types(&engine, &rel, terms.len())?;
    let mut row = Vec::with_capacity(terms.len());
    for (i, (term, ty)) in terms.iter().zip(&types).enumerate() {
        row.push(constant(term, *ty).map_err(|e| format!("term {}: {e}", i + 1))?);
    }
    let node = engine
        .explain(&rel, &row, stir_core::ExplainLimits::default(), tel)
        .map_err(|e| e.to_string())?;
    Ok((engine.render_proof(&node), node.size()))
}

/// Looks the relation up and checks the term count, returning the
/// declared column types (cloned so the engine lock can be reused).
fn attr_types(engine: &ResidentEngine, rel: &str, n: usize) -> Result<Vec<AttrType>, String> {
    let meta = engine
        .ram()
        .relation_by_name(rel)
        .ok_or_else(|| format!("unknown relation `{rel}`"))?;
    if meta.arity != n {
        return Err(format!("`{rel}` has {} columns, got {n} terms", meta.arity));
    }
    Ok(meta.attr_types.clone())
}

/// One parsed protocol term.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Term {
    /// A quoted string: always a symbol constant.
    Quoted(String),
    /// An unquoted token: constant or (in queries) a free variable.
    Word(String),
    /// `_`.
    Free,
}

fn constant(term: &Term, ty: AttrType) -> Result<Value, String> {
    match term {
        Term::Free => Err("`_` is not a constant".into()),
        Term::Quoted(s) => {
            if ty == AttrType::Symbol {
                Ok(Value::Symbol(s.clone()))
            } else {
                Err(format!("quoted string on a {ty:?} column"))
            }
        }
        Term::Word(w) => parse_field(w, ty),
    }
}

/// Splits `rel(t1, t2, ...)` into the relation name and raw terms.
/// `rel` and `rel()` both mean a nullary atom. In queries, an unquoted
/// identifier term is a free variable.
fn parse_atom(atom: &str) -> Result<(String, Vec<Term>), String> {
    let atom = atom.trim();
    let Some(open) = atom.find('(') else {
        if atom.is_empty() || !is_ident(atom) {
            return Err(format!("malformed atom `{atom}`"));
        }
        return Ok((atom.to_string(), Vec::new()));
    };
    let name = atom[..open].trim();
    if name.is_empty() || !is_ident(name) {
        return Err(format!("malformed relation name `{name}`"));
    }
    let Some(rest) = atom[open + 1..].trim_end().strip_suffix(')') else {
        return Err("missing closing `)`".into());
    };
    let mut terms = Vec::new();
    let mut chars = rest.chars();
    let mut current = String::new();
    let mut saw_quote = false;
    let mut flush = |current: &mut String, saw_quote: &mut bool| -> Result<(), String> {
        let tok = current.trim().to_string();
        current.clear();
        if std::mem::take(saw_quote) {
            terms.push(Term::Quoted(tok));
        } else if tok == "_" {
            terms.push(Term::Free);
        } else if tok.is_empty() {
            return Err("empty term".into());
        } else {
            terms.push(Term::Word(tok));
        }
        Ok(())
    };
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if saw_quote || !current.trim().is_empty() {
                    return Err("stray `\"`".into());
                }
                saw_quote = true;
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(q) => current.push(q),
                        None => return Err("unterminated string".into()),
                    }
                }
            }
            ',' => flush(&mut current, &mut saw_quote)?,
            _ => {
                if saw_quote && !c.is_whitespace() {
                    return Err("text after closing `\"`".into());
                }
                current.push(c);
            }
        }
    }
    if !current.trim().is_empty() || saw_quote {
        flush(&mut current, &mut saw_quote)?;
    } else if !terms.is_empty() {
        return Err("trailing `,`".into());
    }
    Ok((name.to_string(), terms))
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One request-framing outcome from [`read_request`].
#[derive(Debug, PartialEq, Eq)]
pub enum Request {
    /// A complete line (without the trailing newline).
    Line(String),
    /// The line exceeded the session's byte limit; the excess up to the
    /// next newline was discarded, so the session can continue.
    TooLong,
    /// The line was not valid UTF-8; it was consumed in full.
    BadUtf8,
    /// The peer closed the stream.
    Eof,
    /// The server's stop flag was raised while waiting between requests.
    Shutdown,
}

/// Reads one request line with a hard byte bound, without ever buffering
/// more than [`SessionConfig::max_line_bytes`] of a single line.
///
/// When `stop` is given, the input is expected to yield
/// `WouldBlock`/`TimedOut` periodically (a socket with a read timeout);
/// each such wakeup polls the flag so an idle connection notices a
/// server shutdown. Partial lines already read are preserved across
/// wakeups.
///
/// # Errors
///
/// Propagates I/O errors other than the polling timeouts.
pub fn read_request(
    input: &mut dyn BufRead,
    max_line_bytes: usize,
    stop: Option<&AtomicBool>,
) -> std::io::Result<Request> {
    let mut buf: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        if stop.is_some_and(|s| s.load(Ordering::SeqCst)) {
            return Ok(Request::Shutdown);
        }
        let (consumed, done) = match input.fill_buf() {
            Ok([]) => {
                // EOF. A buffered partial line is still a request (a
                // final line without a newline).
                if discarding {
                    return Ok(Request::TooLong);
                }
                if buf.is_empty() {
                    return Ok(Request::Eof);
                }
                (0, true)
            }
            Ok(chunk) => match chunk.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if !discarding {
                        buf.extend_from_slice(&chunk[..i]);
                    }
                    (i + 1, true)
                }
                None => {
                    if !discarding {
                        buf.extend_from_slice(chunk);
                    }
                    (chunk.len(), false)
                }
            },
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        input.consume(consumed);
        if buf.len() > max_line_bytes {
            // Switch to discard mode: drop what we buffered and skip
            // ahead to the newline so the *next* request parses cleanly.
            discarding = true;
            buf.clear();
        }
        if done {
            break;
        }
    }
    if discarding {
        return Ok(Request::TooLong);
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Request::Line(s)),
        Err(_) => Ok(Request::BadUtf8),
    }
}

/// Runs a full REPL-style session: reads protocol lines from `input`,
/// writes responses to `output`, and returns how the session ended
/// ([`Control::Quit`] at EOF).
///
/// # Errors
///
/// Propagates I/O errors on either stream.
pub fn run_session(
    engine: &RwLock<ResidentEngine>,
    input: &mut dyn std::io::BufRead,
    output: &mut dyn Write,
    tel: Option<&Telemetry>,
) -> std::io::Result<Control> {
    run_session_with(engine, input, output, &SessionConfig::default(), None, tel)
}

/// [`run_session`] with explicit limits and an optional server stop
/// flag. Oversized and non-UTF-8 request lines are answered with `err`
/// protocol errors — the session (and the engine behind it) survives
/// arbitrary garbage on the wire.
///
/// # Errors
///
/// Propagates I/O errors on either stream.
pub fn run_session_with(
    engine: &RwLock<ResidentEngine>,
    input: &mut dyn std::io::BufRead,
    output: &mut dyn Write,
    cfg: &SessionConfig,
    stop: Option<&AtomicBool>,
    tel: Option<&Telemetry>,
) -> std::io::Result<Control> {
    run_session_ctx(
        engine,
        input,
        output,
        cfg,
        stop,
        &RequestCtx::default(),
        tel,
    )
}

/// [`run_session_with`] plus a serving context: every request gets an id
/// and its latency recorded (see [`handle_request`]).
///
/// # Errors
///
/// Propagates I/O errors on either stream.
pub fn run_session_ctx(
    engine: &RwLock<ResidentEngine>,
    input: &mut dyn std::io::BufRead,
    output: &mut dyn Write,
    cfg: &SessionConfig,
    stop: Option<&AtomicBool>,
    ctx: &RequestCtx,
    tel: Option<&Telemetry>,
) -> std::io::Result<Control> {
    loop {
        let control = match read_request(input, cfg.max_line_bytes, stop)? {
            Request::Eof => return Ok(Control::Quit),
            Request::Shutdown => return Ok(Control::Quit),
            Request::TooLong => {
                writeln!(
                    output,
                    "err request line exceeds {} bytes",
                    cfg.max_line_bytes
                )?;
                Control::Continue
            }
            Request::BadUtf8 => {
                writeln!(output, "err request is not valid UTF-8")?;
                Control::Continue
            }
            Request::Line(line) => handle_request(engine, &line, cfg, ctx, tel, output)?,
        };
        output.flush()?;
        if control != Control::Continue {
            return Ok(control);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_core::{Engine, InputData, InterpreterConfig};

    const TC: &str = "\
        .decl e(x: number, y: number)\n.input e\n\
        .decl p(x: number, y: number)\n.output p\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";

    fn session(src: &str, script: &str) -> String {
        session_cfg(src, script.as_bytes(), &SessionConfig::default()).expect("session")
    }

    fn session_prov(src: &str, script: &str) -> String {
        session_with(
            src,
            script.as_bytes(),
            &SessionConfig::default(),
            InterpreterConfig::optimized().with_provenance(),
        )
        .expect("session")
    }

    fn session_cfg(
        src: &str,
        script: &[u8],
        cfg: &SessionConfig,
    ) -> Result<String, stir_core::EngineError> {
        session_with(src, script, cfg, InterpreterConfig::optimized())
    }

    fn session_with(
        src: &str,
        script: &[u8],
        cfg: &SessionConfig,
        config: InterpreterConfig,
    ) -> Result<String, stir_core::EngineError> {
        let engine = RwLock::new(ResidentEngine::from_source(
            src,
            config,
            &InputData::new(),
            None,
        )?);
        let mut out = Vec::new();
        let mut input = script;
        run_session_with(&engine, &mut input, &mut out, cfg, None, None)
            .map_err(|e| stir_core::StorageError::io("session io", &e))
            .map_err(stir_core::EngineError::from)?;
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    #[test]
    fn insert_then_query_round_trips() {
        let out = session(
            TC,
            "+e(1, 2).\n+e(2, 3).\n?p(1, _)\n?p(_, _)\n+e(1, 2).\n.quit\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "ok 1 inserted");
        assert_eq!(lines[1], "ok 1 inserted");
        assert_eq!(lines[2], "1\t2");
        assert_eq!(lines[3], "1\t3");
        assert_eq!(lines[4], "ok 2 rows");
        assert!(lines.contains(&"ok 3 rows"));
        assert_eq!(lines[lines.len() - 2], "ok 0 inserted"); // duplicate
        assert_eq!(lines[lines.len() - 1], "bye");
    }

    #[test]
    fn retract_then_query_round_trips() {
        let out = session(
            TC,
            "+e(1, 2).\n+e(2, 3).\n?p(_, _)\n-e(2, 3).\n?p(_, _)\n-e(2, 3).\n.stats\n.quit\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.contains(&"ok 3 rows"), "{out}");
        assert!(lines.contains(&"ok 1 retracted"), "{out}");
        assert!(lines.contains(&"ok 1 rows"), "cone removed: {out}");
        assert!(
            lines.contains(&"ok 0 retracted"),
            "retracting an absent fact is a no-op: {out}"
        );
        let stats = out
            .lines()
            .find(|l| l.starts_with("requests="))
            .expect("stats line");
        assert!(
            stats.contains("retracts=2 retract_tuples=1 rederived=0"),
            "retract counters appear once a retraction was served: {stats}"
        );
    }

    #[test]
    fn retract_restores_alternative_derivations() {
        // Diamond: p(1, 4) via 2 and via 3; retracting e(2, 4) must keep
        // p(1, 4) alive through the surviving path.
        let out = session(
            TC,
            "+e(1, 2).\n+e(2, 4).\n+e(1, 3).\n+e(3, 4).\n-e(2, 4).\n?p(1, 4)\n.quit\n",
        );
        assert!(out.contains("ok 1 retracted"), "{out}");
        assert!(out.contains("1\t4"), "{out}");
        assert!(out.contains("ok 1 rows"), "{out}");
    }

    #[test]
    fn retract_errors_are_reported_inline() {
        let out = session(
            TC,
            "-ghost(1, 2).\n-p(1, 2).\n-e(1).\n-e(\n-e(1, x).\n+e(7, 8).\n?p(7, _)\n.quit\n",
        );
        let errs = out.lines().filter(|l| l.starts_with("err ")).count();
        assert_eq!(errs, 5, "{out}");
        assert!(out.contains("err unknown relation `ghost`"), "{out}");
        assert!(out.contains("not declared `.input`"), "{out}");
        assert!(
            out.contains("ok 1 inserted") && out.contains("7\t8"),
            "session survives retract errors: {out}"
        );
    }

    #[test]
    fn explain_tracks_retractions() {
        // After retracting e(2, 3), p(1, 3) must stop explaining and the
        // still-derivable p(1, 2) must keep its proof.
        let out = session_prov(
            TC,
            "+e(1, 2).\n+e(2, 3).\n-e(2, 3).\n.explain p(1, 3)\n.explain p(1, 2)\n.quit\n",
        );
        assert!(out.contains("`p(1, 3)` is not derivable"), "{out}");
        assert!(out.contains("p(1, 2)"), "{out}");
        assert!(out.contains("[input]"), "{out}");
    }

    #[test]
    fn named_variables_are_free() {
        let out = session(TC, "+e(5, 6).\n?p(x, y)\n.quit\n");
        assert!(out.contains("5\t6"));
        assert!(out.contains("ok 1 rows"));
    }

    #[test]
    fn errors_are_reported_inline_and_do_not_kill_the_session() {
        let out = session(
            TC,
            "+ghost(1).\n+p(1, 2).\n+e(1).\n?e(\n nonsense\n?p(1, 2, 3)\n+e(1, 2).\n.quit\n",
        );
        let errs = out.lines().filter(|l| l.starts_with("err ")).count();
        assert_eq!(errs, 6);
        assert!(out.contains("err unknown relation `ghost`"));
        assert!(out.contains("not declared `.input`"));
        assert!(
            out.contains("ok 1 inserted"),
            "session continues after errors"
        );
    }

    #[test]
    fn symbols_need_quotes_in_queries() {
        let src = "\
            .decl n(s: symbol, k: number)\n.input n\n\
            .decl out(s: symbol, k: number)\n.output out\n\
            out(s, k) :- n(s, k).\n";
        let out = session(
            src,
            "+n(\"ada\", 1).\n+n(\"grace\", 2).\n?out(\"ada\", _)\n?out(who, _)\n.quit\n",
        );
        assert!(out.contains("ada\t1"));
        assert!(out.contains("ok 1 rows"));
        assert!(out.contains("ok 2 rows"), "bare identifier means free");
    }

    #[test]
    fn stats_help_and_stop() {
        let out = session(TC, "+e(1, 2).\n.stats\n.help\n.stop\n");
        assert!(out.contains("update_tuples=1"));
        assert!(out.contains("commands:"));
        assert!(out.trim_end().ends_with("bye"));
    }

    #[test]
    fn nullary_atoms_parse_without_parens() {
        let src = "\
            .decl flag()\n.input flag\n\
            .decl go()\n.output go\n\
            go() :- flag().\n";
        let out = session(src, "?go()\n+flag().\n?go\n.quit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "ok 0 rows");
        assert_eq!(lines[1], "ok 1 inserted");
        assert_eq!(lines[2], "");
        assert_eq!(lines[3], "ok 1 rows");
    }

    /// Satellite (c): hostile input never kills the session or wedges
    /// the engine. Each case feeds garbage followed by a known-good
    /// insert + query and asserts the tail still works.
    #[test]
    fn malformed_input_keeps_engine_queryable() -> Result<(), stir_core::EngineError> {
        let cases: &[(&str, &[u8])] = &[
            ("truncated fact", b"+e(1,\n"),
            ("truncated atom", b"?e(\n"),
            ("wrong arity insert", b"+e(1).\n"),
            ("wrong arity query", b"?p(1, 2, 3)\n"),
            ("unknown relation", b"+ghost(1, 2).\n"),
            ("query of idb insert", b"+p(1, 2).\n"),
            ("embedded nul", b"+e(\x001, 2).\n"),
            ("nul in command", b".st\x00ats\n"),
            ("bare garbage", b"lorem ipsum dolor\n"),
            ("non-utf8 line", b"+e(\xff\xfe1, 2).\n"),
            ("empty insert", b"+\n"),
        ];
        for (name, garbage) in cases {
            let mut script = garbage.to_vec();
            script.extend_from_slice(b"+e(7, 8).\n?p(7, _)\n.quit\n");
            let out = session_cfg(TC, &script, &SessionConfig::default())?;
            assert!(
                out.lines().any(|l| l.starts_with("err ")),
                "{name}: garbage should produce an err reply, got:\n{out}"
            );
            assert!(
                out.contains("ok 1 inserted") && out.contains("7\t8"),
                "{name}: engine no longer queryable, got:\n{out}"
            );
        }
        Ok(())
    }

    /// Satellite (b): request lines over the limit get a protocol error
    /// and the excess is discarded, so the next request parses cleanly.
    #[test]
    fn oversized_lines_are_rejected_not_buffered() -> Result<(), stir_core::EngineError> {
        let cfg = SessionConfig {
            max_line_bytes: 64,
            request_timeout: None,
        };
        let mut script = Vec::new();
        script.extend_from_slice(&vec![b'x'; 1000]);
        script.extend_from_slice(b"\n+e(1, 2).\n?p(1, _)\n.quit\n");
        let out = session_cfg(TC, &script, &cfg)?;
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "err request line exceeds 64 bytes");
        assert_eq!(lines[1], "ok 1 inserted");
        assert!(out.contains("1\t2"));
        Ok(())
    }

    /// A final unterminated oversized line (no trailing newline before
    /// EOF) is still reported, not silently dropped.
    #[test]
    fn oversized_final_line_without_newline() -> Result<(), stir_core::EngineError> {
        let cfg = SessionConfig {
            max_line_bytes: 16,
            request_timeout: None,
        };
        let out = session_cfg(TC, &vec![b'y'; 500], &cfg)?;
        assert!(out.contains("err request line exceeds 16 bytes"));
        Ok(())
    }

    #[test]
    fn non_utf8_gets_a_parse_error_not_a_disconnect() -> Result<(), stir_core::EngineError> {
        let out = session_cfg(
            TC,
            b"\xc3\x28\n+e(3, 4).\n.quit\n",
            &SessionConfig::default(),
        )?;
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "err request is not valid UTF-8");
        assert_eq!(lines[1], "ok 1 inserted");
        Ok(())
    }

    #[test]
    fn read_request_frames_lines_and_eof() {
        let mut input: &[u8] = b"alpha\nbeta";
        assert_eq!(
            read_request(&mut input, 1024, None).expect("io"),
            Request::Line("alpha".into())
        );
        assert_eq!(
            read_request(&mut input, 1024, None).expect("io"),
            Request::Line("beta".into())
        );
        assert_eq!(
            read_request(&mut input, 1024, None).expect("io"),
            Request::Eof
        );
    }

    #[test]
    fn read_request_honors_stop_flag() {
        let stop = AtomicBool::new(true);
        let mut input: &[u8] = b"+e(1, 2).\n";
        assert_eq!(
            read_request(&mut input, 1024, Some(&stop)).expect("io"),
            Request::Shutdown
        );
    }

    #[test]
    fn explain_renders_a_proof_tree() {
        let out = session_prov(
            TC,
            "+e(1, 2).\n+e(2, 3).\n.explain p(1, 3)\n.stats\n.quit\n",
        );
        assert!(out.contains("p(1, 3)"), "{out}");
        assert!(out.contains("[input]"), "{out}");
        assert!(out.contains("[height"), "{out}");
        assert!(
            out.lines()
                .any(|l| l.starts_with("ok ") && l.ends_with(" nodes")),
            "{out}"
        );
        assert!(out.contains("explain_requests=1"), "{out}");
    }

    #[test]
    fn explain_reports_errors_inline() {
        // Non-derivable fact on a provenance engine; any fact on a
        // provenance-off engine; malformed and free-variable atoms.
        let out = session_prov(
            TC,
            "+e(1, 2).\n.explain p(5, 5)\n.explain\n.explain p(_, 2)\n.quit\n",
        );
        assert!(out.contains("`p(5, 5)` is not derivable"), "{out}");
        assert!(out.contains("err usage: .explain"), "{out}");
        assert!(out.contains("err term 1"), "{out}");

        let out = session(TC, "+e(1, 2).\n.explain p(1, 2)\n.quit\n");
        assert!(out.contains("provenance is off"), "{out}");
        assert!(
            !out.contains("explain_requests"),
            "provenance-off stats keep the historical shape: {out}"
        );
    }

    /// Satellite (a): a plain in-memory, provenance-off session keeps
    /// the exact historical `.stats` line — no explain fields, no
    /// WAL/snapshot/recovery fields — byte for byte.
    #[test]
    fn stats_plain_shape_is_pinned_without_durability() {
        let out = session(TC, "+e(1, 2).\n?p(1, _)\n.stats\n.quit\n");
        let stats = out
            .lines()
            .find(|l| l.starts_with("requests="))
            .expect("stats line");
        assert_eq!(
            stats, "requests=2 update_tuples=1 query_rows=1 strata_rerun=1 full_fallbacks=0",
            "historical shape changed: {out}"
        );
    }

    #[test]
    fn stats_plain_gains_durability_fields_on_a_durable_engine() {
        let dir = std::env::temp_dir().join("stir-serve-stats-durable");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Engine::from_source(TC).expect("compiles");
        let (resident, _recovery) = ResidentEngine::open(
            engine,
            InterpreterConfig::optimized(),
            &InputData::new(),
            &dir,
            stir_core::PersistOptions::default(),
            None,
        )
        .expect("durable engine");
        let engine = RwLock::new(resident);
        let mut out = Vec::new();
        let mut input: &[u8] = b"+e(1, 2).\n.stats\n.quit\n";
        run_session_with(
            &engine,
            &mut input,
            &mut out,
            &SessionConfig::default(),
            None,
            None,
        )
        .expect("session io");
        let out = String::from_utf8_lossy(&out);
        let stats = out
            .lines()
            .find(|l| l.starts_with("requests="))
            .expect("stats line");
        for field in [
            "wal_appends=1",
            "wal_bytes=",
            "wal_fsyncs=",
            "wal_append_errors=0",
            "snapshot_writes=0",
            "snapshot_tuples=0",
            "recovery_snapshot_loaded=0",
            "recovery_replayed_batches=0",
            "recovery_replay_ms=",
        ] {
            assert!(stats.contains(field), "missing {field}: {stats}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_json_is_one_parsable_registry_object() {
        let out = session(TC, "+e(1, 2).\n?p(1, _)\n.stats json\n.quit\n");
        let line = out
            .lines()
            .find(|l| l.starts_with('{'))
            .expect("json stats line");
        let json = stir_core::Json::parse(line).expect("valid JSON");
        assert_eq!(
            json.get("server")
                .and_then(|s| s.get("requests"))
                .and_then(stir_core::Json::as_u64),
            Some(2)
        );
        // In-process sessions run with the inert default context, so the
        // histograms are present but empty.
        assert_eq!(
            json.get("histograms")
                .and_then(|h| h.get("serve_query"))
                .and_then(|q| q.get("count"))
                .and_then(stir_core::Json::as_u64),
            Some(0)
        );
        assert!(json.get("wal").is_none(), "non-durable has no wal section");
    }

    #[test]
    fn query_rows_are_sorted() {
        let out = session(TC, "+e(2, 9).\n+e(2, 3).\n+e(1, 7).\n?e(_, _)\n.quit\n");
        let rows: Vec<&str> = out.lines().filter(|l| l.contains('\t')).collect();
        assert_eq!(rows, vec!["1\t7", "2\t3", "2\t9"], "{out}");
    }

    #[test]
    fn snapshot_without_data_dir_reports_err() {
        let out = session(TC, ".snapshot\n.quit\n");
        assert!(out.lines().next().is_some_and(|l| l.starts_with("err ")));
    }
}
