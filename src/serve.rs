//! The serving line protocol shared by `stir repl` and `stird`.
//!
//! One request per line, one response per request:
//!
//! ```text
//! +rel(t1, t2, ...).     insert a fact        → `ok N inserted`
//! ?rel(p1, p2, ...)      query a pattern      → TSV rows, then `ok N rows`
//! .stats                 serving counters     → one `key=value` line
//! .help                  command summary
//! .quit                  close this session   → `bye`
//! .stop                  shut the server down → `bye` (REPL: same as .quit)
//! ```
//!
//! Insert terms are constants: numbers parse per the column's declared
//! type and quoted strings are symbols (an unquoted word is also accepted
//! as a symbol on a symbol-typed column, matching the `.facts` format).
//! Query terms may additionally be `_` or a bare identifier, both meaning
//! "free"; symbol constants in queries must be quoted so they cannot be
//! mistaken for variables. Errors never kill the session — they come back
//! as a single `err <reason>` line.
//!
//! The engine sits behind a [`std::sync::RwLock`]: inserts take the write
//! lock, queries the read lock, so a TCP server gets serialized writes
//! and concurrent reads for free and the REPL pays nothing (uncontended
//! locks). The paper-adjacent crates vendor no dependencies, so this is
//! the std stand-in for the `parking_lot` lock a production server would
//! use.

use std::io::Write;
use std::sync::{PoisonError, RwLock};
use stir_core::io::parse_field;
use stir_core::{ResidentEngine, Telemetry, Value};
use stir_frontend::ast::AttrType;

/// What the session should do after a handled line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep reading requests.
    Continue,
    /// Close this session.
    Quit,
    /// Close this session and shut the whole server down.
    Stop,
}

const HELP: &str = "\
commands:
  +rel(1, \"a\", ...).    insert a fact into an .input relation
  ?rel(1, _, x)          query: constants bind, `_`/identifiers are free
  .stats                 show serving counters
  .help                  this summary
  .quit                  close this session
  .stop                  shut the server down";

/// Handles one protocol line against a shared engine, writing the
/// response to `out`.
///
/// # Errors
///
/// Only I/O errors writing the response propagate; protocol and
/// evaluation errors are reported to the peer as `err` lines.
pub fn handle_line(
    engine: &RwLock<ResidentEngine>,
    line: &str,
    tel: Option<&Telemetry>,
    out: &mut dyn Write,
) -> std::io::Result<Control> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Control::Continue);
    }
    match line {
        ".quit" | ".exit" => {
            writeln!(out, "bye")?;
            return Ok(Control::Quit);
        }
        ".stop" => {
            writeln!(out, "bye")?;
            return Ok(Control::Stop);
        }
        ".help" => {
            writeln!(out, "{HELP}")?;
            return Ok(Control::Continue);
        }
        ".stats" => {
            let s = rd(engine).stats();
            writeln!(
                out,
                "requests={} update_tuples={} query_rows={} strata_rerun={} full_fallbacks={}",
                s.requests, s.update_tuples, s.query_rows, s.strata_rerun, s.full_fallbacks
            )?;
            return Ok(Control::Continue);
        }
        _ => {}
    }
    match line.as_bytes()[0] {
        b'+' => match insert(engine, &line[1..], tel) {
            Ok(n) => writeln!(out, "ok {n} inserted")?,
            Err(e) => writeln!(out, "err {e}")?,
        },
        b'?' => match query(engine, &line[1..], tel) {
            Ok(rows) => {
                for row in &rows {
                    let rendered: Vec<String> = row.iter().map(ToString::to_string).collect();
                    writeln!(out, "{}", rendered.join("\t"))?;
                }
                writeln!(out, "ok {} rows", rows.len())?;
            }
            Err(e) => writeln!(out, "err {e}")?,
        },
        _ => writeln!(out, "err unrecognized request (try .help)")?,
    }
    Ok(Control::Continue)
}

fn rd(engine: &RwLock<ResidentEngine>) -> std::sync::RwLockReadGuard<'_, ResidentEngine> {
    engine.read().unwrap_or_else(PoisonError::into_inner)
}

fn insert(
    engine: &RwLock<ResidentEngine>,
    atom: &str,
    tel: Option<&Telemetry>,
) -> Result<u64, String> {
    let atom = atom.strip_suffix('.').unwrap_or(atom);
    let (rel, terms) = parse_atom(atom)?;
    let mut engine = engine.write().unwrap_or_else(PoisonError::into_inner);
    let types = attr_types(&engine, &rel, terms.len())?;
    let mut row = Vec::with_capacity(terms.len());
    for (i, (term, ty)) in terms.iter().zip(&types).enumerate() {
        row.push(constant(term, *ty).map_err(|e| format!("term {}: {e}", i + 1))?);
    }
    engine
        .insert_facts(&rel, &[row], tel)
        .map(|r| r.inserted)
        .map_err(|e| e.to_string())
}

fn query(
    engine: &RwLock<ResidentEngine>,
    atom: &str,
    tel: Option<&Telemetry>,
) -> Result<Vec<Vec<Value>>, String> {
    let atom = atom.strip_suffix('.').unwrap_or(atom);
    let (rel, terms) = parse_atom(atom)?;
    let engine = rd(engine);
    let types = attr_types(&engine, &rel, terms.len())?;
    let mut pattern = Vec::with_capacity(terms.len());
    for (i, (term, ty)) in terms.iter().zip(&types).enumerate() {
        pattern.push(match term {
            Term::Free => None,
            // An unquoted identifier is a (named) free variable; only
            // quoted strings and literals bind.
            Term::Word(w) if w.starts_with(|c: char| c.is_ascii_alphabetic()) && is_ident(w) => {
                None
            }
            _ => Some(constant(term, *ty).map_err(|e| format!("term {}: {e}", i + 1))?),
        });
    }
    engine.query(&rel, &pattern, tel).map_err(|e| e.to_string())
}

/// Looks the relation up and checks the term count, returning the
/// declared column types (cloned so the engine lock can be reused).
fn attr_types(engine: &ResidentEngine, rel: &str, n: usize) -> Result<Vec<AttrType>, String> {
    let meta = engine
        .ram()
        .relation_by_name(rel)
        .ok_or_else(|| format!("unknown relation `{rel}`"))?;
    if meta.arity != n {
        return Err(format!("`{rel}` has {} columns, got {n} terms", meta.arity));
    }
    Ok(meta.attr_types.clone())
}

/// One parsed protocol term.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Term {
    /// A quoted string: always a symbol constant.
    Quoted(String),
    /// An unquoted token: constant or (in queries) a free variable.
    Word(String),
    /// `_`.
    Free,
}

fn constant(term: &Term, ty: AttrType) -> Result<Value, String> {
    match term {
        Term::Free => Err("`_` is not a constant".into()),
        Term::Quoted(s) => {
            if ty == AttrType::Symbol {
                Ok(Value::Symbol(s.clone()))
            } else {
                Err(format!("quoted string on a {ty:?} column"))
            }
        }
        Term::Word(w) => parse_field(w, ty),
    }
}

/// Splits `rel(t1, t2, ...)` into the relation name and raw terms.
/// `rel` and `rel()` both mean a nullary atom. In queries, an unquoted
/// identifier term is a free variable.
fn parse_atom(atom: &str) -> Result<(String, Vec<Term>), String> {
    let atom = atom.trim();
    let Some(open) = atom.find('(') else {
        if atom.is_empty() || !is_ident(atom) {
            return Err(format!("malformed atom `{atom}`"));
        }
        return Ok((atom.to_string(), Vec::new()));
    };
    let name = atom[..open].trim();
    if name.is_empty() || !is_ident(name) {
        return Err(format!("malformed relation name `{name}`"));
    }
    let Some(rest) = atom[open + 1..].trim_end().strip_suffix(')') else {
        return Err("missing closing `)`".into());
    };
    let mut terms = Vec::new();
    let mut chars = rest.chars();
    let mut current = String::new();
    let mut saw_quote = false;
    let mut flush = |current: &mut String, saw_quote: &mut bool| -> Result<(), String> {
        let tok = current.trim().to_string();
        current.clear();
        if std::mem::take(saw_quote) {
            terms.push(Term::Quoted(tok));
        } else if tok == "_" {
            terms.push(Term::Free);
        } else if tok.is_empty() {
            return Err("empty term".into());
        } else {
            terms.push(Term::Word(tok));
        }
        Ok(())
    };
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if saw_quote || !current.trim().is_empty() {
                    return Err("stray `\"`".into());
                }
                saw_quote = true;
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(q) => current.push(q),
                        None => return Err("unterminated string".into()),
                    }
                }
            }
            ',' => flush(&mut current, &mut saw_quote)?,
            _ => {
                if saw_quote && !c.is_whitespace() {
                    return Err("text after closing `\"`".into());
                }
                current.push(c);
            }
        }
    }
    if !current.trim().is_empty() || saw_quote {
        flush(&mut current, &mut saw_quote)?;
    } else if !terms.is_empty() {
        return Err("trailing `,`".into());
    }
    Ok((name.to_string(), terms))
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Runs a full REPL-style session: reads protocol lines from `input`,
/// writes responses to `output`, and returns how the session ended
/// ([`Control::Quit`] at EOF).
///
/// # Errors
///
/// Propagates I/O errors on either stream.
pub fn run_session(
    engine: &RwLock<ResidentEngine>,
    input: &mut dyn std::io::BufRead,
    output: &mut dyn Write,
    tel: Option<&Telemetry>,
) -> std::io::Result<Control> {
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(Control::Quit);
        }
        let control = handle_line(engine, &line, tel, output)?;
        output.flush()?;
        if control != Control::Continue {
            return Ok(control);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_core::{InputData, InterpreterConfig};

    const TC: &str = "\
        .decl e(x: number, y: number)\n.input e\n\
        .decl p(x: number, y: number)\n.output p\n\
        p(x, y) :- e(x, y).\n\
        p(x, z) :- p(x, y), e(y, z).\n";

    fn session(src: &str, script: &str) -> String {
        let engine = RwLock::new(
            ResidentEngine::from_source(
                src,
                InterpreterConfig::optimized(),
                &InputData::new(),
                None,
            )
            .expect("builds"),
        );
        let mut out = Vec::new();
        let mut input = script.as_bytes();
        run_session(&engine, &mut input, &mut out, None).expect("io");
        String::from_utf8(out).expect("utf8")
    }

    #[test]
    fn insert_then_query_round_trips() {
        let out = session(
            TC,
            "+e(1, 2).\n+e(2, 3).\n?p(1, _)\n?p(_, _)\n+e(1, 2).\n.quit\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "ok 1 inserted");
        assert_eq!(lines[1], "ok 1 inserted");
        assert_eq!(lines[2], "1\t2");
        assert_eq!(lines[3], "1\t3");
        assert_eq!(lines[4], "ok 2 rows");
        assert!(lines.contains(&"ok 3 rows"));
        assert_eq!(lines[lines.len() - 2], "ok 0 inserted"); // duplicate
        assert_eq!(lines[lines.len() - 1], "bye");
    }

    #[test]
    fn named_variables_are_free() {
        let out = session(TC, "+e(5, 6).\n?p(x, y)\n.quit\n");
        assert!(out.contains("5\t6"));
        assert!(out.contains("ok 1 rows"));
    }

    #[test]
    fn errors_are_reported_inline_and_do_not_kill_the_session() {
        let out = session(
            TC,
            "+ghost(1).\n+p(1, 2).\n+e(1).\n?e(\n nonsense\n?p(1, 2, 3)\n+e(1, 2).\n.quit\n",
        );
        let errs = out.lines().filter(|l| l.starts_with("err ")).count();
        assert_eq!(errs, 6);
        assert!(out.contains("err unknown relation `ghost`"));
        assert!(out.contains("not declared `.input`"));
        assert!(
            out.contains("ok 1 inserted"),
            "session continues after errors"
        );
    }

    #[test]
    fn symbols_need_quotes_in_queries() {
        let src = "\
            .decl n(s: symbol, k: number)\n.input n\n\
            .decl out(s: symbol, k: number)\n.output out\n\
            out(s, k) :- n(s, k).\n";
        let out = session(
            src,
            "+n(\"ada\", 1).\n+n(\"grace\", 2).\n?out(\"ada\", _)\n?out(who, _)\n.quit\n",
        );
        assert!(out.contains("ada\t1"));
        assert!(out.contains("ok 1 rows"));
        assert!(out.contains("ok 2 rows"), "bare identifier means free");
    }

    #[test]
    fn stats_help_and_stop() {
        let out = session(TC, "+e(1, 2).\n.stats\n.help\n.stop\n");
        assert!(out.contains("update_tuples=1"));
        assert!(out.contains("commands:"));
        assert!(out.trim_end().ends_with("bye"));
    }

    #[test]
    fn nullary_atoms_parse_without_parens() {
        let src = "\
            .decl flag()\n.input flag\n\
            .decl go()\n.output go\n\
            go() :- flag().\n";
        let out = session(src, "?go()\n+flag().\n?go\n.quit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "ok 0 rows");
        assert_eq!(lines[1], "ok 1 inserted");
        assert_eq!(lines[2], "");
        assert_eq!(lines[3], "ok 1 rows");
    }
}
