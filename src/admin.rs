//! The daemon's admin endpoint: metrics, health, and readiness.
//!
//! `stird --admin-addr HOST:PORT` serves three HTTP paths:
//!
//! ```text
//! GET /metrics   Prometheus text exposition of the full registry
//! GET /healthz   liveness — 200 as long as the process responds
//! GET /readyz    readiness — 200 only after recovery completes and
//!                before a graceful drain starts, else 503
//! ```
//!
//! The HTTP layer is hand-rolled (request line + headers in, one
//! response out, connection closed), consistent with the workspace's
//! no-external-dependencies rule; the exposition format is the
//! Prometheus text format, with latency distributions rendered as
//! summaries (`{quantile="..."}` series plus `_sum` and `_count`).
//!
//! The listener binds *before* recovery so orchestrators can probe
//! `/readyz` from the first millisecond: it answers 503 while the WAL
//! replays, flips to 200 when the engine is published, and back to 503
//! the moment a drain starts (`.stop`, `SIGTERM`). The same registry
//! backs the line protocol's `.stats json`, so a scrape and an in-band
//! stats request can be diffed key for key.

use crate::serve::RequestCtx;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};
use std::time::Duration;
use stir_core::telemetry::{HistogramSnapshot, Logger, ServeMetrics};
use stir_core::{HealthState, Json, LogLevel, ResidentEngine};

/// Where the daemon is in its lifecycle, as `/readyz` reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Recovery (snapshot load + WAL replay) is still running.
    Starting,
    /// The engine is published and accepting requests.
    Serving,
    /// A graceful drain is in progress; no new work should be routed
    /// here.
    Draining,
}

/// Shared admin-endpoint state: the engine cell (published after
/// recovery) and the lifecycle phase.
#[derive(Debug, Default)]
pub struct AdminState {
    engine: OnceLock<Arc<RwLock<ResidentEngine>>>,
    phase: AtomicU8,
}

impl AdminState {
    /// A fresh state in [`Phase::Starting`].
    pub fn new() -> AdminState {
        AdminState::default()
    }

    /// Publishes the recovered engine and enters [`Phase::Serving`].
    pub fn publish(&self, engine: Arc<RwLock<ResidentEngine>>) {
        let _ = self.engine.set(engine);
        self.phase.store(1, Ordering::SeqCst);
    }

    /// Enters [`Phase::Draining`]; `/readyz` answers 503 from here on.
    pub fn start_drain(&self) {
        self.phase.store(2, Ordering::SeqCst);
    }

    /// The current lifecycle phase.
    pub fn phase(&self) -> Phase {
        match self.phase.load(Ordering::SeqCst) {
            0 => Phase::Starting,
            1 => Phase::Serving,
            _ => Phase::Draining,
        }
    }
}

/// One rendered HTTP response.
#[derive(Debug, PartialEq, Eq)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body.
    pub body: String,
}

/// Routes one admin request path against the current state. Pure —
/// the serve loop and the unit tests share it.
pub fn respond(path: &str, state: &AdminState) -> Response {
    let text = "text/plain; charset=utf-8";
    match path {
        "/healthz" => Response {
            status: 200,
            content_type: text,
            body: "ok\n".to_string(),
        },
        "/readyz" => match state.phase() {
            // While serving, readiness composes the storage health state:
            // a degraded engine still answers reads, so it stays ready
            // with a flag in the body; a failed one (heal budget
            // exhausted) reports 503 so orchestrators can replace it.
            Phase::Serving => match state.engine.get().map(|e| {
                e.read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .health()
                    .snapshot()
            }) {
                Some(HealthState::Failed { cause }) => Response {
                    status: 503,
                    content_type: text,
                    body: format!("not ready (storage failed: {cause})\n"),
                },
                Some(HealthState::Degraded { cause, .. }) => Response {
                    status: 200,
                    content_type: text,
                    body: format!("ready (degraded, read-only: {cause})\n"),
                },
                _ => Response {
                    status: 200,
                    content_type: text,
                    body: "ready\n".to_string(),
                },
            },
            Phase::Starting => Response {
                status: 503,
                content_type: text,
                body: "not ready (recovering)\n".to_string(),
            },
            Phase::Draining => Response {
                status: 503,
                content_type: text,
                body: "not ready (draining)\n".to_string(),
            },
        },
        "/metrics" => match state.engine.get() {
            Some(engine) => {
                let engine = engine.read().unwrap_or_else(PoisonError::into_inner);
                Response {
                    status: 200,
                    content_type: "text/plain; version=0.0.4; charset=utf-8",
                    body: render_prometheus(&engine),
                }
            }
            None => Response {
                status: 503,
                content_type: text,
                body: "metrics unavailable (recovering)\n".to_string(),
            },
        },
        _ => Response {
            status: 404,
            content_type: text,
            body: "not found\n".to_string(),
        },
    }
}

/// The full metrics registry as one JSON object — the payload of the
/// line protocol's `.stats json` and of `--metrics-interval` dumps.
///
/// Always present: `server` (request counters), `connections`, `db`
/// (epoch + per-relation tuple counts), and `histograms` (one
/// count/sum/max/quantile block per tracked latency). Durable engines
/// add `wal`, `snapshot`, and `recovery`; group-committed engines add
/// `group_commit`; an engine that has ever degraded adds `health`.
pub fn registry_json(engine: &ResidentEngine) -> Json {
    let s = engine.stats();
    let m = engine.serve_metrics();
    let mut root = vec![(
        "server".to_string(),
        Json::obj(vec![
            ("requests".to_string(), Json::num(s.requests)),
            ("update_tuples".to_string(), Json::num(s.update_tuples)),
            ("query_rows".to_string(), Json::num(s.query_rows)),
            ("strata_rerun".to_string(), Json::num(s.strata_rerun)),
            ("full_fallbacks".to_string(), Json::num(s.full_fallbacks)),
            ("retracts".to_string(), Json::num(s.retracts)),
            ("retract_tuples".to_string(), Json::num(s.retract_tuples)),
            ("rederived".to_string(), Json::num(s.rederived)),
            (
                "explain_requests".to_string(),
                Json::num(s.explain_requests),
            ),
            ("explain_nodes".to_string(), Json::num(s.explain_nodes)),
        ]),
    )];
    root.push((
        "connections".to_string(),
        Json::obj(vec![
            (
                "live".to_string(),
                Json::num(m.conns_live.load(Ordering::Relaxed)),
            ),
            (
                "peak".to_string(),
                Json::num(m.conns_peak.load(Ordering::Relaxed)),
            ),
            (
                "total".to_string(),
                Json::num(m.conns_total.load(Ordering::Relaxed)),
            ),
            (
                "slow_requests".to_string(),
                Json::num(m.slow_requests.load(Ordering::Relaxed)),
            ),
        ]),
    ));
    let relations = engine
        .relation_tuples()
        .into_iter()
        .map(|(name, n)| (name, Json::num(n)))
        .collect();
    let relation_bytes = engine.relation_bytes();
    let total_bytes: u64 = relation_bytes.iter().map(|(_, n)| n).sum();
    let relation_bytes = relation_bytes
        .into_iter()
        .map(|(name, n)| (name, Json::num(n)))
        .collect();
    root.push((
        "db".to_string(),
        Json::obj(vec![
            ("epoch".to_string(), Json::num(engine.db_epoch())),
            (
                "storage".to_string(),
                Json::Str(engine.storage().as_str().to_string()),
            ),
            ("relations".to_string(), Json::Obj(relations)),
            ("relation_bytes".to_string(), Json::Obj(relation_bytes)),
            ("resident_bytes".to_string(), Json::num(total_bytes)),
        ]),
    ));
    if let Some((hits, misses, evictions, resident, budget)) = engine.page_cache_stats() {
        root.push((
            "page_cache".to_string(),
            Json::obj(vec![
                ("hits".to_string(), Json::num(hits)),
                ("misses".to_string(), Json::num(misses)),
                ("evictions".to_string(), Json::num(evictions)),
                ("resident_bytes".to_string(), Json::num(resident)),
                ("budget_bytes".to_string(), Json::num(budget)),
            ]),
        ));
    }
    if let Some(w) = engine.wal_stats() {
        root.push((
            "wal".to_string(),
            Json::obj(vec![
                ("appends".to_string(), Json::num(w.appends)),
                ("bytes".to_string(), Json::num(w.bytes)),
                ("fsyncs".to_string(), Json::num(w.fsyncs)),
                ("append_errors".to_string(), Json::num(w.append_errors)),
            ]),
        ));
    }
    if let Some((fsyncs, commits)) = engine.group_commit_stats() {
        root.push((
            "group_commit".to_string(),
            Json::obj(vec![
                ("fsyncs".to_string(), Json::num(fsyncs)),
                ("commits".to_string(), Json::num(commits)),
            ]),
        ));
    }
    let health = engine.health();
    if health.state_code() != 0 || health.degraded_entered.load(Ordering::Relaxed) > 0 {
        root.push((
            "health".to_string(),
            Json::obj(vec![
                (
                    "state".to_string(),
                    Json::Str(health.snapshot().label().to_string()),
                ),
                (
                    "degraded_entered".to_string(),
                    Json::num(health.degraded_entered.load(Ordering::Relaxed)),
                ),
                (
                    "degraded_healed".to_string(),
                    Json::num(health.degraded_healed.load(Ordering::Relaxed)),
                ),
                (
                    "probe_failures".to_string(),
                    Json::num(health.probe_failures.load(Ordering::Relaxed)),
                ),
                (
                    "writes_refused".to_string(),
                    Json::num(health.writes_refused.load(Ordering::Relaxed)),
                ),
            ]),
        ));
    }
    if let Some((writes, tuples)) = engine.snapshot_stats() {
        root.push((
            "snapshot".to_string(),
            Json::obj(vec![
                ("writes".to_string(), Json::num(writes)),
                ("tuples".to_string(), Json::num(tuples)),
            ]),
        ));
    }
    if let Some(rec) = engine.recovery_report() {
        root.push((
            "recovery".to_string(),
            Json::obj(vec![
                (
                    "snapshot_loaded".to_string(),
                    Json::num(u64::from(rec.snapshot_loaded)),
                ),
                (
                    "wal_records".to_string(),
                    Json::num(rec.replayed_batches + rec.skipped_batches),
                ),
                (
                    "replayed_batches".to_string(),
                    Json::num(rec.replayed_batches),
                ),
                (
                    "replayed_tuples".to_string(),
                    Json::num(rec.replayed_tuples),
                ),
                (
                    "skipped_batches".to_string(),
                    Json::num(rec.skipped_batches),
                ),
                ("torn_bytes".to_string(), Json::num(rec.torn_bytes)),
                ("replay_ms".to_string(), Json::num(rec.replay_ms)),
            ]),
        ));
    }
    let mut hists = Vec::new();
    for (name, h) in histograms(m) {
        let snap = h.snapshot();
        hists.push((
            name.to_string(),
            Json::obj(vec![
                ("count".to_string(), Json::num(snap.count)),
                ("sum_ns".to_string(), Json::num(snap.sum_ns)),
                ("max_ns".to_string(), Json::num(snap.max_ns)),
                ("p50_ns".to_string(), Json::num(snap.p50_ns)),
                ("p90_ns".to_string(), Json::num(snap.p90_ns)),
                ("p99_ns".to_string(), Json::num(snap.p99_ns)),
                ("p999_ns".to_string(), Json::num(snap.p999_ns)),
            ]),
        ));
    }
    root.push(("histograms".to_string(), Json::Obj(hists)));
    Json::Obj(root)
}

/// The tracked latency histograms, in exposition order.
fn histograms(m: &ServeMetrics) -> [(&'static str, &stir_core::Histogram); 7] {
    [
        ("serve_update", &m.serve_update),
        ("serve_retract", &m.serve_retract),
        ("serve_query", &m.serve_query),
        ("serve_explain", &m.serve_explain),
        ("wal_append", &m.wal_append),
        ("wal_fsync", &m.wal_fsync),
        ("snapshot_write", &m.snapshot_write),
    ]
}

/// Renders the registry in the Prometheus text exposition format.
/// Counters and gauges are `stir_`-prefixed with dots flattened to
/// underscores; each latency histogram becomes a summary (quantile
/// series + `_sum` + `_count`) in nanoseconds.
pub fn render_prometheus(engine: &ResidentEngine) -> String {
    use std::fmt::Write as _;
    fn counter(out: &mut String, name: &str, help: &str, v: u64) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# HELP stir_{name} {help}");
        let _ = writeln!(out, "# TYPE stir_{name} counter");
        let _ = writeln!(out, "stir_{name} {v}");
    }
    fn gauge(out: &mut String, name: &str, help: &str, v: u64) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# HELP stir_{name} {help}");
        let _ = writeln!(out, "# TYPE stir_{name} gauge");
        let _ = writeln!(out, "stir_{name} {v}");
    }
    let mut out = String::new();
    let s = engine.stats();
    let m = engine.serve_metrics();
    counter(
        &mut out,
        "server_requests_total",
        "Requests served.",
        s.requests,
    );
    counter(
        &mut out,
        "server_update_tuples_total",
        "New tuples inserted by updates.",
        s.update_tuples,
    );
    counter(
        &mut out,
        "server_query_rows_total",
        "Rows returned by queries.",
        s.query_rows,
    );
    counter(
        &mut out,
        "server_strata_rerun_total",
        "Incremental stratum re-runs.",
        s.strata_rerun,
    );
    counter(
        &mut out,
        "server_full_fallbacks_total",
        "Full stratum recomputations.",
        s.full_fallbacks,
    );
    counter(
        &mut out,
        "server_retracts_total",
        "Retraction requests served.",
        s.retracts,
    );
    counter(
        &mut out,
        "server_retract_tuples_total",
        "Tuples removed by retractions.",
        s.retract_tuples,
    );
    counter(
        &mut out,
        "server_rederived_total",
        "Over-deleted tuples restored by re-derivation.",
        s.rederived,
    );
    counter(
        &mut out,
        "server_explain_requests_total",
        "Explain requests served.",
        s.explain_requests,
    );
    if s.parallel_scans > 0 {
        // Only emitted once a scan has fanned out, so sequential servers
        // keep their exposition byte-stable.
        counter(
            &mut out,
            "parallel_scans_total",
            "Scans fanned out to work-stealing workers.",
            s.parallel_scans,
        );
        counter(
            &mut out,
            "parallel_morsels_total",
            "Morsels claimed across all parallel scans.",
            s.parallel_morsels,
        );
        counter(
            &mut out,
            "parallel_steals_total",
            "Morsels stolen from other workers' ranges.",
            s.parallel_steals,
        );
        let worker_tuples = engine.parallel_worker_tuples();
        let _ = writeln!(
            out,
            "# HELP stir_parallel_worker_tuples_total Tuples processed per worker."
        );
        let _ = writeln!(out, "# TYPE stir_parallel_worker_tuples_total counter");
        for (w, tuples) in worker_tuples.iter().enumerate() {
            let _ = writeln!(
                out,
                "stir_parallel_worker_tuples_total{{worker=\"{w}\"}} {tuples}"
            );
        }
    }
    counter(
        &mut out,
        "server_slow_requests_total",
        "Requests over the slow threshold.",
        m.slow_requests.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "connections_total",
        "Connections accepted.",
        m.conns_total.load(Ordering::Relaxed),
    );
    gauge(
        &mut out,
        "connections_live",
        "Connections currently open.",
        m.conns_live.load(Ordering::Relaxed),
    );
    gauge(
        &mut out,
        "connections_peak",
        "Peak concurrently open connections.",
        m.conns_peak.load(Ordering::Relaxed),
    );
    gauge(
        &mut out,
        "db_epoch",
        "Database epoch (bumped on every visible mutation).",
        engine.db_epoch(),
    );
    if let Some(w) = engine.wal_stats() {
        counter(
            &mut out,
            "wal_appends_total",
            "WAL records appended.",
            w.appends,
        );
        counter(&mut out, "wal_bytes_total", "WAL bytes appended.", w.bytes);
        counter(&mut out, "wal_fsyncs_total", "WAL fsync calls.", w.fsyncs);
        counter(
            &mut out,
            "wal_append_errors_total",
            "WAL appends that failed.",
            w.append_errors,
        );
    }
    if let Some((fsyncs, commits)) = engine.group_commit_stats() {
        counter(
            &mut out,
            "group_commit_fsyncs_total",
            "Group-commit fsync barriers flushed.",
            fsyncs,
        );
        counter(
            &mut out,
            "group_commit_commits_total",
            "Commits acknowledged through group-commit barriers.",
            commits,
        );
    }
    let health = engine.health();
    if health.state_code() != 0 || health.degraded_entered.load(Ordering::Relaxed) > 0 {
        // Only emitted once the engine has degraded at least once, so a
        // healthy server's exposition stays byte-stable.
        gauge(
            &mut out,
            "degraded",
            "Storage health (0 healthy, 1 degraded read-only, 2 failed).",
            u64::from(health.state_code()),
        );
        counter(
            &mut out,
            "degraded_entered_total",
            "Transitions into degraded read-only mode.",
            health.degraded_entered.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "degraded_healed_total",
            "Degraded episodes that healed back to healthy.",
            health.degraded_healed.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "degraded_probe_failures_total",
            "Storage heal probes that failed.",
            health.probe_failures.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "degraded_writes_refused_total",
            "Writes refused while degraded or failed.",
            health.writes_refused.load(Ordering::Relaxed),
        );
    }
    if let Some((writes, tuples)) = engine.snapshot_stats() {
        counter(
            &mut out,
            "snapshot_writes_total",
            "Snapshots written.",
            writes,
        );
        counter(
            &mut out,
            "snapshot_tuples_total",
            "Tuples across written snapshots.",
            tuples,
        );
    }
    if let Some(rec) = engine.recovery_report() {
        gauge(
            &mut out,
            "recovery_snapshot_loaded",
            "Whether startup loaded a snapshot (0/1).",
            u64::from(rec.snapshot_loaded),
        );
        gauge(
            &mut out,
            "recovery_wal_records",
            "WAL records read during recovery.",
            rec.replayed_batches + rec.skipped_batches,
        );
        gauge(
            &mut out,
            "recovery_replay_ms",
            "Milliseconds spent replaying the WAL at startup.",
            rec.replay_ms,
        );
    }
    if let Some((hits, misses, evictions, resident, budget)) = engine.page_cache_stats() {
        // Only present once a v2 snapshot is mapped (disk storage after
        // a cold start or `.compact`), so memory-backed servers keep
        // the old exposition byte for byte.
        counter(
            &mut out,
            "page_cache_hits_total",
            "Snapshot page-cache hits.",
            hits,
        );
        counter(
            &mut out,
            "page_cache_misses_total",
            "Snapshot page-cache misses (pages read from disk).",
            misses,
        );
        counter(
            &mut out,
            "page_cache_evictions_total",
            "Snapshot pages evicted to stay within budget.",
            evictions,
        );
        gauge(
            &mut out,
            "page_cache_resident_bytes",
            "Bytes of snapshot pages currently cached.",
            resident,
        );
        gauge(
            &mut out,
            "page_cache_budget_bytes",
            "Configured snapshot page-cache budget.",
            budget,
        );
    }
    let _ = writeln!(
        out,
        "# HELP stir_relation_tuples Current tuples per base relation."
    );
    let _ = writeln!(out, "# TYPE stir_relation_tuples gauge");
    for (name, n) in engine.relation_tuples() {
        let _ = writeln!(out, "stir_relation_tuples{{relation=\"{name}\"}} {n}");
    }
    let relation_bytes = engine.relation_bytes();
    let _ = writeln!(
        out,
        "# HELP stir_relation_bytes Approximate resident bytes per base relation \
         (index structures only; mapped snapshot pages are excluded)."
    );
    let _ = writeln!(out, "# TYPE stir_relation_bytes gauge");
    for (name, n) in &relation_bytes {
        let _ = writeln!(out, "stir_relation_bytes{{relation=\"{name}\"}} {n}");
    }
    gauge(
        &mut out,
        "relations_resident_bytes",
        "Approximate resident bytes across all base relations' indexes.",
        relation_bytes.iter().map(|(_, n)| n).sum(),
    );
    for (name, h) in histograms(m) {
        summary(&mut out, name, &h.snapshot());
    }
    out
}

/// One latency histogram as a Prometheus summary in nanoseconds.
fn summary(out: &mut String, name: &str, snap: &HistogramSnapshot) {
    use std::fmt::Write as _;
    let base = format!("stir_{name}_latency_ns");
    let _ = writeln!(out, "# HELP {base} {name} latency in nanoseconds.");
    let _ = writeln!(out, "# TYPE {base} summary");
    for (q, v) in [
        ("0.5", snap.p50_ns),
        ("0.9", snap.p90_ns),
        ("0.99", snap.p99_ns),
        ("0.999", snap.p999_ns),
    ] {
        let _ = writeln!(out, "{base}{{quantile=\"{q}\"}} {v}");
    }
    let _ = writeln!(out, "{base}_sum {}", snap.sum_ns);
    let _ = writeln!(out, "{base}_count {}", snap.count);
    let _ = writeln!(out, "{base}_max {}", snap.max_ns);
}

/// How long an admin connection may sit idle before being dropped —
/// also the bound an unresponsive client can delay shutdown by.
const ADMIN_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Serves admin requests until the drain phase begins, then drains
/// in-flight handlers and returns. One short-lived thread per
/// connection; each reads one request, writes one response, and closes.
pub fn serve(listener: TcpListener, state: Arc<AdminState>, logger: Logger) {
    listener
        .set_nonblocking(true)
        .expect("admin listener nonblocking");
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((sock, peer)) => {
                let state = Arc::clone(&state);
                handlers.push(std::thread::spawn(move || {
                    handle_conn(sock, &state, &logger, &peer.to_string());
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if state.phase() == Phase::Draining {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                logger.log(LogLevel::Warn, &format!("admin accept failed: {e}"));
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        handlers.retain(|h| !h.is_finished());
    }
    // Drain: requests accepted before the drain began (an orchestrator's
    // last probe, a scraper mid-request) still get their response.
    for h in handlers {
        let _ = h.join();
    }
}

/// Handles one admin connection: parse the request line, consume the
/// headers, route, respond, close.
fn handle_conn(mut sock: TcpStream, state: &AdminState, logger: &Logger, peer: &str) {
    let _ = sock.set_read_timeout(Some(ADMIN_READ_TIMEOUT));
    let mut reader = BufReader::new(match sock.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() || request_line.is_empty() {
        return;
    }
    // Drop the headers; every admin request is GET with no body.
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        header.clear();
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let resp = if method == "GET" {
        respond(path, state)
    } else {
        Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "method not allowed\n".to_string(),
        }
    };
    logger.log(
        LogLevel::Debug,
        &format!("admin {method} {path} -> {} ({peer})", resp.status),
    );
    let reason = match resp.status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Service Unavailable",
    };
    let _ = write!(
        sock,
        "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        resp.status,
        resp.content_type,
        resp.body.len(),
        resp.body
    );
    let _ = sock.flush();
}

/// Builds the per-connection serving context `stird` hands to
/// [`crate::serve::run_session_ctx`].
pub fn request_ctx(
    metrics: Arc<ServeMetrics>,
    client: String,
    slow_ms: Option<u64>,
    logger: Logger,
    admission: Option<Arc<crate::serve::WriteAdmission>>,
) -> RequestCtx {
    RequestCtx {
        metrics,
        client,
        slow_ms,
        logger,
        admission,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_core::{InputData, InterpreterConfig};

    fn engine() -> Arc<RwLock<ResidentEngine>> {
        let src = "\
            .decl e(x: number, y: number)\n.input e\n\
            .decl p(x: number, y: number)\n.output p\n\
            p(x, y) :- e(x, y).\n";
        Arc::new(RwLock::new(
            ResidentEngine::from_source(
                src,
                InterpreterConfig::optimized(),
                &InputData::new(),
                None,
            )
            .expect("engine"),
        ))
    }

    #[test]
    fn readyz_tracks_the_lifecycle() {
        let state = AdminState::new();
        assert_eq!(respond("/readyz", &state).status, 503);
        assert!(respond("/readyz", &state).body.contains("recovering"));
        assert_eq!(respond("/metrics", &state).status, 503);
        state.publish(engine());
        assert_eq!(respond("/readyz", &state).status, 200);
        assert_eq!(respond("/metrics", &state).status, 200);
        state.start_drain();
        assert_eq!(respond("/readyz", &state).status, 503);
        assert!(respond("/readyz", &state).body.contains("draining"));
        // Liveness and metrics stay up through the drain.
        assert_eq!(respond("/healthz", &state).status, 200);
        assert_eq!(respond("/metrics", &state).status, 200);
        assert_eq!(respond("/nope", &state).status, 404);
    }

    #[test]
    fn readyz_and_metrics_surface_degraded_storage() {
        let state = AdminState::new();
        let eng = engine();
        state.publish(Arc::clone(&eng));
        let health = eng.read().unwrap().health();

        // Healthy: no degraded series pollute the exposition.
        let body = respond("/metrics", &state).body;
        assert!(!body.contains("stir_degraded"));
        let json = registry_json(&eng.read().unwrap());
        assert!(json.get("health").is_none(), "healthy has no health block");

        // Degraded: still ready (reads serve), flagged in body + metrics.
        health.record_degraded("disk full");
        let ready = respond("/readyz", &state);
        assert_eq!(ready.status, 200);
        assert!(ready.body.contains("degraded"), "body: {}", ready.body);
        assert!(ready.body.contains("disk full"));
        let body = respond("/metrics", &state).body;
        assert!(body.contains("stir_degraded 1"));
        assert!(body.contains("stir_degraded_entered_total 1"));
        let json = registry_json(&eng.read().unwrap());
        let h = json.get("health").expect("health block");
        assert_eq!(h.get("state").and_then(Json::as_str), Some("degraded"));

        // Failed (heal budget exhausted): readiness flips to 503.
        health.set_budget(1);
        health.record_probe_failure("still down");
        health.record_probe_failure("still down");
        let ready = respond("/readyz", &state);
        assert_eq!(ready.status, 503);
        assert!(ready.body.contains("storage failed"));
        assert!(respond("/metrics", &state).body.contains("stir_degraded 2"));

        // Healed: ready again, and the episode stays visible.
        health.mark_healed();
        assert_eq!(respond("/readyz", &state).status, 200);
        assert_eq!(respond("/readyz", &state).body, "ready\n");
        let body = respond("/metrics", &state).body;
        assert!(body.contains("stir_degraded 0"));
        assert!(body.contains("stir_degraded_healed_total 1"));
    }

    #[test]
    fn prometheus_exposition_carries_counters_and_summaries() {
        let state = AdminState::new();
        let eng = engine();
        {
            let mut guard = eng.write().unwrap();
            let metrics = Arc::new(ServeMetrics::on());
            guard.attach_serve_metrics(Arc::clone(&metrics));
            metrics.serve_query.record(1_500);
            metrics.serve_query.record(2_500);
        }
        state.publish(Arc::clone(&eng));
        let body = respond("/metrics", &state).body;
        assert!(body.contains("# TYPE stir_server_requests_total counter"));
        assert!(body.contains("stir_server_requests_total 0"));
        assert!(body.contains("stir_relation_tuples{relation=\"e\"} 0"));
        assert!(body.contains("# TYPE stir_serve_query_latency_ns summary"));
        assert!(body.contains("stir_serve_query_latency_ns_count 2"));
        assert!(body.contains("stir_serve_query_latency_ns_sum 4000"));
        assert!(body.contains("stir_serve_query_latency_ns{quantile=\"0.5\"}"));
        // Non-durable engines expose no WAL series.
        assert!(!body.contains("stir_wal_appends_total"));
    }

    #[test]
    fn registry_json_matches_the_exposition() {
        let eng = engine();
        let metrics = Arc::new(ServeMetrics::on());
        {
            let mut guard = eng.write().unwrap();
            guard.attach_serve_metrics(Arc::clone(&metrics));
            metrics.serve_update.record(10_000);
        }
        let guard = eng.read().unwrap();
        let json = registry_json(&guard);
        let hist = json
            .get("histograms")
            .and_then(|h| h.get("serve_update"))
            .expect("serve_update block");
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(hist.get("sum_ns").and_then(Json::as_u64), Some(10_000));
        assert!(json.get("wal").is_none(), "non-durable has no wal block");
        let text = render_prometheus(&guard);
        assert!(text.contains("stir_serve_update_latency_ns_count 1"));
    }
}
