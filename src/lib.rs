//! STIR — a Soufflé-style Tree Interpreter in Rust.
//!
//! A from-scratch reproduction of *"An Efficient Interpreter for Datalog
//! by De-specializing Relations"* (Hu, Zhao, Jordan, Scholz; PLDI 2021):
//! a complete Datalog engine whose tree interpreter runs on de-specialized
//! relational data structures, plus the compiled (synthesizer) and legacy
//! baselines the paper evaluates against.
//!
//! This crate is the facade: it re-exports the workspace crates under one
//! name. See the individual crates for detail:
//!
//! * [`frontend`] — lexer, parser, semantic analysis, stratification;
//! * [`ram`] — the Relational Algebra Machine IR, translator, and
//!   automatic index selection;
//! * [`der`] — the Datalog-Enabled Relational data structures (B-tree,
//!   Brie, equivalence relation) and their de-specialization layer;
//! * [`core`] — the STI interpreter, its optimizations, the legacy
//!   interpreter, and the per-rule profiler;
//! * [`synth`] — the compiled baseline (RAM → Rust → `rustc -O`);
//! * [`workloads`] — synthetic analogues of the paper's three benchmark
//!   suites.
//!
//! # Quickstart
//!
//! ```
//! use stir::{Engine, InterpreterConfig};
//!
//! let engine = Engine::from_source(
//!     ".decl edge(x: number, y: number)
//!      .decl path(x: number, y: number)
//!      .output path
//!      edge(1, 2). edge(2, 3).
//!      path(x, y) :- edge(x, y).
//!      path(x, z) :- path(x, y), edge(y, z).",
//! )?;
//! let result = engine.run(InterpreterConfig::optimized(), &Default::default())?;
//! assert_eq!(result.outputs["path"].len(), 3);
//! # Ok::<(), stir::EngineError>(())
//! ```

#![warn(missing_docs)]

pub mod admin;
pub mod serve;

pub use stir_core as core;
pub use stir_der as der;
pub use stir_frontend as frontend;
pub use stir_ram as ram;
pub use stir_synth as synth;
pub use stir_workloads as workloads;

pub use stir_core::{
    profile_json, Engine, EngineError, EvalOutcome, ExplainLimits, InputData, InterpreterConfig,
    Json, LogLevel, ParallelReport, ProfileReport, ProofNode, ResidentEngine, ServerStats,
    StorageBackend, Telemetry, UpdateReport, Value,
};
