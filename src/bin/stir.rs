//! The `stir` command-line driver: run Datalog programs like `souffle`.
//!
//! ```text
//! stir PROGRAM.dl [-F facts_dir] [-D out_dir] [options]
//!
//!   -F, --fact-dir DIR     read <rel>.facts for every .input relation
//!   -D, --output-dir DIR   write <rel>.csv for every .output relation
//!                          (default: print outputs to stdout)
//!       --mode MODE        sti | dynamic | unopt | legacy    (default sti)
//!       --no-super         disable super-instructions
//!       --no-reorder       disable static tuple reordering
//!       --no-outline       disable handler outlining
//!       --profile          print the per-rule profile after the run
//!       --ram              print the RAM listing and exit
//!       --synthesize DIR   emit + rustc-compile the synthesized program
//!                          into DIR instead of interpreting
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use stir::core::io;
use stir::{Engine, InputData, InterpreterConfig};

struct Options {
    program: PathBuf,
    fact_dir: Option<PathBuf>,
    output_dir: Option<PathBuf>,
    config: InterpreterConfig,
    profile: bool,
    print_ram: bool,
    synthesize: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: stir PROGRAM.dl [-F facts_dir] [-D out_dir] \
         [--mode sti|dynamic|unopt|legacy] [--no-super] [--no-reorder] \
         [--no-outline] [--profile] [--ram] [--synthesize DIR]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut program = None;
    let mut fact_dir = None;
    let mut output_dir = None;
    let mut config = InterpreterConfig::optimized();
    let mut profile = false;
    let mut print_ram = false;
    let mut synthesize = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-F" | "--fact-dir" => {
                fact_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "-D" | "--output-dir" => {
                output_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--mode" => {
                config = match args.next().as_deref() {
                    Some("sti") => InterpreterConfig::optimized(),
                    Some("dynamic") => InterpreterConfig::dynamic_adapter(),
                    Some("unopt") => InterpreterConfig::unoptimized(),
                    Some("legacy") => InterpreterConfig::legacy(),
                    _ => usage(),
                }
            }
            "--no-super" => config.super_instructions = false,
            "--no-reorder" => config.static_reordering = false,
            "--no-outline" => config.outlined_handlers = false,
            "--profile" => profile = true,
            "--ram" => print_ram = true,
            "--synthesize" => {
                synthesize = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "-h" | "--help" => usage(),
            other if program.is_none() && !other.starts_with('-') => {
                program = Some(PathBuf::from(other))
            }
            _ => usage(),
        }
    }
    Options {
        program: program.unwrap_or_else(|| usage()),
        fact_dir,
        output_dir,
        config: if profile {
            config.with_profile()
        } else {
            config
        },
        profile,
        print_ram,
        synthesize,
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let source = match std::fs::read_to_string(&opts.program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stir: cannot read {}: {e}", opts.program.display());
            return ExitCode::FAILURE;
        }
    };
    let engine = match Engine::from_source(&source) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("stir: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.print_ram {
        print!("{}", engine.ram());
        return ExitCode::SUCCESS;
    }

    if let Some(dir) = &opts.synthesize {
        let source = stir::synth::generate(engine.ram());
        match stir::synth::compile(&source, dir) {
            Ok(program) => {
                println!(
                    "synthesized {} (compiled in {:?})\nrun it as: {} <facts_dir> <out_dir>",
                    program.binary_path.display(),
                    program.compile_time,
                    program.binary_path.display()
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("stir: synthesis failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let inputs = match &opts.fact_dir {
        Some(dir) => match io::read_facts_dir(engine.ram(), dir) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("stir: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => InputData::new(),
    };

    let started = std::time::Instant::now();
    let result = match engine.run(opts.config, &inputs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stir: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();

    match &opts.output_dir {
        Some(dir) => {
            if let Err(e) = io::write_outputs_dir(&result.outputs, dir) {
                eprintln!("stir: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            let mut names: Vec<&String> = result.outputs.keys().collect();
            names.sort();
            for name in names {
                println!("--- {name} ({} tuples)", result.outputs[name].len());
                for row in &result.outputs[name] {
                    let rendered: Vec<String> = row.iter().map(ToString::to_string).collect();
                    println!("{}", rendered.join("\t"));
                }
            }
        }
    }
    eprintln!("stir: evaluated in {elapsed:?}");

    if opts.profile {
        if let Some(profile) = result.profile {
            eprintln!(
                "stir: {} dispatches, {} scan iterations",
                profile.dispatches, profile.iterations
            );
            let mut rules = profile.by_rule();
            rules.sort_by_key(|r| std::cmp::Reverse(r.time));
            for rule in rules {
                eprintln!(
                    "  {:>10.3?}  {:>10} tuples  {}",
                    rule.time, rule.tuples, rule.label
                );
            }
        }
    }
    ExitCode::SUCCESS
}
