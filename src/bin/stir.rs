//! The `stir` command-line driver: run Datalog programs like `souffle`.
//!
//! ```text
//! stir [repl|explain] PROGRAM.dl [ATOM] [-F facts_dir] [-D out_dir] [options]
//!
//!   -F, --fact-dir DIR     read <rel>.facts for every .input relation
//!   -D, --output-dir DIR   write <rel>.csv for every .output relation
//!                          (default: print outputs to stdout)
//!       --mode MODE        sti | dynamic | unopt | legacy    (default sti)
//!       --no-super         disable super-instructions
//!       --no-reorder       disable static tuple reordering
//!       --no-outline       disable handler outlining
//!   -j, --jobs N           evaluate parallel scans with N workers
//!                          (default: $STIR_JOBS or 1)
//!       --provenance       annotated evaluation; `.explain` in the repl
//!                          (and `stir explain`) serves proof trees
//!       --profile          print the per-rule profile after the run
//!       --profile-json F   write the machine-readable profile JSON to F
//!       --trace-folded F   write flamegraph folded stacks to F
//!       --log LEVEL        stderr verbosity: off|error|warn|info|debug
//!       --ram              print the RAM listing and exit
//!       --synthesize DIR   emit + rustc-compile the synthesized program
//!                          into DIR instead of interpreting
//!   -h, --help             print this help and exit
//!   -V, --version          print the version and exit
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::RwLock;
use stir::core::io;
use stir::core::{Durability, PersistOptions};
use stir::StorageBackend;
use stir::{
    profile_json, Engine, InputData, InterpreterConfig, LogLevel, ProfileReport, ResidentEngine,
    Telemetry,
};

struct Options {
    program: PathBuf,
    fact_dir: Option<PathBuf>,
    output_dir: Option<PathBuf>,
    config: InterpreterConfig,
    profile: bool,
    profile_json: Option<PathBuf>,
    trace_folded: Option<PathBuf>,
    log_level: LogLevel,
    print_ram: bool,
    synthesize: Option<PathBuf>,
    repl: bool,
    /// `stir explain PROGRAM.dl 'rel(c1, ...)'`: run the fixpoint with
    /// provenance on, print the fact's proof tree, exit.
    explain_atom: Option<String>,
    data_dir: Option<PathBuf>,
    persist: PersistOptions,
}

const HELP: &str = "\
usage: stir [repl|explain] PROGRAM.dl [ATOM] [-F facts_dir] [-D out_dir] [options]

  repl                   load PROGRAM.dl, run the fixpoint once, then
                         serve `+fact(...)` / `?query(...)` lines from
                         stdin against the resident engine (see also the
                         stird TCP server)
  explain                one-shot provenance query: run the fixpoint with
                         annotations on and print the minimal-height
                         proof tree of ATOM, e.g.
                           stir explain prog.dl 'path(1, 3)' -F facts

  -F, --fact-dir DIR     read <rel>.facts for every .input relation
  -D, --output-dir DIR   write <rel>.csv for every .output relation
                         (default: print outputs to stdout)
      --mode MODE        sti | dynamic | unopt | legacy    (default sti)
      --storage BACKEND  mem | disk    (default: $STIR_STORAGE or mem)
                         disk serves base relations off the mapped v2
                         snapshot through a budgeted page cache
                         ($STIR_PAGE_CACHE bytes) with in-memory deltas
      --no-super         disable super-instructions
      --no-reorder       disable static tuple reordering
      --no-outline       disable handler outlining
  -j, --jobs N           evaluate parallel scans with N workers
                         (default: $STIR_JOBS or 1)
      --provenance       annotate tuples with (rule, height); the repl
                         then answers `.explain rel(...)` with proof
                         trees (`stir explain` implies this)
      --profile          print the per-rule profile after the run
      --profile-json F   write the machine-readable profile JSON to F
      --trace-folded F   write flamegraph folded stacks to F
      --log LEVEL        stderr verbosity: off|error|warn|info|debug
      --ram              print the RAM listing and exit
      --synthesize DIR   emit + rustc-compile the synthesized program
                         into DIR instead of interpreting

repl-only durability flags (see DESIGN.md §10):
      --data-dir DIR     write-ahead log + snapshots under DIR; restart
                         recovers every acknowledged insert
      --durability MODE  none | batch | always
                         (default: $STIR_DURABILITY or batch)
      --snapshot-interval N  auto-snapshot every N insert batches

  -h, --help             print this help and exit
  -V, --version          print the version and exit";

fn usage() -> ! {
    eprintln!("{HELP}");
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut program = None;
    let mut fact_dir = None;
    let mut output_dir = None;
    let mut config = InterpreterConfig::optimized();
    let mut profile = false;
    let mut profile_json = None;
    let mut trace_folded = None;
    let mut log_level = LogLevel::Off;
    let mut print_ram = false;
    let mut synthesize = None;
    let mut repl = false;
    let mut explain = false;
    let mut explain_atom = None;
    let mut provenance = false;
    let mut jobs = None;
    let mut storage = None;
    let mut data_dir = None;
    let mut persist = PersistOptions {
        durability: Durability::default_from_env(),
        snapshot_interval: None,
    };
    let mut first = true;
    while let Some(arg) = args.next() {
        if std::mem::take(&mut first) {
            match arg.as_str() {
                "repl" => {
                    repl = true;
                    continue;
                }
                "explain" => {
                    explain = true;
                    continue;
                }
                _ => {}
            }
        }
        if explain && program.is_some() && explain_atom.is_none() && !arg.starts_with('-') {
            explain_atom = Some(arg);
            continue;
        }
        match arg.as_str() {
            "-F" | "--fact-dir" => {
                fact_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "-D" | "--output-dir" => {
                output_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--mode" => {
                config = match args.next().as_deref() {
                    Some("sti") => InterpreterConfig::optimized(),
                    Some("dynamic") => InterpreterConfig::dynamic_adapter(),
                    Some("unopt") => InterpreterConfig::unoptimized(),
                    Some("legacy") => InterpreterConfig::legacy(),
                    _ => usage(),
                }
            }
            "-j" | "--jobs" => {
                jobs = match args.next().as_deref().map(str::parse::<usize>) {
                    Some(Ok(n)) if n >= 1 => Some(n),
                    Some(_) => {
                        eprintln!("stir: --jobs needs a positive integer");
                        std::process::exit(2)
                    }
                    None => usage(),
                }
            }
            "--provenance" => provenance = true,
            "--storage" => {
                storage = match args.next().as_deref().map(StorageBackend::parse) {
                    Some(Some(s)) => Some(s),
                    Some(None) => {
                        eprintln!("stir: --storage needs `mem` or `disk`");
                        std::process::exit(2)
                    }
                    None => usage(),
                }
            }
            "--no-super" => config.super_instructions = false,
            "--no-reorder" => config.static_reordering = false,
            "--no-outline" => config.outlined_handlers = false,
            "--profile" => profile = true,
            "--profile-json" => {
                profile_json = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--trace-folded" => {
                trace_folded = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--log" => {
                log_level = match args.next().as_deref().map(str::parse) {
                    Some(Ok(level)) => level,
                    Some(Err(e)) => {
                        eprintln!("stir: {e}");
                        std::process::exit(2)
                    }
                    None => usage(),
                }
            }
            "--data-dir" => data_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--durability" => match args.next().as_deref().map(Durability::parse) {
                Some(Ok(d)) => persist.durability = d,
                Some(Err(e)) => {
                    eprintln!("stir: {e}");
                    std::process::exit(2)
                }
                None => usage(),
            },
            "--snapshot-interval" => {
                persist.snapshot_interval = match args.next().as_deref().map(str::parse::<u64>) {
                    Some(Ok(n)) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("stir: --snapshot-interval needs a positive integer");
                        std::process::exit(2)
                    }
                }
            }
            "--ram" => print_ram = true,
            "--synthesize" => {
                synthesize = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "-h" | "--help" => {
                println!("{HELP}");
                std::process::exit(0)
            }
            "-V" | "--version" => {
                println!("stir {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0)
            }
            other if program.is_none() && !other.starts_with('-') => {
                program = Some(PathBuf::from(other))
            }
            _ => usage(),
        }
    }
    if profile || profile_json.is_some() {
        config.profile = true;
    }
    // `--mode` rebuilds the config, so the worker count and provenance
    // switch are applied last to make flag order irrelevant. `stir
    // explain` is pointless without annotations, so it implies them.
    if let Some(n) = jobs {
        config.jobs = n;
    }
    if let Some(s) = storage {
        config.storage = s;
    }
    if provenance || explain {
        config.provenance = true;
    }
    if explain && explain_atom.is_none() {
        eprintln!("stir: explain needs a fact atom, e.g. stir explain prog.dl 'path(1, 3)'");
        std::process::exit(2)
    }
    // Folded stacks need statement spans; `info` heartbeats need the
    // instrumented interpreter instantiation, which `trace` selects.
    if trace_folded.is_some() || log_level >= LogLevel::Info {
        config.trace = true;
    }
    Options {
        program: program.unwrap_or_else(|| usage()),
        fact_dir,
        output_dir,
        config,
        profile,
        profile_json,
        trace_folded,
        log_level,
        print_ram,
        synthesize,
        repl,
        explain_atom,
        data_dir,
        persist,
    }
}

/// Renders the `--profile` table: rules sorted by cumulative time, with
/// aligned columns and each rule's share of the total profiled time.
fn print_profile_table(profile: &ProfileReport) {
    eprintln!(
        "stir: {} dispatches, {} scan iterations, {} super-instruction hits, {} inserts",
        profile.dispatches, profile.iterations, profile.super_hits, profile.total_inserts
    );
    let mut rules = profile.by_rule();
    rules.sort_by_key(|r| std::cmp::Reverse(r.time));
    let total_ns: u128 = rules.iter().map(|r| r.time.as_nanos()).sum();
    eprintln!(
        "  {:>12} {:>9} {:>10} {:>6}  RULE",
        "TIME", "EXECS", "TUPLES", "%TIME"
    );
    for rule in rules {
        let pct = if total_ns == 0 {
            0.0
        } else {
            100.0 * rule.time.as_nanos() as f64 / total_ns as f64
        };
        eprintln!(
            "  {:>12} {:>9} {:>10} {:>6.1}  {}",
            format!("{:.3?}", rule.time),
            rule.executions,
            rule.tuples,
            pct,
            rule.label
        );
    }
}

/// `stir explain PROG.dl 'rel(c1, ...)'`: run the fixpoint with
/// annotations, print the fact's proof tree through the same `.explain`
/// handler the serving protocol uses, and exit non-zero when the fact
/// is not derivable (so scripts can branch on it).
fn run_explain(
    opts: &Options,
    engine: Engine,
    inputs: &InputData,
    tel: &Telemetry,
    atom: &str,
) -> ExitCode {
    let resident = match ResidentEngine::new(engine, opts.config, inputs, Some(tel)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stir: {e}");
            return ExitCode::FAILURE;
        }
    };
    let shared = RwLock::new(resident);
    let mut buf = Vec::new();
    let line = format!(".explain {atom}");
    if let Err(e) = stir::serve::handle_line(&shared, &line, Some(tel), &mut buf) {
        eprintln!("stir: {e}");
        return ExitCode::FAILURE;
    }
    let text = String::from_utf8_lossy(&buf);
    if let Some(err) = text.strip_prefix("err ") {
        eprintln!("stir: {}", err.trim_end());
        return ExitCode::FAILURE;
    }
    print!("{text}");
    ExitCode::SUCCESS
}

/// `stir repl`: make the engine resident and serve protocol lines from
/// stdin until `.quit`/`.stop`/EOF. `--profile-json` then covers the
/// whole session — the initial fixpoint plus every update and query span.
fn run_repl(opts: &Options, engine: Engine, inputs: &InputData, tel: &Telemetry) -> ExitCode {
    let started = std::time::Instant::now();
    let resident = match &opts.data_dir {
        Some(dir) => {
            match ResidentEngine::open(engine, opts.config, inputs, dir, opts.persist, Some(tel)) {
                Ok((r, recovery)) => {
                    eprintln!(
                        "stir: recovery snapshot={} replayed={} batches ({} tuples) torn_bytes={}",
                        recovery.snapshot_loaded,
                        recovery.replayed_batches,
                        recovery.replayed_tuples,
                        recovery.torn_bytes,
                    );
                    r
                }
                Err(e) => {
                    eprintln!("stir: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => match ResidentEngine::new(engine, opts.config, inputs, Some(tel)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("stir: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    eprintln!(
        "stir: resident engine ready ({} relations, {} strata); .help for commands",
        resident.ram().relations.len(),
        resident.ram().strata.len()
    );
    let shared = RwLock::new(resident);
    let mut input = std::io::stdin().lock();
    let mut output = std::io::stdout().lock();
    if let Err(e) = stir::serve::run_session(&shared, &mut input, &mut output, Some(tel)) {
        eprintln!("stir: {e}");
        return ExitCode::FAILURE;
    }
    drop(output);
    let elapsed = started.elapsed();
    let mut resident = shared.into_inner().unwrap_or_else(|p| p.into_inner());
    if resident.is_durable() {
        if let Err(e) = resident.flush_wal() {
            eprintln!("stir: WAL flush at exit failed: {e}");
        }
        match resident.snapshot(Some(tel)) {
            Ok(s) => eprintln!(
                "stir: exit snapshot: {} tuples, {} bytes",
                s.tuples, s.bytes
            ),
            Err(e) => eprintln!("stir: exit snapshot failed: {e}"),
        }
    }
    if let Some(path) = &opts.profile_json {
        resident.sync_metrics(tel);
        let json = profile_json(resident.ram(), resident.initial_profile(), tel, elapsed);
        if let Err(e) = std::fs::write(path, json.render() + "\n") {
            eprintln!("stir: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.trace_folded {
        if let Err(e) = std::fs::write(path, tel.tracer.folded()) {
            eprintln!("stir: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = parse_args();
    // The tracer feeds both emitters (phase timings in the JSON, folded
    // stacks for flamegraphs); metrics only matter for the JSON.
    let wants_json = opts.profile_json.is_some();
    let wants_folded = opts.trace_folded.is_some();
    let tel = Telemetry::new(wants_json || wants_folded, wants_json, opts.log_level);
    let tel_ref = Some(&tel);

    let source = match std::fs::read_to_string(&opts.program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stir: cannot read {}: {e}", opts.program.display());
            return ExitCode::FAILURE;
        }
    };
    let engine = match Engine::from_source_with(&source, tel_ref) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("stir: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.print_ram {
        print!("{}", engine.ram());
        return ExitCode::SUCCESS;
    }

    if let Some(dir) = &opts.synthesize {
        let source = stir::synth::generate(engine.ram());
        match stir::synth::compile(&source, dir) {
            Ok(program) => {
                println!(
                    "synthesized {} (compiled in {:?})\nrun it as: {} <facts_dir> <out_dir>",
                    program.binary_path.display(),
                    program.compile_time,
                    program.binary_path.display()
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("stir: synthesis failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let inputs = match &opts.fact_dir {
        Some(dir) => match io::read_facts_dir(engine.ram(), dir) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("stir: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => InputData::new(),
    };

    if let Some(atom) = opts.explain_atom.clone() {
        return run_explain(&opts, engine, &inputs, &tel, &atom);
    }
    if opts.repl {
        return run_repl(&opts, engine, &inputs, &tel);
    }

    let started = std::time::Instant::now();
    let result = match engine.run_with(opts.config, &inputs, &[], tel_ref) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stir: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();

    match &opts.output_dir {
        Some(dir) => {
            if let Err(e) = io::write_outputs_dir(&result.outputs, dir) {
                eprintln!("stir: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            let mut names: Vec<&String> = result.outputs.keys().collect();
            names.sort();
            for name in names {
                println!("--- {name} ({} tuples)", result.outputs[name].len());
                for row in &result.outputs[name] {
                    let rendered: Vec<String> = row.iter().map(ToString::to_string).collect();
                    println!("{}", rendered.join("\t"));
                }
            }
        }
    }
    eprintln!("stir: evaluated in {elapsed:?}");

    if opts.profile {
        if let Some(profile) = &result.profile {
            print_profile_table(profile);
        }
    }
    if let Some(path) = &opts.profile_json {
        let json = profile_json(engine.ram(), result.profile.as_ref(), &tel, elapsed);
        if let Err(e) = std::fs::write(path, json.render() + "\n") {
            eprintln!("stir: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.trace_folded {
        if let Err(e) = std::fs::write(path, tel.tracer.folded()) {
            eprintln!("stir: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
