//! `stird` — the resident-engine TCP server.
//!
//! ```text
//! stird PROGRAM.dl [-F facts_dir] [options]
//!
//!   -F, --fact-dir DIR     read <rel>.facts for every .input relation
//!       --port PORT        TCP port to listen on (default 0 = pick a
//!                          free port; the chosen address is printed as
//!                          `stird: listening on ADDR`)
//!       --mode MODE        sti | dynamic | unopt | legacy    (default sti)
//!   -j, --jobs N           evaluate parallel scans with N workers
//!                          (default: $STIR_JOBS or 1)
//!       --profile-json F   write the machine-readable profile JSON to F
//!                          at shutdown (covers the initial fixpoint and
//!                          the whole serving session)
//!       --log LEVEL        stderr verbosity: off|error|warn|info|debug
//!   -h, --help             print this help and exit
//! ```
//!
//! One resident engine serves every connection with the line protocol of
//! [`stir::serve`]: inserts take the engine's write lock (serialized),
//! queries take the read lock (concurrent). A client sending `.stop`
//! shuts the whole server down gracefully — in-flight connections finish
//! their current request, then the profile JSON (if requested) is
//! flushed. Telemetry lives behind a `Mutex` because the tracer is
//! single-threaded by design; it is only locked when profiling was
//! requested, so the serving fast path never touches it.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};
use stir::core::io;
use stir::serve::{handle_line, Control};
use stir::{
    profile_json, Engine, InputData, InterpreterConfig, LogLevel, ResidentEngine, Telemetry,
};

struct Options {
    program: PathBuf,
    fact_dir: Option<PathBuf>,
    port: u16,
    config: InterpreterConfig,
    profile_json: Option<PathBuf>,
    log_level: LogLevel,
}

const HELP: &str = "\
usage: stird PROGRAM.dl [-F facts_dir] [options]

  -F, --fact-dir DIR     read <rel>.facts for every .input relation
      --port PORT        TCP port (default 0 = pick a free port)
      --mode MODE        sti | dynamic | unopt | legacy    (default sti)
  -j, --jobs N           evaluate parallel scans with N workers
                         (default: $STIR_JOBS or 1)
      --profile-json F   write the profile JSON to F at shutdown
      --log LEVEL        stderr verbosity: off|error|warn|info|debug
  -h, --help             print this help and exit

protocol (one request per line): +rel(1,2). | ?rel(1,_,x) | .stats |
.help | .quit (close connection) | .stop (shut the server down)";

fn usage() -> ! {
    eprintln!("{HELP}");
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut program = None;
    let mut fact_dir = None;
    let mut port = 0u16;
    let mut config = InterpreterConfig::optimized();
    let mut profile_json = None;
    let mut log_level = LogLevel::Off;
    let mut jobs = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-F" | "--fact-dir" => {
                fact_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--port" => {
                port = match args.next().map(|p| p.parse()) {
                    Some(Ok(p)) => p,
                    _ => usage(),
                }
            }
            "--mode" => {
                config = match args.next().as_deref() {
                    Some("sti") => InterpreterConfig::optimized(),
                    Some("dynamic") => InterpreterConfig::dynamic_adapter(),
                    Some("unopt") => InterpreterConfig::unoptimized(),
                    Some("legacy") => InterpreterConfig::legacy(),
                    _ => usage(),
                }
            }
            "-j" | "--jobs" => {
                jobs = match args.next().as_deref().map(str::parse::<usize>) {
                    Some(Ok(n)) if n >= 1 => Some(n),
                    Some(_) => {
                        eprintln!("stird: --jobs needs a positive integer");
                        std::process::exit(2)
                    }
                    None => usage(),
                }
            }
            "--profile-json" => {
                profile_json = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--log" => {
                log_level = match args.next().as_deref().map(str::parse) {
                    Some(Ok(level)) => level,
                    Some(Err(e)) => {
                        eprintln!("stird: {e}");
                        std::process::exit(2)
                    }
                    None => usage(),
                }
            }
            "-h" | "--help" => {
                println!("{HELP}");
                std::process::exit(0)
            }
            other if program.is_none() && !other.starts_with('-') => {
                program = Some(PathBuf::from(other))
            }
            _ => usage(),
        }
    }
    if profile_json.is_some() {
        config.profile = true;
    }
    // `--mode` rebuilds the config, so the worker count is applied last
    // to make flag order irrelevant.
    if let Some(n) = jobs {
        config.jobs = n;
    }
    Options {
        program: program.unwrap_or_else(|| usage()),
        fact_dir,
        port,
        config,
        profile_json,
        log_level,
    }
}

/// Serves one connection. A client vanishing mid-request (reset, broken
/// pipe, half-written line) is routine for a long-lived server: the
/// error is logged with the peer address and the connection dropped,
/// never propagated — the server keeps accepting.
fn handle_conn(
    stream: TcpStream,
    engine: &RwLock<ResidentEngine>,
    tel: Option<&Mutex<Telemetry>>,
    stop: &AtomicBool,
    addr: SocketAddr,
) {
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "<unknown>".to_owned(), |p| p.to_string());
    if let Err(e) = serve_conn(stream, engine, tel, stop, addr) {
        eprintln!("stird: dropping connection from {peer}: {e}");
    }
}

/// The request/response loop behind [`handle_conn`]. The response to
/// each request is written before the next is read, so a client can
/// pipeline `request → read until ok/err` cycles.
fn serve_conn(
    mut stream: TcpStream,
    engine: &RwLock<ResidentEngine>,
    tel: Option<&Mutex<Telemetry>>,
    stop: &AtomicBool,
    addr: SocketAddr,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let control = {
            let guard = tel.map(|m| m.lock().unwrap_or_else(PoisonError::into_inner));
            handle_line(engine, &line, guard.as_deref(), &mut stream)?
        };
        stream.flush()?;
        match control {
            Control::Continue => {}
            Control::Quit => return Ok(()),
            Control::Stop => {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop so the server can wind down.
                let _ = TcpStream::connect(addr);
                return Ok(());
            }
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let wants_json = opts.profile_json.is_some();
    let tel = Telemetry::new(wants_json, wants_json, opts.log_level);

    let source = match std::fs::read_to_string(&opts.program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stird: cannot read {}: {e}", opts.program.display());
            return ExitCode::FAILURE;
        }
    };
    let engine = match Engine::from_source_with(&source, Some(&tel)) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("stird: {e}");
            return ExitCode::FAILURE;
        }
    };
    let inputs = match &opts.fact_dir {
        Some(dir) => match io::read_facts_dir(engine.ram(), dir) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("stird: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => InputData::new(),
    };

    let started = std::time::Instant::now();
    let resident = match ResidentEngine::new(engine, opts.config, &inputs, Some(&tel)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stird: {e}");
            return ExitCode::FAILURE;
        }
    };

    let listener = match TcpListener::bind(("127.0.0.1", opts.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("stird: cannot bind 127.0.0.1:{}: {e}", opts.port);
            return ExitCode::FAILURE;
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("stird: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Tests (and scripts) wait for this exact line to learn the port.
    println!("stird: listening on {addr}");
    let _ = std::io::stdout().flush();

    let shared = RwLock::new(resident);
    let stop = AtomicBool::new(false);
    // The tracer is intentionally single-threaded (RefCell spans); a
    // mutex serializes the rare profiled requests without making the
    // unprofiled path pay for it.
    let tel_mutex = Mutex::new(tel);
    let tel_opt = wants_json.then_some(&tel_mutex);

    std::thread::scope(|s| {
        for conn in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let (shared, stop) = (&shared, &stop);
            s.spawn(move || handle_conn(stream, shared, tel_opt, stop, addr));
        }
    });

    let elapsed = started.elapsed();
    let resident = shared.into_inner().unwrap_or_else(|p| p.into_inner());
    let tel = tel_mutex
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(path) = &opts.profile_json {
        resident.sync_metrics(&tel);
        let json = profile_json(resident.ram(), resident.initial_profile(), &tel, elapsed);
        if let Err(e) = std::fs::write(path, json.render() + "\n") {
            eprintln!("stird: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    let stats = resident.stats();
    eprintln!(
        "stird: served {} requests ({} tuples in, {} rows out) in {elapsed:?}",
        stats.requests, stats.update_tuples, stats.query_rows
    );
    ExitCode::SUCCESS
}
