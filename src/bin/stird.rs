//! `stird` — the resident-engine TCP server.
//!
//! ```text
//! stird PROGRAM.dl [-F facts_dir] [options]
//!
//!   -F, --fact-dir DIR       read <rel>.facts for every .input relation
//!       --port PORT          TCP port to listen on (default 0 = pick a
//!                            free port; the chosen address is printed as
//!                            `stird: listening on ADDR`)
//!       --mode MODE          sti | dynamic | unopt | legacy  (default sti)
//!   -j, --jobs N             evaluate parallel scans with N workers
//!                            (default: $STIR_JOBS or 1)
//!       --provenance         annotate tuples with (rule, height) so
//!                            `.explain rel(...)` can serve proof trees
//!   -D, --data-dir DIR       persist inserts to a write-ahead log and
//!                            snapshots under DIR; on restart the engine
//!                            recovers every acknowledged insert
//!       --durability MODE    none | batch | always
//!                            (default: $STIR_DURABILITY or batch)
//!       --snapshot-interval N  auto-snapshot (truncating the WAL) every
//!                            N accepted insert batches
//!       --max-conns N        refuse connections beyond N concurrent
//!                            sessions with `err server busy retry-after
//!                            <ms>` (default 64)
//!       --max-pending-writes N  shed writes beyond N queued/executing
//!                            with `err overloaded retry-after <ms>`;
//!                            reads are never shed (default 64)
//!       --heal-budget N      consecutive failed storage heal probes
//!                            before the degraded engine gives up and
//!                            reports Failed on /readyz (default 8)
//!       --request-timeout S  per-request evaluation deadline in seconds
//!       --max-line-bytes N   reject request lines longer than N bytes
//!                            (default 1048576)
//!       --profile-json F     write the machine-readable profile JSON to F
//!                            at shutdown (covers the initial fixpoint and
//!                            the whole serving session)
//!       --admin-addr ADDR    serve GET /metrics (Prometheus text),
//!                            /healthz, and /readyz on ADDR; binds before
//!                            recovery so /readyz reports 503 until the
//!                            engine is up, and again while draining
//!       --slow-query-ms N    log any request slower than N ms (id,
//!                            client, latency, tuples, truncated line)
//!       --metrics-interval S periodically log the full metrics registry
//!                            as one JSON object every S seconds
//!       --log LEVEL          stderr verbosity: off|error|warn|info|debug
//!                            (serving logs default to info)
//!   -h, --help               print this help and exit
//! ```
//!
//! One resident engine serves every connection with the line protocol of
//! [`stir::serve`]: inserts take the engine's write lock (serialized),
//! queries take the read lock (concurrent). Shutdown is graceful on
//! `.stop`, SIGINT, or SIGTERM: in-flight connections finish their
//! current request, the WAL is flushed, and (when a data dir is
//! configured) a final snapshot is written. Telemetry lives behind a
//! `Mutex` because the tracer is single-threaded by design; it is only
//! locked when profiling was requested, so the serving fast path never
//! touches it. Serving observability — request latency histograms,
//! connection gauges, per-request ids — lives in the lock-free
//! [`stir::core::telemetry::ServeMetrics`] registry instead, shared by
//! every connection thread and the admin endpoint.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Duration;
use stir::admin::{self, AdminState};
use stir::core::fault::{self, FaultPoint};
use stir::core::io;
use stir::core::telemetry::{Logger, ServeMetrics};
use stir::core::{Durability, HealthState, PersistOptions};
use stir::serve::{
    handle_request, read_request, Control, Request, RequestCtx, SessionConfig, WriteAdmission,
};
use stir::{
    profile_json, Engine, InputData, InterpreterConfig, LogLevel, ResidentEngine, StorageBackend,
    Telemetry,
};

struct Options {
    program: PathBuf,
    fact_dir: Option<PathBuf>,
    port: u16,
    config: InterpreterConfig,
    profile_json: Option<PathBuf>,
    /// `--log`; `None` keeps the split default (serving logs at info,
    /// engine telemetry logs off).
    log_level: Option<LogLevel>,
    data_dir: Option<PathBuf>,
    persist: PersistOptions,
    max_conns: usize,
    max_pending_writes: usize,
    heal_budget: u32,
    session: SessionConfig,
    admin_addr: Option<String>,
    slow_query_ms: Option<u64>,
    metrics_interval: Option<Duration>,
}

const HELP: &str = "\
usage: stird PROGRAM.dl [-F facts_dir] [options]

  -F, --fact-dir DIR       read <rel>.facts for every .input relation
      --port PORT          TCP port (default 0 = pick a free port)
      --mode MODE          sti | dynamic | unopt | legacy  (default sti)
      --storage BACKEND    mem | disk  (default: $STIR_STORAGE or mem)
                           disk serves base relations off the mapped v2
                           snapshot through a budgeted page cache
                           ($STIR_PAGE_CACHE bytes) with in-memory deltas
  -j, --jobs N             evaluate parallel scans with N workers
                           (default: $STIR_JOBS or 1)
      --provenance         annotate tuples with (rule, height) so
                           `.explain rel(...)` can serve proof trees
  -D, --data-dir DIR       write-ahead log + snapshots under DIR;
                           restart recovers every acknowledged insert
      --durability MODE    none | batch | always
                           (default: $STIR_DURABILITY or batch)
      --snapshot-interval N  auto-snapshot every N insert batches
      --max-conns N        concurrent session limit (default 64)
      --max-pending-writes N  queued-write limit before shedding (default 64)
      --heal-budget N      failed heal probes before Failed (default 8)
      --request-timeout S  per-request evaluation deadline in seconds
      --max-line-bytes N   request line size limit (default 1048576)
      --profile-json F     write the profile JSON to F at shutdown
      --admin-addr ADDR    serve /metrics, /healthz, /readyz on ADDR
      --slow-query-ms N    log requests slower than N milliseconds
      --metrics-interval S log the metrics registry every S seconds
      --log LEVEL          stderr verbosity: off|error|warn|info|debug
                           (serving logs default to info)
  -h, --help               print this help and exit

protocol (one request per line): +rel(1,2). | ?rel(1,_,x) |
.explain rel(1,2) | .stats | .stats json | .snapshot | .compact |
.help | .quit (close connection) | .stop (shut down)";

fn usage() -> ! {
    eprintln!("{HELP}");
    std::process::exit(2)
}

fn fatal(msg: &str) -> ! {
    eprintln!("stird: {msg}");
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut program = None;
    let mut fact_dir = None;
    let mut port = 0u16;
    let mut config = InterpreterConfig::optimized();
    let mut profile_json = None;
    let mut log_level = None;
    let mut jobs = None;
    let mut admin_addr = None;
    let mut slow_query_ms = None;
    let mut metrics_interval = None;
    let mut provenance = false;
    let mut storage = None;
    let mut data_dir = None;
    let mut persist = PersistOptions {
        durability: Durability::default_from_env(),
        snapshot_interval: None,
    };
    let mut max_conns = 64usize;
    let mut max_pending_writes = 64usize;
    let mut heal_budget = stir::core::health::DEFAULT_HEAL_BUDGET;
    let mut session = SessionConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-F" | "--fact-dir" => {
                fact_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--port" => {
                port = match args.next().map(|p| p.parse()) {
                    Some(Ok(p)) => p,
                    _ => usage(),
                }
            }
            "--mode" => {
                config = match args.next().as_deref() {
                    Some("sti") => InterpreterConfig::optimized(),
                    Some("dynamic") => InterpreterConfig::dynamic_adapter(),
                    Some("unopt") => InterpreterConfig::unoptimized(),
                    Some("legacy") => InterpreterConfig::legacy(),
                    _ => usage(),
                }
            }
            "-j" | "--jobs" => {
                jobs = match args.next().as_deref().map(str::parse::<usize>) {
                    Some(Ok(n)) if n >= 1 => Some(n),
                    Some(_) => fatal("--jobs needs a positive integer"),
                    None => usage(),
                }
            }
            "--provenance" => provenance = true,
            "--storage" => {
                storage = match args.next().as_deref().map(StorageBackend::parse) {
                    Some(Some(s)) => Some(s),
                    Some(None) => fatal("--storage needs `mem` or `disk`"),
                    None => usage(),
                }
            }
            "-D" | "--data-dir" => {
                data_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--durability" => match args.next().as_deref().map(Durability::parse) {
                Some(Ok(d)) => persist.durability = d,
                Some(Err(e)) => fatal(&e),
                None => usage(),
            },
            "--snapshot-interval" => {
                persist.snapshot_interval = match args.next().as_deref().map(str::parse::<u64>) {
                    Some(Ok(n)) if n >= 1 => Some(n),
                    _ => fatal("--snapshot-interval needs a positive integer"),
                }
            }
            "--max-conns" => {
                max_conns = match args.next().as_deref().map(str::parse::<usize>) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => fatal("--max-conns needs a positive integer"),
                }
            }
            "--max-pending-writes" => {
                max_pending_writes = match args.next().as_deref().map(str::parse::<usize>) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => fatal("--max-pending-writes needs a positive integer"),
                }
            }
            "--heal-budget" => {
                heal_budget = match args.next().as_deref().map(str::parse::<u32>) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => fatal("--heal-budget needs a positive integer"),
                }
            }
            "--request-timeout" => {
                session.request_timeout = match args.next().as_deref().map(str::parse::<f64>) {
                    Some(Ok(s)) if s > 0.0 => Some(Duration::from_secs_f64(s)),
                    _ => fatal("--request-timeout needs a positive number of seconds"),
                }
            }
            "--max-line-bytes" => {
                session.max_line_bytes = match args.next().as_deref().map(str::parse::<usize>) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => fatal("--max-line-bytes needs a positive integer"),
                }
            }
            "--profile-json" => {
                profile_json = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--admin-addr" => {
                admin_addr = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--slow-query-ms" => {
                slow_query_ms = match args.next().as_deref().map(str::parse::<u64>) {
                    Some(Ok(n)) => Some(n),
                    _ => fatal("--slow-query-ms needs a non-negative integer"),
                }
            }
            "--metrics-interval" => {
                metrics_interval = match args.next().as_deref().map(str::parse::<f64>) {
                    Some(Ok(s)) if s > 0.0 => Some(Duration::from_secs_f64(s)),
                    _ => fatal("--metrics-interval needs a positive number of seconds"),
                }
            }
            "--log" => {
                log_level = match args.next().as_deref().map(str::parse::<LogLevel>) {
                    Some(Ok(level)) => Some(level),
                    Some(Err(e)) => fatal(&e.to_string()),
                    None => usage(),
                }
            }
            "-h" | "--help" => {
                println!("{HELP}");
                std::process::exit(0)
            }
            other if program.is_none() && !other.starts_with('-') => {
                program = Some(PathBuf::from(other))
            }
            _ => usage(),
        }
    }
    if profile_json.is_some() {
        config.profile = true;
    }
    // `--mode` rebuilds the config, so the worker count and provenance
    // switch are applied last to make flag order irrelevant.
    if let Some(n) = jobs {
        config.jobs = n;
    }
    if let Some(s) = storage {
        config.storage = s;
    }
    config.provenance = provenance;
    Options {
        program: program.unwrap_or_else(|| usage()),
        fact_dir,
        port,
        config,
        profile_json,
        log_level,
        data_dir,
        persist,
        max_conns,
        max_pending_writes,
        heal_budget,
        session,
        admin_addr,
        slow_query_ms,
        metrics_interval,
    }
}

/// Minimal libc-free signal handling: SIGINT/SIGTERM raise a flag the
/// accept loop and idle connections poll, so `kill` (or Ctrl-C) drains
/// in-flight requests, flushes the WAL, and snapshots instead of
/// dropping acknowledged-but-unsnapshotted state on the floor.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            let handler = on_signal as extern "C" fn(i32) as *const () as usize;
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Retry hint attached to the `err server busy` connection-admission
/// reply; connection churn settles fast, so the hint is short.
const BUSY_RETRY_MS: u64 = 100;

/// Probes the data directory for writability with a real
/// create/write/fsync/remove round-trip before the listener binds, so a
/// read-only volume or a typoed path fails loudly at startup instead of
/// after the first acknowledged write. Deliberately not routed through
/// the fault harness: chaos tests arm `STIR_FAULT` in the environment
/// before spawning the server and still need it to boot.
fn probe_data_dir(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(stir::core::resident::PROBE_FILE);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(b"stir-probe")?;
    f.sync_data()?;
    drop(f);
    let _ = std::fs::remove_file(&path);
    Ok(())
}

/// A [`TcpStream`] writer that runs the `conn_write` fault hook before
/// every write, so the fault harness can simulate clients whose socket
/// dies mid-response.
struct FaultStream(TcpStream);

impl Write for FaultStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        fault::check(FaultPoint::ConnWrite)?;
        self.0.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

/// Serves one connection. A client vanishing mid-request (reset, broken
/// pipe, half-written line) is routine for a long-lived server: the
/// error is logged with the peer address and the connection dropped,
/// never propagated — the server keeps accepting.
#[allow(clippy::too_many_arguments)]
fn handle_conn(
    stream: TcpStream,
    engine: &RwLock<ResidentEngine>,
    tel: Option<&Mutex<Telemetry>>,
    stop: &AtomicBool,
    cfg: &SessionConfig,
    metrics: &Arc<ServeMetrics>,
    admission: &Arc<WriteAdmission>,
    slow_ms: Option<u64>,
    logger: Logger,
    admin: &AdminState,
) {
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "<unknown>".to_owned(), |p| p.to_string());
    let live = metrics.conn_opened();
    logger.log(
        LogLevel::Debug,
        &format!("connection from {peer} accepted (live={live})"),
    );
    let ctx = RequestCtx {
        metrics: Arc::clone(metrics),
        admission: Some(Arc::clone(admission)),
        client: peer.clone(),
        slow_ms,
        logger,
    };
    if let Err(e) = serve_conn(stream, engine, tel, stop, cfg, &ctx, admin) {
        logger.log(
            LogLevel::Warn,
            &format!("dropping connection from {peer}: {e}"),
        );
    } else {
        logger.log(LogLevel::Debug, &format!("connection from {peer} closed"));
    }
    metrics.conn_closed();
}

/// The request/response loop behind [`handle_conn`]. The response to
/// each request is written before the next is read, so a client can
/// pipeline `request → read until ok/err` cycles. The short read
/// timeout makes an idle connection wake up a few times a second to
/// poll the stop flag; [`read_request`] treats those timeouts as
/// retries, so they are invisible to a live client.
#[allow(clippy::too_many_arguments)]
fn serve_conn(
    stream: TcpStream,
    engine: &RwLock<ResidentEngine>,
    tel: Option<&Mutex<Telemetry>>,
    stop: &AtomicBool,
    cfg: &SessionConfig,
    ctx: &RequestCtx,
    admin: &AdminState,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = FaultStream(stream);
    loop {
        let control = match read_request(&mut reader, cfg.max_line_bytes, Some(stop))? {
            Request::Eof | Request::Shutdown => return Ok(()),
            Request::TooLong => {
                writeln!(
                    writer,
                    "err request line exceeds {} bytes",
                    cfg.max_line_bytes
                )?;
                Control::Continue
            }
            Request::BadUtf8 => {
                writeln!(writer, "err request is not valid UTF-8")?;
                Control::Continue
            }
            Request::Line(line) => {
                let guard = tel.map(|m| m.lock().unwrap_or_else(PoisonError::into_inner));
                handle_request(engine, &line, cfg, ctx, guard.as_deref(), &mut writer)?
            }
        };
        writer.flush()?;
        match control {
            Control::Continue => {}
            Control::Quit => return Ok(()),
            Control::Stop => {
                // Flip readiness before raising the stop flag, so a
                // probe racing the shutdown never sees a ready server
                // that is about to drain.
                admin.start_drain();
                stop.store(true, Ordering::SeqCst);
                return Ok(());
            }
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let wants_json = opts.profile_json.is_some();
    let tel = Telemetry::new(
        wants_json,
        wants_json,
        opts.log_level.unwrap_or(LogLevel::Off),
    );
    // Serving logs (recovery, lifecycle, slow requests, admin) default
    // to info so operational lines appear without any flag; `--log`
    // overrides both this stream and the engine telemetry one.
    let slog = Logger::serving("stird", opts.log_level.unwrap_or(LogLevel::Info));

    // Refuse to start on unwritable storage: an engine that boots, binds,
    // and then degrades on its very first write helps nobody.
    if let Some(dir) = &opts.data_dir {
        if let Err(e) = probe_data_dir(dir) {
            eprintln!("stird: data dir {} is not writable: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    // Bind the admin endpoint before the (potentially long) recovery,
    // so orchestrators can probe `/readyz` from the first millisecond —
    // it answers 503 until the engine is published below.
    let admin_state = Arc::new(AdminState::new());
    let mut admin_thread = None;
    let mut admin_addr = None;
    if let Some(addr) = &opts.admin_addr {
        match TcpListener::bind(addr.as_str()) {
            Ok(l) => {
                admin_addr = l.local_addr().ok();
                let state = Arc::clone(&admin_state);
                admin_thread = Some(std::thread::spawn(move || admin::serve(l, state, slog)));
            }
            Err(e) => {
                eprintln!("stird: cannot bind admin address {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let source = match std::fs::read_to_string(&opts.program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stird: cannot read {}: {e}", opts.program.display());
            return ExitCode::FAILURE;
        }
    };
    let engine = match Engine::from_source_with(&source, Some(&tel)) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("stird: {e}");
            return ExitCode::FAILURE;
        }
    };
    let inputs = match &opts.fact_dir {
        Some(dir) => match io::read_facts_dir(engine.ram(), dir) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("stird: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => InputData::new(),
    };

    let started = std::time::Instant::now();
    let resident = match &opts.data_dir {
        Some(dir) => {
            match ResidentEngine::open(engine, opts.config, &inputs, dir, opts.persist, Some(&tel))
            {
                Ok((r, recovery)) => {
                    slog.log(
                        LogLevel::Info,
                        &format!(
                            "recovery snapshot={} replayed={} batches ({} tuples) \
                             skipped={} torn_bytes={} replay_ms={}",
                            recovery.snapshot_loaded,
                            recovery.replayed_batches,
                            recovery.replayed_tuples,
                            recovery.skipped_batches,
                            recovery.torn_bytes,
                            recovery.replay_ms,
                        ),
                    );
                    r
                }
                Err(e) => {
                    eprintln!("stird: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => match ResidentEngine::new(engine, opts.config, &inputs, Some(&tel)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("stird: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    // Histograms record only when something reads them; a bare run
    // keeps the warm path free of clock reads and atomic bumps.
    let observing = opts.admin_addr.is_some()
        || opts.metrics_interval.is_some()
        || opts.slow_query_ms.is_some();
    let metrics = Arc::new(if observing {
        ServeMetrics::on()
    } else {
        ServeMetrics::off()
    });
    let mut resident = resident;
    resident.attach_serve_metrics(Arc::clone(&metrics));
    let health = resident.health();
    health.set_budget(opts.heal_budget);
    let durable = resident.is_durable();
    if durable {
        // Under `--durability always`, coalesce concurrent commits into
        // one fsync; `enable_group_commit` is a no-op for other levels.
        resident.enable_group_commit();
    }
    let admission = Arc::new(WriteAdmission::new(opts.max_pending_writes));

    let listener = match TcpListener::bind(("127.0.0.1", opts.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("stird: cannot bind 127.0.0.1:{}: {e}", opts.port);
            return ExitCode::FAILURE;
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("stird: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The accept loop must wake up to notice `.stop` and signals, so it
    // polls instead of blocking in `accept`.
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("stird: {e}");
        return ExitCode::FAILURE;
    }
    signals::install();

    let shared = Arc::new(RwLock::new(resident));
    // Publishing the engine flips `/readyz` to 200: recovery is done and
    // the accept loop is about to start.
    admin_state.publish(Arc::clone(&shared));
    // Tests (and scripts) wait for this exact line to learn the port; it
    // must stay the first stdout line.
    println!("stird: listening on {addr}");
    if let Some(a) = admin_addr {
        println!("stird: admin listening on {a}");
    }
    let _ = std::io::stdout().flush();

    // `--metrics-interval` dumps the whole registry to the serving log
    // periodically — the poor operator's scrape when nothing can reach
    // the admin port.
    let ticker = opts.metrics_interval.map(|interval| {
        let engine = Arc::clone(&shared);
        std::thread::spawn(move || {
            let mut waited = Duration::ZERO;
            while !signals::STOP.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(100));
                waited += Duration::from_millis(100);
                if waited >= interval {
                    waited = Duration::ZERO;
                    let engine = engine.read().unwrap_or_else(PoisonError::into_inner);
                    slog.log(
                        LogLevel::Info,
                        &format!("metrics {}", admin::registry_json(&engine).render()),
                    );
                }
            }
        })
    });

    // Self-heal loop: when a storage failure put the engine in degraded
    // read-only mode, probe on the health monitor's backoff schedule and
    // transition back to healthy once a probe round-trips. Every state
    // transition is logged; a healthy engine costs one atomic load per
    // tick.
    let healer = durable.then(|| {
        let engine = Arc::clone(&shared);
        let health = Arc::clone(&health);
        std::thread::spawn(move || {
            let mut last = health.state_code();
            while !signals::STOP.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(20));
                if health.due_for_probe() {
                    let mut eng = engine.write().unwrap_or_else(PoisonError::into_inner);
                    eng.try_heal();
                }
                let code = health.state_code();
                if code != last {
                    last = code;
                    match health.snapshot() {
                        HealthState::Healthy => {
                            slog.log(LogLevel::Warn, "storage healed; resuming writes");
                        }
                        HealthState::Degraded { cause, .. } => slog.log(
                            LogLevel::Warn,
                            &format!("storage degraded, serving read-only: {cause}"),
                        ),
                        HealthState::Failed { cause } => slog.log(
                            LogLevel::Error,
                            &format!("storage heal budget exhausted, writes disabled: {cause}"),
                        ),
                    }
                }
            }
        })
    });

    let stop = &signals::STOP;
    let active = AtomicUsize::new(0);
    // The tracer is intentionally single-threaded (RefCell spans); a
    // mutex serializes the rare profiled requests without making the
    // unprofiled path pay for it.
    let tel_mutex = Mutex::new(tel);
    let tel_opt = wants_json.then_some(&tel_mutex);

    std::thread::scope(|s| {
        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                    continue;
                }
                Err(e) => {
                    eprintln!("stird: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(25));
                    continue;
                }
            };
            // Admission control: a clean, bounded reply beats an
            // unbounded thread pile-up under connection floods.
            if active.fetch_add(1, Ordering::SeqCst) >= opts.max_conns {
                active.fetch_sub(1, Ordering::SeqCst);
                let mut stream = stream;
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = writeln!(stream, "err server busy retry-after {BUSY_RETRY_MS}");
                continue;
            }
            let (engine, active, session) = (&*shared, &active, &opts.session);
            let (metrics, admin) = (&metrics, &*admin_state);
            let admission = &admission;
            s.spawn(move || {
                handle_conn(
                    stream,
                    engine,
                    tel_opt,
                    stop,
                    session,
                    metrics,
                    admission,
                    opts.slow_query_ms,
                    slog,
                    admin,
                );
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        // The scope joins every connection thread here: in-flight
        // requests drain before shutdown work below starts.
    });
    // Signal-initiated shutdowns reach here without `.stop` having
    // flipped readiness; make the drain visible to probes either way.
    admin_state.start_drain();

    let elapsed = started.elapsed();
    // The admin thread still holds a clone of `shared`, so the engine
    // comes back through a write lock rather than `into_inner`.
    let mut resident = shared.write().unwrap_or_else(PoisonError::into_inner);
    let tel = tel_mutex
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    if resident.is_durable() {
        if let Err(e) = resident.flush_wal() {
            slog.log(
                LogLevel::Error,
                &format!("WAL flush at shutdown failed: {e}"),
            );
        }
        match resident.snapshot(Some(&tel)) {
            Ok(s) => slog.log(
                LogLevel::Info,
                &format!("shutdown snapshot: {} tuples, {} bytes", s.tuples, s.bytes),
            ),
            Err(e) => slog.log(LogLevel::Error, &format!("shutdown snapshot failed: {e}")),
        }
    }
    if let Some(path) = &opts.profile_json {
        resident.sync_metrics(&tel);
        let json = profile_json(resident.ram(), resident.initial_profile(), &tel, elapsed);
        if let Err(e) = std::fs::write(path, json.render() + "\n") {
            eprintln!("stird: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    let stats = resident.stats();
    slog.log(
        LogLevel::Info,
        &format!(
            "served {} requests ({} tuples in, {} rows out) in {elapsed:?}",
            stats.requests, stats.update_tuples, stats.query_rows
        ),
    );
    drop(resident);
    if let Some(h) = admin_thread {
        let _ = h.join();
    }
    if let Some(h) = ticker {
        let _ = h.join();
    }
    if let Some(h) = healer {
        let _ = h.join();
    }
    ExitCode::SUCCESS
}
