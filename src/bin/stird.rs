//! `stird` — the resident-engine TCP server.
//!
//! ```text
//! stird PROGRAM.dl [-F facts_dir] [options]
//!
//!   -F, --fact-dir DIR       read <rel>.facts for every .input relation
//!       --port PORT          TCP port to listen on (default 0 = pick a
//!                            free port; the chosen address is printed as
//!                            `stird: listening on ADDR`)
//!       --mode MODE          sti | dynamic | unopt | legacy  (default sti)
//!   -j, --jobs N             evaluate parallel scans with N workers
//!                            (default: $STIR_JOBS or 1)
//!       --provenance         annotate tuples with (rule, height) so
//!                            `.explain rel(...)` can serve proof trees
//!   -D, --data-dir DIR       persist inserts to a write-ahead log and
//!                            snapshots under DIR; on restart the engine
//!                            recovers every acknowledged insert
//!       --durability MODE    none | batch | always
//!                            (default: $STIR_DURABILITY or batch)
//!       --snapshot-interval N  auto-snapshot (truncating the WAL) every
//!                            N accepted insert batches
//!       --max-conns N        refuse connections beyond N concurrent
//!                            sessions with `err server busy` (default 64)
//!       --request-timeout S  per-request evaluation deadline in seconds
//!       --max-line-bytes N   reject request lines longer than N bytes
//!                            (default 1048576)
//!       --profile-json F     write the machine-readable profile JSON to F
//!                            at shutdown (covers the initial fixpoint and
//!                            the whole serving session)
//!       --log LEVEL          stderr verbosity: off|error|warn|info|debug
//!   -h, --help               print this help and exit
//! ```
//!
//! One resident engine serves every connection with the line protocol of
//! [`stir::serve`]: inserts take the engine's write lock (serialized),
//! queries take the read lock (concurrent). Shutdown is graceful on
//! `.stop`, SIGINT, or SIGTERM: in-flight connections finish their
//! current request, the WAL is flushed, and (when a data dir is
//! configured) a final snapshot is written. Telemetry lives behind a
//! `Mutex` because the tracer is single-threaded by design; it is only
//! locked when profiling was requested, so the serving fast path never
//! touches it.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};
use std::time::Duration;
use stir::core::fault::{self, FaultPoint};
use stir::core::io;
use stir::core::{Durability, PersistOptions};
use stir::serve::{handle_line_cfg, read_request, Control, Request, SessionConfig};
use stir::{
    profile_json, Engine, InputData, InterpreterConfig, LogLevel, ResidentEngine, Telemetry,
};

struct Options {
    program: PathBuf,
    fact_dir: Option<PathBuf>,
    port: u16,
    config: InterpreterConfig,
    profile_json: Option<PathBuf>,
    log_level: LogLevel,
    data_dir: Option<PathBuf>,
    persist: PersistOptions,
    max_conns: usize,
    session: SessionConfig,
}

const HELP: &str = "\
usage: stird PROGRAM.dl [-F facts_dir] [options]

  -F, --fact-dir DIR       read <rel>.facts for every .input relation
      --port PORT          TCP port (default 0 = pick a free port)
      --mode MODE          sti | dynamic | unopt | legacy  (default sti)
  -j, --jobs N             evaluate parallel scans with N workers
                           (default: $STIR_JOBS or 1)
      --provenance         annotate tuples with (rule, height) so
                           `.explain rel(...)` can serve proof trees
  -D, --data-dir DIR       write-ahead log + snapshots under DIR;
                           restart recovers every acknowledged insert
      --durability MODE    none | batch | always
                           (default: $STIR_DURABILITY or batch)
      --snapshot-interval N  auto-snapshot every N insert batches
      --max-conns N        concurrent session limit (default 64)
      --request-timeout S  per-request evaluation deadline in seconds
      --max-line-bytes N   request line size limit (default 1048576)
      --profile-json F     write the profile JSON to F at shutdown
      --log LEVEL          stderr verbosity: off|error|warn|info|debug
  -h, --help               print this help and exit

protocol (one request per line): +rel(1,2). | ?rel(1,_,x) |
.explain rel(1,2) | .stats | .snapshot | .help | .quit (close
connection) | .stop (shut down)";

fn usage() -> ! {
    eprintln!("{HELP}");
    std::process::exit(2)
}

fn fatal(msg: &str) -> ! {
    eprintln!("stird: {msg}");
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut program = None;
    let mut fact_dir = None;
    let mut port = 0u16;
    let mut config = InterpreterConfig::optimized();
    let mut profile_json = None;
    let mut log_level = LogLevel::Off;
    let mut jobs = None;
    let mut provenance = false;
    let mut data_dir = None;
    let mut persist = PersistOptions {
        durability: Durability::default_from_env(),
        snapshot_interval: None,
    };
    let mut max_conns = 64usize;
    let mut session = SessionConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-F" | "--fact-dir" => {
                fact_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--port" => {
                port = match args.next().map(|p| p.parse()) {
                    Some(Ok(p)) => p,
                    _ => usage(),
                }
            }
            "--mode" => {
                config = match args.next().as_deref() {
                    Some("sti") => InterpreterConfig::optimized(),
                    Some("dynamic") => InterpreterConfig::dynamic_adapter(),
                    Some("unopt") => InterpreterConfig::unoptimized(),
                    Some("legacy") => InterpreterConfig::legacy(),
                    _ => usage(),
                }
            }
            "-j" | "--jobs" => {
                jobs = match args.next().as_deref().map(str::parse::<usize>) {
                    Some(Ok(n)) if n >= 1 => Some(n),
                    Some(_) => fatal("--jobs needs a positive integer"),
                    None => usage(),
                }
            }
            "--provenance" => provenance = true,
            "-D" | "--data-dir" => {
                data_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--durability" => match args.next().as_deref().map(Durability::parse) {
                Some(Ok(d)) => persist.durability = d,
                Some(Err(e)) => fatal(&e),
                None => usage(),
            },
            "--snapshot-interval" => {
                persist.snapshot_interval = match args.next().as_deref().map(str::parse::<u64>) {
                    Some(Ok(n)) if n >= 1 => Some(n),
                    _ => fatal("--snapshot-interval needs a positive integer"),
                }
            }
            "--max-conns" => {
                max_conns = match args.next().as_deref().map(str::parse::<usize>) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => fatal("--max-conns needs a positive integer"),
                }
            }
            "--request-timeout" => {
                session.request_timeout = match args.next().as_deref().map(str::parse::<f64>) {
                    Some(Ok(s)) if s > 0.0 => Some(Duration::from_secs_f64(s)),
                    _ => fatal("--request-timeout needs a positive number of seconds"),
                }
            }
            "--max-line-bytes" => {
                session.max_line_bytes = match args.next().as_deref().map(str::parse::<usize>) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => fatal("--max-line-bytes needs a positive integer"),
                }
            }
            "--profile-json" => {
                profile_json = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--log" => {
                log_level = match args.next().as_deref().map(str::parse) {
                    Some(Ok(level)) => level,
                    Some(Err(e)) => fatal(&e.to_string()),
                    None => usage(),
                }
            }
            "-h" | "--help" => {
                println!("{HELP}");
                std::process::exit(0)
            }
            other if program.is_none() && !other.starts_with('-') => {
                program = Some(PathBuf::from(other))
            }
            _ => usage(),
        }
    }
    if profile_json.is_some() {
        config.profile = true;
    }
    // `--mode` rebuilds the config, so the worker count and provenance
    // switch are applied last to make flag order irrelevant.
    if let Some(n) = jobs {
        config.jobs = n;
    }
    config.provenance = provenance;
    Options {
        program: program.unwrap_or_else(|| usage()),
        fact_dir,
        port,
        config,
        profile_json,
        log_level,
        data_dir,
        persist,
        max_conns,
        session,
    }
}

/// Minimal libc-free signal handling: SIGINT/SIGTERM raise a flag the
/// accept loop and idle connections poll, so `kill` (or Ctrl-C) drains
/// in-flight requests, flushes the WAL, and snapshots instead of
/// dropping acknowledged-but-unsnapshotted state on the floor.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            let handler = on_signal as extern "C" fn(i32) as *const () as usize;
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// A [`TcpStream`] writer that runs the `conn_write` fault hook before
/// every write, so the fault harness can simulate clients whose socket
/// dies mid-response.
struct FaultStream(TcpStream);

impl Write for FaultStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        fault::check(FaultPoint::ConnWrite)?;
        self.0.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

/// Serves one connection. A client vanishing mid-request (reset, broken
/// pipe, half-written line) is routine for a long-lived server: the
/// error is logged with the peer address and the connection dropped,
/// never propagated — the server keeps accepting.
fn handle_conn(
    stream: TcpStream,
    engine: &RwLock<ResidentEngine>,
    tel: Option<&Mutex<Telemetry>>,
    stop: &AtomicBool,
    cfg: &SessionConfig,
) {
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "<unknown>".to_owned(), |p| p.to_string());
    if let Err(e) = serve_conn(stream, engine, tel, stop, cfg) {
        eprintln!("stird: dropping connection from {peer}: {e}");
    }
}

/// The request/response loop behind [`handle_conn`]. The response to
/// each request is written before the next is read, so a client can
/// pipeline `request → read until ok/err` cycles. The short read
/// timeout makes an idle connection wake up a few times a second to
/// poll the stop flag; [`read_request`] treats those timeouts as
/// retries, so they are invisible to a live client.
fn serve_conn(
    stream: TcpStream,
    engine: &RwLock<ResidentEngine>,
    tel: Option<&Mutex<Telemetry>>,
    stop: &AtomicBool,
    cfg: &SessionConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = FaultStream(stream);
    loop {
        let control = match read_request(&mut reader, cfg.max_line_bytes, Some(stop))? {
            Request::Eof | Request::Shutdown => return Ok(()),
            Request::TooLong => {
                writeln!(
                    writer,
                    "err request line exceeds {} bytes",
                    cfg.max_line_bytes
                )?;
                Control::Continue
            }
            Request::BadUtf8 => {
                writeln!(writer, "err request is not valid UTF-8")?;
                Control::Continue
            }
            Request::Line(line) => {
                let guard = tel.map(|m| m.lock().unwrap_or_else(PoisonError::into_inner));
                handle_line_cfg(engine, &line, cfg, guard.as_deref(), &mut writer)?
            }
        };
        writer.flush()?;
        match control {
            Control::Continue => {}
            Control::Quit => return Ok(()),
            Control::Stop => {
                stop.store(true, Ordering::SeqCst);
                return Ok(());
            }
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let wants_json = opts.profile_json.is_some();
    let tel = Telemetry::new(wants_json, wants_json, opts.log_level);

    let source = match std::fs::read_to_string(&opts.program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stird: cannot read {}: {e}", opts.program.display());
            return ExitCode::FAILURE;
        }
    };
    let engine = match Engine::from_source_with(&source, Some(&tel)) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("stird: {e}");
            return ExitCode::FAILURE;
        }
    };
    let inputs = match &opts.fact_dir {
        Some(dir) => match io::read_facts_dir(engine.ram(), dir) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("stird: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => InputData::new(),
    };

    let started = std::time::Instant::now();
    let resident = match &opts.data_dir {
        Some(dir) => {
            match ResidentEngine::open(engine, opts.config, &inputs, dir, opts.persist, Some(&tel))
            {
                Ok((r, recovery)) => {
                    eprintln!(
                        "stird: recovery snapshot={} replayed={} batches ({} tuples) \
                         skipped={} torn_bytes={}",
                        recovery.snapshot_loaded,
                        recovery.replayed_batches,
                        recovery.replayed_tuples,
                        recovery.skipped_batches,
                        recovery.torn_bytes,
                    );
                    r
                }
                Err(e) => {
                    eprintln!("stird: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => match ResidentEngine::new(engine, opts.config, &inputs, Some(&tel)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("stird: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let listener = match TcpListener::bind(("127.0.0.1", opts.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("stird: cannot bind 127.0.0.1:{}: {e}", opts.port);
            return ExitCode::FAILURE;
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("stird: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The accept loop must wake up to notice `.stop` and signals, so it
    // polls instead of blocking in `accept`.
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("stird: {e}");
        return ExitCode::FAILURE;
    }
    signals::install();
    // Tests (and scripts) wait for this exact line to learn the port.
    println!("stird: listening on {addr}");
    let _ = std::io::stdout().flush();

    let shared = RwLock::new(resident);
    let stop = &signals::STOP;
    let active = AtomicUsize::new(0);
    // The tracer is intentionally single-threaded (RefCell spans); a
    // mutex serializes the rare profiled requests without making the
    // unprofiled path pay for it.
    let tel_mutex = Mutex::new(tel);
    let tel_opt = wants_json.then_some(&tel_mutex);

    std::thread::scope(|s| {
        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                    continue;
                }
                Err(e) => {
                    eprintln!("stird: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(25));
                    continue;
                }
            };
            // Admission control: a clean, bounded reply beats an
            // unbounded thread pile-up under connection floods.
            if active.fetch_add(1, Ordering::SeqCst) >= opts.max_conns {
                active.fetch_sub(1, Ordering::SeqCst);
                let mut stream = stream;
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = writeln!(stream, "err server busy");
                continue;
            }
            let (shared, active, session) = (&shared, &active, &opts.session);
            s.spawn(move || {
                handle_conn(stream, shared, tel_opt, stop, session);
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        // The scope joins every connection thread here: in-flight
        // requests drain before shutdown work below starts.
    });

    let elapsed = started.elapsed();
    let mut resident = shared.into_inner().unwrap_or_else(|p| p.into_inner());
    let tel = tel_mutex
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    if resident.is_durable() {
        if let Err(e) = resident.flush_wal() {
            eprintln!("stird: WAL flush at shutdown failed: {e}");
        }
        match resident.snapshot(Some(&tel)) {
            Ok(s) => eprintln!(
                "stird: shutdown snapshot: {} tuples, {} bytes",
                s.tuples, s.bytes
            ),
            Err(e) => eprintln!("stird: shutdown snapshot failed: {e}"),
        }
    }
    if let Some(path) = &opts.profile_json {
        resident.sync_metrics(&tel);
        let json = profile_json(resident.ram(), resident.initial_profile(), &tel, elapsed);
        if let Err(e) = std::fs::write(path, json.render() + "\n") {
            eprintln!("stird: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    let stats = resident.stats();
    eprintln!(
        "stird: served {} requests ({} tuples in, {} rows out) in {elapsed:?}",
        stats.requests, stats.update_tuples, stats.query_rows
    );
    ExitCode::SUCCESS
}
