//! The paper's running example (Fig. 2): a security analysis that finds
//! code blocks that are vulnerable and reachable from unprotected code.
//!
//! ```text
//! cargo run --release --example security_analysis
//! ```

use stir::{Engine, InterpreterConfig, Value};

fn main() -> Result<(), stir::EngineError> {
    // Fig. 2 of the paper, verbatim modulo surface syntax: a block is
    // unsafe if reachable from an unsafe block without protection; a
    // violation is a vulnerable unsafe block.
    let engine = Engine::from_source(
        r#"
        .decl block(b: symbol)
        .decl edge(x: symbol, y: symbol)
        .decl protect(b: symbol)
        .decl vulnerable(b: symbol)
        .decl unsafe_blk(b: symbol)
        .decl violation(b: symbol)
        .output unsafe_blk
        .output violation

        block("entry"). block("while"). block("parse").
        block("auth").  block("exec").  block("log").

        edge("entry", "while").
        edge("while", "parse").
        edge("parse", "auth").
        edge("auth", "exec").
        edge("while", "exec").
        edge("exec", "log").

        protect("auth").
        vulnerable("exec"). vulnerable("parse").

        unsafe_blk("while").

        /* Rule 1 */
        unsafe_blk(y) :- unsafe_blk(x), edge(x, y), !protect(y).

        /* Rule 2 */
        violation(x) :- vulnerable(x), unsafe_blk(x).
        "#,
    )?;

    let result = engine.run(InterpreterConfig::optimized(), &Default::default())?;

    println!("unsafe blocks:");
    for row in &result.outputs["unsafe_blk"] {
        println!("  {}", row[0]);
    }
    println!("violations:");
    for row in &result.outputs["violation"] {
        println!("  {}", row[0]);
    }

    // "exec" is reachable around the protected "auth" via while → exec.
    let violations: Vec<&Value> = result.outputs["violation"].iter().map(|r| &r[0]).collect();
    assert!(violations.contains(&&Value::Symbol("exec".into())));
    assert!(violations.contains(&&Value::Symbol("parse".into())));
    Ok(())
}
