//! A VPC-style network-reachability audit on a generated cloud topology,
//! with per-rule profiling — the workload family of the paper's first
//! benchmark suite.
//!
//! ```text
//! cargo run --release --example network_reachability
//! ```

use stir::workloads::spec::Scale;
use stir::{Engine, InterpreterConfig};

fn main() -> Result<(), stir::EngineError> {
    let workload = stir::workloads::vpc::generate("demo", Scale::Small, 42);
    println!("workload: {}", workload.name);
    for (rel, rows) in &workload.inputs {
        println!("  input {rel:<16} {:>6} tuples", rows.len());
    }

    let engine = Engine::from_source(&workload.program)?;
    let result = engine.run(
        InterpreterConfig::optimized().with_profile(),
        &workload.inputs,
    )?;

    println!("\nresults:");
    for rel in ["conn", "exposed", "violation"] {
        println!("  {rel:<12} {:>8} tuples", result.outputs[rel].len());
    }

    // The per-rule profile (paper §5.2's instrument).
    let profile = result.profile.expect("profiling enabled");
    println!(
        "\ninterpreter dispatches: {}, scan iterations: {}",
        profile.dispatches, profile.iterations
    );
    let mut rules = profile.by_rule();
    rules.sort_by_key(|r| std::cmp::Reverse(r.time));
    println!("hottest rules:");
    for rule in rules.iter().take(5) {
        println!(
            "  {:>9.3?}  {:>9} tuples  {}",
            rule.time,
            rule.tuples,
            rule.label.chars().take(72).collect::<String>()
        );
    }
    Ok(())
}
