//! A DOOP-style points-to analysis on a generated object-oriented
//! program, comparing the interpreter against the synthesizer — the
//! "first run" trade-off behind the paper's Table 1.
//!
//! ```text
//! cargo run --release --example points_to
//! ```

use std::time::Instant;
use stir::workloads::spec::Scale;
use stir::{Engine, InterpreterConfig, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = stir::workloads::doop::generate("demo", Scale::Small, 7);
    println!("workload: {}", workload.name);

    let engine = Engine::from_source(&workload.program)?;

    // Interpreter: no compilation, starts immediately.
    let started = Instant::now();
    let interp = engine.run(InterpreterConfig::optimized(), &workload.inputs)?;
    let interp_time = started.elapsed();
    println!(
        "interpreter: {:?} — var_points_to = {}, call_graph = {}",
        interp_time,
        interp.outputs["var_points_to"].len(),
        interp.outputs["call_graph"].len()
    );

    // Synthesizer: generate Rust, compile with rustc -O, then run.
    let dir = std::env::temp_dir().join("stir-points-to-example");
    let source = stir::synth::generate(engine.ram());
    let program = stir::synth::compile(&source, &dir.join("build"))?;
    println!("synthesizer: compiled in {:?}", program.compile_time);

    let facts: std::collections::HashMap<String, Vec<Vec<String>>> = workload
        .inputs
        .iter()
        .map(|(k, rows)| {
            (
                k.clone(),
                rows.iter()
                    .map(|r| r.iter().map(Value::to_string).collect())
                    .collect(),
            )
        })
        .collect();
    let facts_dir = dir.join("facts");
    stir::synth::compile::write_facts_dir(&facts_dir, &facts)?;
    let outcome = stir::synth::run(&program, &facts_dir, &dir.join("out"))?;
    println!(
        "synthesizer: evaluated in {:?} (process wall time {:?})",
        outcome.eval_time, outcome.wall_time
    );

    // Same fixpoint, and the Table 1 headline ratio for this instance.
    assert_eq!(
        outcome.outputs["var_points_to"].len(),
        interp.outputs["var_points_to"].len()
    );
    let first_run = program.compile_time + outcome.eval_time;
    println!(
        "first-run ratio (synth compile+run / interpreter run): {:.2}",
        first_run.as_secs_f64() / interp_time.as_secs_f64()
    );
    Ok(())
}
