//! A DDisasm-style binary analysis with the §5.2 case study attached:
//! profile the rules, find the dispatch-heavy outliers, install
//! hand-crafted super-instructions for them, and measure the win.
//!
//! ```text
//! cargo run --release --example disassembler
//! ```

use stir::core::itree::Fusion;
use stir::workloads::spec::Scale;
use stir::{Engine, InterpreterConfig};

/// Native replacement for the `moved_label` filter chain (see the rule in
/// `stir_workloads::ddisasm::PROGRAM`). Register layout: `t0 =
/// sym_value(a, v)` at regs[0..2], `t1 = candidate(c, k)` at regs[2..4].
fn moved_label_cond(regs: &[u32]) -> bool {
    let v = regs[1] as i32;
    let c = regs[2] as i32;
    let k = regs[3] as i32;
    let d = v.wrapping_sub(c);
    v >= c.wrapping_sub(4096)
        && v <= c.wrapping_add(4096)
        && (v & 4095) != 0
        && d != 0
        && d % 8 == 0
        && ((v ^ k) & 7) != 3
        && v.wrapping_mul(2).wrapping_sub(c) > 16
}

fn main() -> Result<(), stir::EngineError> {
    let workload = stir::workloads::ddisasm::generate("demo-bin", Scale::Small, 77);
    println!(
        "workload: {} ({} instructions)",
        workload.name,
        workload.inputs["instr"].len()
    );

    let engine = Engine::from_source(&workload.program)?;

    // Plain run with profiling: find the outlier rules.
    let plain = engine.run(
        InterpreterConfig::optimized().with_profile(),
        &workload.inputs,
    )?;
    println!(
        "\ncode blocks: {}, moved labels: {}",
        plain.outputs["code"].len(),
        plain.outputs["moved_label"].len()
    );
    let mut rules = plain.profile.as_ref().expect("profiled").by_rule();
    rules.sort_by_key(|r| std::cmp::Reverse(r.time));
    println!("\nhottest rules before fusion:");
    for rule in rules.iter().take(3) {
        println!(
            "  {:>9.3?}  {}",
            rule.time,
            rule.label.chars().take(64).collect::<String>()
        );
    }

    // Install the hand-crafted super-instruction (paper §5.2) and rerun.
    let fusions = [Fusion {
        label_contains: "moved_label(".into(),
        cond: moved_label_cond,
    }];
    let fused = engine.run_fused(
        InterpreterConfig::optimized().with_profile(),
        &workload.inputs,
        &fusions,
    )?;
    assert_eq!(
        plain.outputs, fused.outputs,
        "fusion must not change the fixpoint"
    );

    let time_of = |outcome: &stir::EvalOutcome| {
        outcome
            .profile
            .as_ref()
            .expect("profiled")
            .by_rule()
            .iter()
            .find(|r| r.label.contains("moved_label("))
            .map(|r| r.time)
            .unwrap_or_default()
    };
    println!(
        "\nmoved_label rule: {:?} -> {:?} with the hand-crafted super-instruction",
        time_of(&plain),
        time_of(&fused)
    );
    Ok(())
}
