//! Quickstart: compile and run a tiny Datalog program, inspect its RAM
//! listing, and compare interpreter configurations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use stir::{Engine, InterpreterConfig};

fn main() -> Result<(), stir::EngineError> {
    let engine = Engine::from_source(
        r#"
        .decl edge(x: number, y: number)
        .decl path(x: number, y: number)
        .output path

        edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 2).

        path(x, y) :- edge(x, y).
        path(x, z) :- path(x, y), edge(y, z).
        "#,
    )?;

    // The RAM program the interpreter executes (paper Fig. 3 style).
    println!("=== RAM listing ===\n{}", engine.ram());

    // Run with the fully optimized STI.
    let result = engine.run(InterpreterConfig::optimized(), &Default::default())?;
    println!("=== path ===");
    for row in &result.outputs["path"] {
        let rendered: Vec<String> = row.iter().map(ToString::to_string).collect();
        println!("({})", rendered.join(", "));
    }

    // Every configuration computes the same fixpoint.
    for (name, config) in [
        ("optimized STI", InterpreterConfig::optimized()),
        ("dynamic adapter", InterpreterConfig::dynamic_adapter()),
        ("unoptimized", InterpreterConfig::unoptimized()),
        ("legacy interpreter", InterpreterConfig::legacy()),
    ] {
        let out = engine.run(config, &Default::default())?;
        println!("{name:>20}: |path| = {}", out.outputs["path"].len());
        assert_eq!(out.outputs, result.outputs);
    }
    Ok(())
}
